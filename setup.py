from setuptools import setup

# Metadata lives in pyproject.toml; this shim enables legacy editable installs
# in environments without the `wheel` package (pip falls back to setup.py
# develop when no [build-system] table is present).
setup()
