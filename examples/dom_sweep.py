#!/usr/bin/env python
"""DOM radiation sweeps: non-trivial projection functors in anger.

The most interesting index-launch pattern in the paper (Section 6.2.3):
Soleil-X's discrete-ordinates radiation module sweeps a 3-D tile grid from
each of its eight corners.  Each wavefront is an index launch whose domain
is a *diagonal slice* ``{(tx,ty,tz) : u+v+w = d}``, and whose projection
functors map those 3-D points onto 2-D exchange planes:

    faces_xy[(tx, ty)]   faces_yz[(ty, tz)]   faces_xz[(tx, tz)]

"This projection is safe only when the launch domain contains no duplicate
(x,y), (y,z) or (x,z) pairs.  While it could be challenging for a static
compiler to verify that no duplicate pairs exist, a dynamic check can
verify this trivially."

This example runs the full mini Soleil-X (fluid + particles + DOM),
validates it against a serial reference, and prints what the hybrid safety
analysis did for each launch family.

Run:  python examples/dom_sweep.py
"""

import numpy as np

from repro.apps.soleil import (
    OCTANTS,
    SoleilConfig,
    build_soleil,
    reference_soleil,
    run_soleil,
    sweep_wavefronts,
)
from repro.core.domain import Domain
from repro.core.projection import PlaneProjectionFunctor
from repro.core.safety import SafetyMethod
from repro.runtime import Runtime, RuntimeConfig


def show_wavefronts(tiles):
    print(f"wavefronts of a {tiles} sweep from corner (+,+,+):")
    for d, front in enumerate(sweep_wavefronts(tiles, (1, 1, 1))):
        pts = ", ".join(str(tuple(p)) for p in front)
        print(f"  front {d}: [{pts}]")
    proj = PlaneProjectionFunctor([0, 1])
    cube = Domain.rect((0, 0, 0), tuple(t - 1 for t in tiles))
    print("  plane projection over the whole cube injective?",
          "no (needs the diagonal-slice structure)" if
          len({proj.apply(p) for p in cube}) < cube.volume else "yes")


def main():
    config = SoleilConfig(
        tiles=(3, 3, 2),
        cells_per_tile=(6, 6, 6),
        particles_per_tile=32,
        steps=4,
    )
    show_wavefronts(config.tiles)

    rt = Runtime(RuntimeConfig(n_nodes=4, shuffle_intra_launch=True, seed=1))
    state = build_soleil(rt, config)
    result = run_soleil(rt, state)
    expected = reference_soleil(config)

    print()
    for key in ("temp", "particle_temp", "rad_emit"):
        err = np.abs(result[key] - expected[key]).max()
        print(f"max |error| vs serial reference, {key}: {err:.3e}")
        assert err < 1e-10

    static = sum(1 for v in rt.safety_log if v.method is SafetyMethod.STATIC)
    hybrid = sum(1 for v in rt.safety_log if v.method is SafetyMethod.HYBRID)
    print()
    print("hybrid analysis across", len(rt.safety_log), "index launches:")
    print("  verified statically  :", static,
          "(fluid halos, emission, absorption, 1-tile wavefronts)")
    print("  needed dynamic checks:", hybrid,
          "(multi-tile DOM wavefronts, particle delinearization)")
    print("  serial fallbacks     :", rt.stats.launches_fallback_serial)
    print("  total check cost     :", rt.stats.check_evaluations,
          "functor evaluations")
    print()
    print("note: tasks within each wavefront executed in *shuffled* order —")
    print("the dynamic checks guarantee that cannot change the answer.")


if __name__ == "__main__":
    main()
