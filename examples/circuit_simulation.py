#!/usr/bin/env python
"""Circuit: unstructured-graph simulation with dependent partitioning.

The paper's first evaluation code (Section 6.1).  Demonstrates:

* ``partition_by_field`` / ``image_partition`` / set algebra to derive the
  owned / reachable / ghost node structure from an unstructured graph;
* an aliased partition read concurrently (safe because read-only);
* a ``reduces +`` scatter onto an aliased partition (safe because
  reductions commute);
* validation against a serial numpy reference;
* the launch-group statistics: every launch verifies statically because
  all projection functors are identity.

Run:  python examples/circuit_simulation.py
"""

import numpy as np

from repro.apps.circuit import (
    CircuitConfig,
    build_circuit,
    reference_circuit,
    run_circuit,
)
from repro.runtime import Runtime, RuntimeConfig


def main():
    config = CircuitConfig(
        n_pieces=8,
        nodes_per_piece=64,
        wires_per_piece=128,
        pct_wire_in_piece=0.85,
        steps=25,
        dt=5e-3,
        seed=20210814,
    )
    rt = Runtime(RuntimeConfig(n_nodes=4))
    graph = build_circuit(rt, config)

    print("circuit graph")
    print("  pieces          :", graph.n_pieces)
    print("  nodes           :", graph.nodes.volume)
    print("  wires           :", graph.wires.volume)
    ghosts = [graph.node_ghost[c].volume for c in range(graph.n_pieces)]
    print("  ghost nodes/piece:", ghosts)
    print("  reachable aliased:", not graph.node_reachable.verify_disjointness())

    expected = reference_circuit(graph)
    voltages = run_circuit(rt, graph)
    err = np.abs(voltages - expected).max()
    print()
    print(f"ran {config.steps} time steps; max |error| vs serial reference:",
          err)
    assert err < 1e-12

    print()
    print("runtime statistics")
    print("  index launches     :", rt.stats.index_launches)
    print("  tasks executed     :", rt.stats.tasks_executed)
    print("  statically verified:", rt.stats.launches_verified_static)
    print("  dynamic check cost :", rt.stats.check_evaluations,
          "(zero: trivial functors only, as in the paper)")
    print("  trace replays      :", rt.stats.trace_replays)
    print("  logical dependences:", rt.stats.logical_dependences)


if __name__ == "__main__":
    main()
