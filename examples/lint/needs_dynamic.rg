-- Statically undecidable shapes: the linter reports NEEDS_DYNAMIC and
-- the compiler emits the Listing-3 dynamic check for each.

task one(c) writes(c) do
  c.v = 1
end

-- opaque host functor: nothing to reason about statically
for i = 0, 8 do
  one(p[f(i)])
end

-- modular functor with a trip count unknown at compile time: the
-- period test needs the extent
for i = 0, n do
  one(q[i % 4])
end
