-- The paper's Listing 2: i % 3 over [0, 5) wraps around, so iterations
-- 0 and 3 write the same subregion of s.  The period test refutes
-- injectivity statically (rule IL-S02) — no dynamic check is needed to
-- reject this launch.

task copy(a, b) reads(a) writes(b) do
  b.v = a.v
end

for i = 0, 5 do
  copy(p[i], s[i % 3])
end
