-- A statically-proven race: every iteration writes partition piece 2.
-- The linter exits nonzero (rule IL-S02).

task setv(c, k) writes(c) do
  c.v = k
end

for i = 0, 4 do
  setv(p[2], i)
end
