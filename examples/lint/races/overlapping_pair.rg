-- A cross-check failure inside one launch: i and i+2 have the same
-- stride and residue, and over [0, 6) the images [0,6) and [2,8)
-- provably intersect while one side writes (rule IL-C02).

task mix(a, b) reads(a) writes(b) do
  b.v = a.v
end

for i = 0, 6 do
  mix(p[i], p[i + 2])
end
