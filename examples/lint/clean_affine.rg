-- A program the linter proves entirely safe: every self- and
-- cross-check is decided statically by the symbolic affine engine.

task inc(c) reads(c) writes(c) do
  c.v = c.v + 1
end

task copy(a, b) reads(a) writes(b) do
  b.v = a.v
end

-- identity functor: injective over any domain
for i = 0, 8 do
  inc(p[i])
end

-- interleaved affine pair on one partition: 2i+1 writes never meet
-- 2i reads (GCD residue separation)
for i = 0, 4 do
  copy(t[2 * i], t[2 * i + 1])
end

-- a full modular rotation: (i + 3) % 8 over [0, 8) is injective
-- (period test), and its image [0, 8) never meets the p-loop above
-- because the two launches write distinct partitions
parallel for i = 0, 8 do
  inc(q[(i + 3) % 8])
end
