-- Cross-launch interference: no single loop is wrong, but the first
-- two launches name the same partition and the second reads what the
-- first wrote — they must serialize (rule IL-X02, a warning: correct,
-- yet the parallelism the launches suggest is not there).

task produce(c) writes(c) do
  c.v = 1
end

task consume(a, b) reads(a) writes(b) do
  b.v = a.v
end

for i = 0, 4 do
  produce(p[i])
end

for i = 0, 4 do
  consume(p[i], q[i])
end

-- this launch, by contrast, is proven independent of the first: the
-- producer wrote p[0..4) and this one reads p[4..8)
for i = 0, 4 do
  consume(p[i + 4], r[i])
end
