-- Data-dependent projection functors: the target block index is read
-- from another region at runtime, so injectivity is statically
-- undecidable and every launch gets the Listing-3 dynamic check.

task step(c) reads(c) writes(c) do
  c.v = c.v + 1
end

-- gather through a permutation region: injective iff perm is, which
-- only the runtime can know
for i = 0, 8 do
  step(p[perm[i]])
end

-- indirection composed with an affine offset: still opaque
for i = 0, 8 do
  step(p[owner[i] + 1])
end

-- two-level indirection (routing table over a hop table)
for i = 0, 4 do
  step(p[route[hop[i]]])
end
