-- Index expressions that leave the symbolic engine's affine-modular
-- normal form without any host call: each one is NEEDS_DYNAMIC even
-- though every name is the loop variable.

task tick(c) reads(c) writes(c) do
  c.v = c.v + 1
end

-- sum of two modular forms: the residues interact
for i = 0, 12 do
  tick(p[i % 2 + i % 3])
end

-- compound modulus with non-dividing periods
for i = 0, 12 do
  tick(p[i % 5 % 3])
end

-- quadratic in the loop variable
for i = 0, 6 do
  tick(p[i * i])
end

-- inexact division
for i = 0, 9 do
  tick(p[i / 2])
end
