#!/usr/bin/env python
"""Quickstart: regions, partitions, tasks, and your first index launch.

Covers the core workflow in under a minute:

1. create a region (a *collection* in the paper's terms) with named fields;
2. partition it into disjoint blocks;
3. register tasks with privileges;
4. launch a group of tasks over every block with ``forall`` — an index
   launch: an O(1) representation of the whole group;
5. observe the hybrid safety analysis at work: a rotation functor passes a
   dynamic check, a non-injective functor falls back to the serial loop.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.projection import ModularFunctor
from repro.data.partition import equal_partition
from repro.runtime import Runtime, RuntimeConfig, task


# Tasks declare privileges on each region parameter (Section 2).  Bodies
# receive privilege-enforcing accessors: reading through a write-only
# accessor raises, so declarations are verified at execution time.
@task(privileges=["reads", "writes"])
def scale(ctx, src, dst, alpha):
    dst.write("value", alpha * src.read("value"))


@task(privileges=["reads writes"])
def increment(ctx, block):
    block.write("value", block.read("value") + 1.0)


@task(privileges=["reads"])
def block_sum(ctx, block):
    return float(block.read("value").sum())


def main():
    # A 4-node simulated machine with dynamic control replication — the
    # configuration axes of the paper's evaluation are all on RuntimeConfig.
    rt = Runtime(RuntimeConfig(n_nodes=4, dcr=True, index_launches=True))

    src = rt.create_region("src", 64, {"value": "f8"})
    dst = rt.create_region("dst", 64, {"value": "f8"})
    src.storage("value")[:] = np.arange(64.0)

    p_src = equal_partition("p_src", src, 8)
    p_dst = equal_partition("p_dst", dst, 8)

    # ---- An index launch: forall(D, scale, <p_src, id>, <p_dst, id>).
    # Identity functors over disjoint partitions verify *statically*.
    rt.index_launch(scale, 8, p_src, p_dst, args=(2.0,))
    print("dst after scale:", dst.storage("value")[:8], "...")

    # ---- A non-trivial projection functor: each task writes the block
    # three positions over.  (i+3) mod 8 is a rotation — injective — but
    # the static analysis cannot see that, so the hybrid analysis runs the
    # Listing-3 dynamic check, which passes.
    rt.index_launch(increment, 8, (p_dst, ModularFunctor(8, 3)))

    # ---- Reductions over a FutureMap: one future per point, foldable.
    total = rt.index_launch(block_sum, 8, p_dst, reduce="+")
    print("sum over all blocks:", total.get())

    # ---- An invalid candidate: i % 3 over [0,8) repeats colors, so two
    # tasks would write the same block.  The dynamic check catches it and
    # the launch runs as the original serial loop instead (results are
    # still correct — sequential semantics).
    rt.index_launch(increment, 8, (p_dst, ModularFunctor(3)))

    print()
    print("safety analysis summary")
    print("  statically verified :", rt.stats.launches_verified_static)
    print("  dynamically verified:", rt.stats.launches_verified_dynamic)
    print("  serial fallbacks    :", rt.stats.launches_fallback_serial)
    print("  check evaluations   :", rt.stats.check_evaluations)
    print("  tasks executed      :", rt.stats.tasks_executed)


if __name__ == "__main__":
    main()
