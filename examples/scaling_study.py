#!/usr/bin/env python
"""Scaling study: regenerate the paper's headline experiment interactively.

Sweeps Circuit weak scaling (Figure 5) over the four {DCR, No DCR} x
{IDX, No IDX} configurations on the simulated machine, prints the series,
and reports the qualitative takeaways the paper draws from them.  Also
demonstrates the cost-model ablation hooks: what happens to the crossover
if per-task overheads were 4x cheaper?

Run:  python examples/scaling_study.py [max_nodes]
"""

import sys

from repro.apps.circuit import circuit_iteration
from repro.bench.harness import run_scaling, weak_scaling_nodes
from repro.bench.reporting import format_series_table, parallel_efficiency
from repro.machine.costmodel import CostModel


def main():
    max_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    nodes = weak_scaling_nodes(max_nodes)

    results = run_scaling(lambda n: circuit_iteration(n), nodes)
    print(format_series_table(
        results, "throughput_per_node", 1e6, "10^6 wires/s per node",
        title=f"Circuit weak scaling, 2e5 wires/node, up to {max_nodes} nodes",
    ))

    by = {r.label: r for r in results}
    print()
    print("takeaways (cf. Section 6.2.1):")
    print(f"  DCR+IDX efficiency at {max_nodes} nodes: "
          f"{parallel_efficiency(by['DCR, IDX'], max_nodes):.0%}")
    print(f"  DCR/No-IDX efficiency at {max_nodes} nodes: "
          f"{parallel_efficiency(by['DCR, No IDX'], max_nodes):.0%} "
          f"(O(P) per-node issuance bites)")
    print(f"  No-DCR/No-IDX efficiency at {max_nodes} nodes: "
          f"{parallel_efficiency(by['No DCR, No IDX'], max_nodes):.0%} "
          f"(node 0 is the bottleneck)")

    # ---- Ablation: how sensitive is the crossover to per-task overheads?
    cheap = CostModel().with_overrides(
        t_issue_task=CostModel().t_issue_task / 4,
        t_trace_replay_task=CostModel().t_trace_replay_task / 4,
    )
    ablated = run_scaling(
        lambda n: circuit_iteration(n), nodes,
        configs=[(True, False)], cost=cheap,
    )
    print()
    print("ablation — per-task issuance/replay costs cut 4x:")
    print(f"  DCR/No-IDX efficiency at {max_nodes} nodes: "
          f"{parallel_efficiency(ablated[0], max_nodes):.0%} "
          f"(the rolloff moves out, but the O(P) slope remains)")


if __name__ == "__main__":
    main()
