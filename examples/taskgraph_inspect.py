#!/usr/bin/env python
"""Inspecting the runtime: task-graph export and launch explanations.

Demonstrates the developer tooling:

* :class:`repro.tools.GraphRecorder` captures the operation-level
  (Figure 2/3-style, one box per index launch) and task-level dependence
  graphs the analyses compute, exportable as Graphviz DOT;
* :func:`repro.tools.explain_launch` renders the hybrid safety analysis's
  reasoning for a candidate launch — which rule fired per argument, what
  the dynamic check found, how the launch will execute, and the O(1)
  descriptor size vs the expanded representation.

Run:  python examples/taskgraph_inspect.py
"""

import os

from repro.apps.circuit import CircuitConfig, build_circuit, run_circuit
from repro.core.domain import Domain
from repro.core.launch import IndexLaunch, RegionRequirement
from repro.core.projection import ModularFunctor, PlaneProjectionFunctor
from repro.data.partition import block_partition
from repro.data.privileges import PrivilegeSpec
from repro.runtime import Runtime, RuntimeConfig
from repro.tools import GraphRecorder, explain_launch, to_dot


def main():
    # ---- Record the circuit's task graph for two time steps.
    rt = Runtime(RuntimeConfig(n_nodes=2))
    recorder = GraphRecorder().attach(rt)
    graph = build_circuit(
        rt, CircuitConfig(n_pieces=4, nodes_per_piece=8,
                          wires_per_piece=12, steps=2)
    )
    run_circuit(rt, graph)

    os.makedirs("results", exist_ok=True)
    for level in ("logical", "physical"):
        path = f"results/circuit_taskgraph_{level}.dot"
        with open(path, "w") as fh:
            fh.write(to_dot(recorder, level))
        print(f"wrote {path}")
    print(f"logical graph: {recorder.n_ops} operations "
          f"(each index launch is ONE node for its 4 tasks)")
    print(f"physical graph: {recorder.n_tasks} tasks, "
          f"{len(set(recorder.physical_edges))} dependence edges")

    # ---- Explain a launch with a non-trivial projection functor.
    print()
    helper = Runtime()
    faces = helper.create_region("planes", (3, 3), {"flux": "f8"})
    part = block_partition("pp", faces, (3, 3))
    diagonal = Domain.points(
        [(x, y, 4 - x - y) for x in range(3) for y in range(3)
         if 0 <= 4 - x - y < 3]
    )
    launch = IndexLaunch(
        task=type("T", (), {"name": "dom_sweep"}),
        domain=diagonal,
        requirements=[
            RegionRequirement(
                privilege=PrivilegeSpec.parse("reads writes"),
                partition=part,
                functor=PlaneProjectionFunctor([0, 1]),
            )
        ],
    )
    print(explain_launch(launch))

    print()
    from repro.data.partition import equal_partition

    values = helper.create_region("values", 6, {"v": "f8"})
    vpart = equal_partition("q", values, 3)
    bad = IndexLaunch(
        task=type("T", (), {"name": "listing2"}),
        domain=Domain.range(5),
        requirements=[
            RegionRequirement(
                privilege=PrivilegeSpec.parse("writes"),
                partition=vpart,
                functor=ModularFunctor(3),
            )
        ],
    )
    print(explain_launch(bad))


if __name__ == "__main__":
    main()
