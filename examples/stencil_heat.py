#!/usr/bin/env python
"""Stencil: tiled PRK star stencil with halo partitions.

The paper's second evaluation code (Section 6.1).  Demonstrates:

* disjoint compute blocks + an aliased halo partition of the *same* region;
* per-field privileges: each task reads field ``input`` through its halo
  block and writes field ``output`` through its interior block — disjoint
  field sets, so the launch is non-interfering and verified statically even
  though the two partitions alias;
* a comparison of the four {DCR, No DCR} x {IDX, No IDX} configurations on
  the simulated machine for this workload.

Run:  python examples/stencil_heat.py
"""

import numpy as np

from repro.apps.stencil import (
    StencilConfig,
    build_stencil,
    reference_stencil,
    run_stencil,
    stencil_iteration,
)
from repro.bench.harness import run_scaling
from repro.bench.reporting import format_series_table
from repro.runtime import Runtime, RuntimeConfig


def main():
    config = StencilConfig(n=256, blocks=(4, 4), radius=2, steps=10)
    rt = Runtime(RuntimeConfig(n_nodes=4))
    grid = build_stencil(rt, config)

    out = run_stencil(rt, grid)
    expected = reference_stencil(config)
    err = np.abs(out - expected).max()
    print(f"{config.n}x{config.n} grid, {config.blocks} tiles, "
          f"radius {config.radius}, {config.steps} steps")
    print("max |error| vs serial reference:", err)
    assert err < 1e-10

    print("statically verified launches:", rt.stats.launches_verified_static,
          "(halo reads + interior writes on disjoint fields)")
    print("serial fallbacks:", rt.stats.launches_fallback_serial)

    # ---- What would this cost at scale?  Ask the machine model.
    print()
    print("simulated weak scaling for this workload "
          "(9e8 cells/node, as in Figure 8):")
    results = run_scaling(
        lambda n: stencil_iteration(n), [1, 16, 64, 256, 1024]
    )
    print(format_series_table(
        results, "throughput_per_node", 1e9, "10^9 cells/s per node"
    ))


if __name__ == "__main__":
    main()
