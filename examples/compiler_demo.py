#!/usr/bin/env python
"""The mini-Regent compiler: automatic index launches from sequential loops.

Section 4 of the paper: "an approach based on hybrid compiler optimizations
enables the automatic generation of index launches from apparently
sequential loops such as those in Listings 1 and 2."

This example feeds a small Regent-like program — including the paper's
Listing 1 and Listing 2 — through the compiler pipeline and shows what the
optimization pass decided for each loop, then executes the program and
verifies results against an unoptimized (fully serial) run.

Run:  python examples/compiler_demo.py
"""

import numpy as np

from repro.compiler import compile_and_run, optimize_program, parse
from repro.data.partition import equal_partition
from repro.runtime import Runtime, RuntimeConfig

SOURCE = """
-- Listing 1, made concrete: a trivial and a non-trivial functor.
task foo(c) reads(c) writes(c) do
  c.v = c.v + 1
end

task bar(c) reads(c) writes(c) do
  c.v = c.v * 2
end

task copy(a, b) reads(a) writes(b) do
  b.v = a.v
end

for i = 0, 8 do          -- identity functor: statically safe
  foo(p[i])
end

for i = 0, 8 do          -- opaque host function f: dynamic check
  bar(q[f(i)])
end

-- Listing 2: i % 3 over [0, 5) is NOT injective; the symbolic engine
-- proves the wrap-around at compile time (period test: 5 > 3), so the
-- loop is rejected statically and runs with sequential semantics.
for i = 0, 5 do
  copy(p[i], s[i % 3])
end

-- A non-injective *opaque* functor: nothing provable statically, so
-- the Listing-3 dynamic check runs, finds the duplicate, and the loop
-- falls back to serial execution at runtime.
for i = 0, 4 do
  foo(p[g(i)])
end

-- An affine pair on one partition: 2i writes never meet 2i+1 reads,
-- provable statically (cross-check).
for i = 0, 4 do
  copy(t[2 * i + 1], t[2 * i])
end
"""


def build_bindings(rt):
    bindings = {}
    for name, (size, pieces) in {
        "p": (16, 8), "q": (16, 8), "s": (6, 3), "t": (16, 8),
    }.items():
        region = rt.create_region(f"demo_{name}", size, {"v": "f8"})
        region.storage("v")[:] = np.arange(float(size))
        bindings[name] = equal_partition(f"{name}_part", region, pieces)
    bindings["f"] = lambda i: (i * 3) % 8  # a permutation of [0, 8)
    bindings["g"] = lambda i: i // 2       # NOT injective: 0,0,1,1
    return bindings


def main():
    # ---- What does the pass decide?
    program, report = optimize_program(parse(SOURCE))
    print("optimization pass decisions:")
    for i, decision in enumerate(report.decisions):
        print(f"  loop {i}: {decision.action}")
        for reason in decision.reasons:
            print(f"      - {reason}")

    # ---- Execute, and compare against a fully serial (unoptimized) run.
    outputs = {}
    for optimize in (True, False):
        rt = Runtime(RuntimeConfig(n_nodes=2))
        bindings = build_bindings(rt)
        compile_and_run(SOURCE, bindings, rt, optimize=optimize)
        outputs[optimize] = {
            name: bindings[name].region.storage("v").copy()
            for name in ("p", "q", "s", "t")
        }
        if optimize:
            stats = rt.stats
    for name in outputs[True]:
        assert np.array_equal(outputs[True][name], outputs[False][name]), name

    print()
    print("optimized and serial executions agree on every region.")
    print("runtime saw:", stats.index_launches, "index launches,",
          stats.launches_verified_static, "static,",
          stats.launches_verified_dynamic, "dynamic,",
          stats.launches_fallback_serial,
          "serial fallback (the opaque non-injective functor);",
          "Listing 2 never launched — it was rejected at compile time.")


if __name__ == "__main__":
    main()
