"""Standalone socket-connected worker: ``python -m repro.exec.socket_worker``.

The socket analogue of the fork worker: one process per pool slot,
connected back to the parent over a loopback TCP stream (standing in for
a cluster interconnect), speaking the framed protocol in
:mod:`repro.exec.wire`.  Unlike a fork worker it inherits *nothing* — the
parent ships its ``sys.path`` via ``PYTHONPATH`` so by-reference pickles
(task functions defined in importable modules) resolve, and every piece
of cached state arrives as an explicit REGIONS / PARTITIONS / TASK delta
frame installed into the same persistent module caches the fork path
uses.

Exit codes: 0 on SHUTDOWN or clean EOF, 3 on a failed handshake, 4 on a
malformed invocation.  Injected ``kill`` faults still hard-exit with 13
inside :func:`repro.exec.worker.run_shard_bytes`, exactly like the fork
path — the parent observes the dropped connection as a ``broken`` worker.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
from typing import Optional

from repro.exec import wire

__all__ = ["main", "serve"]


def _handshake(sock: socket.socket, worker: int, token: str) -> bool:
    wire.send_frame(
        sock,
        wire.HELLO,
        0,
        wire.json_payload(
            worker=worker,
            token=token,
            pid=os.getpid(),
            version=wire.PROTOCOL_VERSION,
        ),
    )
    try:
        frame = wire.recv_frame(sock, check_version=False)
    except (wire.WireError, ConnectionError):
        return False
    if frame.version != wire.PROTOCOL_VERSION or frame.msg != wire.WELCOME:
        # REJECT (token/version mismatch) or an alien peer: report why on
        # stderr — the parent may already have hung up — and bail.
        reason = ""
        if frame.msg == wire.REJECT:
            try:
                reason = wire.parse_json(frame.payload).get("reason", "")
            except wire.WireError:
                pass
        print(
            f"repro socket worker {worker}: handshake refused"
            f"{': ' + reason if reason else ''}",
            file=sys.stderr,
        )
        return False
    return True


def serve(sock: socket.socket) -> bool:
    """Frame loop: install deltas, run shards, answer with RESULT frames.

    Returns True on a deliberate SHUTDOWN, False when the connection
    dropped — ``--listen`` mode uses the distinction to decide between
    exiting and going back to accept the next parent.
    """
    # Imported here, after the handshake, so a refused worker never pays
    # for numpy; the import also primes everything a shard will touch.
    from repro.exec import worker as w

    def reply(seq: int, payload: bytes) -> None:
        wire.send_frame(sock, wire.RESULT, seq, payload)

    while True:
        try:
            frame = wire.recv_frame(sock)
        except (wire.WireError, ConnectionError, OSError):
            return False  # parent went away; nothing left to serve
        if not w.handle_frame(frame, reply):
            return True
        # Anything else (HELLO/WELCOME/... out of band) is a protocol bug;
        # handle_frame ignores it, which beats dying with shards pending.


def _serve_listener(host: str, port: int, worker: int, token: str) -> int:
    """``--listen`` mode: a pre-started worker the parent dials into.

    Binds once, then loops accept → handshake → serve: a parent that
    discards this worker (tier-2 respawn) just reconnects, and the
    persistent caches are wiped between connections so every parent
    incarnation starts from the clean delta-shipping state its
    bookkeeping assumes.  A SHUTDOWN frame ends the process.
    """
    from repro.exec import worker as w

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((host, port))
        except OSError as exc:
            print(
                f"repro socket worker {worker}: cannot bind "
                f"{host}:{port}: {exc}",
                file=sys.stderr,
            )
            return 4
        listener.listen(1)
        print(
            f"repro socket worker {worker}: listening on "
            f"{host}:{listener.getsockname()[1]}",
            file=sys.stderr,
        )
        while True:
            conn, _ = listener.accept()
            try:
                conn.settimeout(None)
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                w.reset_state()
                if not _handshake(conn, worker, token):
                    continue  # refused parent; await the next one
                if serve(conn):
                    return 0
            finally:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - dead socket
                    pass
    finally:
        try:
            listener.close()
        except OSError:  # pragma: no cover - dead listener
            pass


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.exec.socket_worker")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--worker", type=int, required=True)
    parser.add_argument(
        "--listen", action="store_true",
        help="bind and await the parent instead of dialing it "
             "(pre-started remote worker; see REPRO_SOCKET_HOSTS)",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit:
        return 4
    token = os.environ.get("REPRO_SOCKET_TOKEN", "")
    if args.listen:
        return _serve_listener(args.host, args.port, args.worker, token)
    try:
        sock = socket.create_connection((args.host, args.port), timeout=30)
    except OSError as exc:
        print(
            f"repro socket worker {args.worker}: cannot reach parent: {exc}",
            file=sys.stderr,
        )
        return 3
    try:
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if not _handshake(sock, args.worker, token):
            return 3
        serve(sock)
        return 0
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover - close on a dead socket
            pass


if __name__ == "__main__":
    raise SystemExit(main())
