"""Persistent worker pools for the parallel execution backend.

A :class:`WorkerPool` owns ``n`` worker slots rather than one
``ProcessPoolExecutor(max_workers=n)``: shard ``i`` of every launch is
always submitted to slot ``i % n``, which makes worker-side caches
(task functions, partition colors, sparse subsets, region skeletons)
deterministic — the parent knows exactly what each worker already holds and
ships only deltas, mirroring how DCR's control replicas keep persistent
per-node state across launches.

*How* a slot is reached is the transport's business
(:mod:`repro.exec.transport`): ``local`` is the original fork
``ProcessPoolExecutor`` path, ``pipe`` forks persistent workers wired by
raw pipes with a selector-driven collector (no executor wake), ``socket``
runs standalone worker processes over framed loopback sockets (see
``docs/distributed-transport.md``).
The pool keeps everything transport-independent: cache bookkeeping,
respawn generations, the shm arena, and failure metrics.

Pools are cached per ``(worker count, transport)`` in a module-level
registry so iterated benchmarks and long CLI runs reuse warm workers;
:func:`shutdown_pools` (also registered via ``atexit``) tears everything
down, and the CLI calls it on every exit path so error paths cannot leak
worker processes.
"""

from __future__ import annotations

import atexit
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exec.plan import dumps, loads
from repro.exec.shm import ShmArena
from repro.exec.transport import make_transport, resolve_transport
from repro.obs.profiler import NULL_PROFILER

__all__ = [
    "WorkerPool",
    "get_pool",
    "shutdown_pools",
    "active_pool_count",
    "resolve_workers",
    "CHECK_CHUNK_MIN",
]

#: Below this many domain points a dynamic check is evaluated inline —
#: chunking overhead would dominate the numpy sweep it parallelizes.
CHECK_CHUNK_MIN = 4096


def resolve_workers(configured: Optional[int]) -> int:
    """Effective worker count: explicit config wins, else ``REPRO_WORKERS``.

    Returns at least 1; 1 means the serial backend.
    """
    if configured is not None:
        value = int(configured)
    else:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        try:
            value = int(raw) if raw else 1
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {raw!r}"
            ) from None
    if value < 1:
        raise ValueError(f"workers must be >= 1, got {value}")
    return value


class _WorkerCaches:
    """What the parent believes one worker process already holds."""

    __slots__ = ("tasks", "regions", "partition_colors", "subsets")

    def __init__(self):
        self.tasks: set = set()              # task uids
        self.regions: set = set()            # region uids
        self.partition_colors: set = set()   # (partition uid, color tuple)
        self.subsets: set = set()            # sparse subset uids

    def clear(self):
        self.tasks.clear()
        self.regions.clear()
        self.partition_colors.clear()
        self.subsets.clear()


class WorkerPool:
    """``n`` persistent worker slots with deterministic shard affinity."""

    def __init__(self, n: int, transport: Optional[str] = None):
        if n < 1:
            raise ValueError("WorkerPool needs at least one worker")
        self.n = n
        #: ``None`` means local here (not the env default): directly
        #: constructed pools — unit tests poking executor internals —
        #: stay on the fork path regardless of ``REPRO_TRANSPORT``; the
        #: registry resolves the env before constructing.
        self.transport_name = transport or "local"
        self._transport = make_transport(self.transport_name, n)
        self.caches: List[_WorkerCaches] = [_WorkerCaches() for _ in range(n)]
        self._closed = False
        #: bumped on every reset: lets callers tell "this worker died" from
        #: "this worker was already respawned by an earlier failure", and
        #: lets the backend discard cache shipments collected from a worker
        #: generation that no longer exists.
        self._generations: List[int] = [0] * n
        #: parent-owned shared-memory transport (hot-path engine layer 1).
        #: The backend decides per dispatch whether to use it; the arena's
        #: lifecycle is tied to the pool's: generation bumps orphan a
        #: worker's segments, shutdown unlinks everything.  A transport
        #: whose workers cannot map parent segments (socket workers stand
        #: in for remote nodes) disables it outright and every footprint
        #: degrades to the pickled wire payload.
        self.arena = ShmArena(n)
        if not self._transport.local_shm:
            self.arena.available = False
        self.pool_failures = 0
        #: teardown exceptions that used to vanish in bare excepts: counted
        #: here and surfaced as obs instants (see shutdown()).
        self.shutdown_errors = 0
        self._profiler = NULL_PROFILER
        #: optional ``callback(event: str, info: dict)`` fired on worker
        #: resets; the formal conformance harness uses it to observe the
        #: real action ordering.  ``None`` costs nothing.
        self.observer = None

    # --------------------------------------------------------------- wiring
    @property
    def profiler(self):
        return self._profiler

    @profiler.setter
    def profiler(self, prof):
        # The arena and transport share the pool's profiler so teardown
        # errors and dispatch wakes land in the same trace/metrics stream.
        self._profiler = prof
        self.arena.profiler = prof
        self._transport.profiler = prof

    @property
    def transport(self):
        return self._transport

    @property
    def _executors(self):
        """The local transport's executor slots (unit-test hook; socket
        pools expose their worker handles the same way)."""
        return self._transport._slots if hasattr(
            self._transport, "_slots"
        ) else self._transport._handles

    # ----------------------------------------------------------- lifecycle
    def executor(self, k: int) -> ProcessPoolExecutor:
        """Lazily start worker ``k``'s process (local transport only)."""
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        return self._transport.executor(k)

    def reset_worker(self, k: int) -> None:
        """Discard a broken worker process and everything it cached."""
        self.caches[k].clear()
        self._generations[k] += 1
        self.arena.on_reset(k, self._generations[k])
        if self.observer is not None:
            self.observer(
                "pool.reset", {"worker": k, "generation": self._generations[k]}
            )
        self._transport.discard_worker(k)

    def generation(self, k: int) -> int:
        """The respawn generation of worker ``k`` (bumped on every reset)."""
        return self._generations[k]

    def shutdown(self) -> None:
        self._closed = True
        self.arena.close()
        for k in range(self.n):
            self.caches[k].clear()
        for exc in self._transport.shutdown():
            self._note_shutdown_error(exc)

    def _note_shutdown_error(self, exc: BaseException) -> None:
        """A teardown step failed.  Historically swallowed with a bare
        ``except: pass``; now every one is counted and emitted as an obs
        instant so leaked executors/processes are diagnosable."""
        self.shutdown_errors += 1
        prof = self._profiler
        if prof.enabled:
            prof.count("pool.shutdown_errors", 1.0,
                       kind=type(exc).__name__)
            prof.instant("pool.shutdown_error", "execution",
                         kind=type(exc).__name__, detail=str(exc))

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------- dispatch
    def submit_shard(self, k: int, plan_blob: bytes, plan=None):
        """Submit one shard blob to worker ``k``; returns the future.

        ``plan`` (when given) lets the transport peel cache deltas into
        explicit wire messages instead of re-shipping them inside the
        blob; the local transport ignores it.
        """
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        return self._transport.submit_shard(k, plan_blob, plan)

    def submit_shards(self, k: int, items):
        """Submit a whole per-worker batch ``[(plan_blob, plan), ...]`` in
        one vectored write where the transport supports it; returns one
        future per shard, in order."""
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        return self._transport.submit_shards(k, items)

    # ------------------------------------------------- chunked batch evals
    def _note_failure(self, reason: str) -> None:
        """Count one infrastructure failure (visible in metrics/traces)."""
        self.pool_failures += 1
        prof = self._profiler
        if prof.enabled:
            prof.count("pool.failures", 1.0, reason=reason)
            prof.instant("pool.failure", "execution", reason=reason)

    @staticmethod
    def _cancel(futures) -> None:
        """Cancel still-pending chunk futures so nothing leaks into a dead
        (or abandoned) worker; finished futures ignore the cancel."""
        for f in futures:
            f.cancel()

    def apply_batch_chunked(self, functor, points: np.ndarray) -> np.ndarray:
        """Evaluate ``functor.apply_batch`` across workers in |D|/n chunks.

        Exact-preserving: chunks are contiguous domain slices concatenated
        in order, so the result is byte-identical to one inline call.
        *Infrastructure* failures — a dead worker process, a functor that
        cannot be pickled, a corrupted result blob — fall back to inline
        evaluation (which is exact) and are counted in ``pool_failures``.
        A functor that *raises* is an application bug: the exception
        propagates exactly as the inline call would have raised it.
        """
        n_points = len(points)
        if n_points < CHECK_CHUNK_MIN or self.n < 2 or self._closed:
            return functor.apply_batch(points)
        chunks = np.array_split(points, self.n)

        try:
            blob = dumps(functor)
        except Exception:
            # Unpicklable functor: transport-level, inline is exact.
            self._note_failure("functor_unpicklable")
            return functor.apply_batch(points)
        futures: list = []
        try:
            futures = [
                self._transport.submit_batch(k, blob, chunk)
                for k, chunk in enumerate(chunks)
                if len(chunk)
            ]
            parts = [loads(f.result()) for f in futures]
        except BrokenProcessPool:
            self._cancel(futures)
            self._note_failure("broken_pool")
            for k in range(self.n):
                self.reset_worker(k)
            return functor.apply_batch(points)
        except (pickle.UnpicklingError, EOFError, OSError):
            # Result transport failed; the workers themselves are fine.
            self._cancel(futures)
            self._note_failure("transport")
            return functor.apply_batch(points)
        except BaseException:
            # The functor itself raised (the worker re-raises it through
            # the future): surface it exactly as inline evaluation would,
            # instead of "succeeding" inline only to raise again later.
            self._cancel(futures)
            raise
        return np.concatenate(parts, axis=0)


# ------------------------------------------------------------ pool registry
_POOLS: Dict[Tuple[int, str], WorkerPool] = {}


def get_pool(n: int, transport: Optional[str] = None) -> WorkerPool:
    """The shared pool for ``(n, transport)``, creating it on first use.

    ``transport=None`` resolves ``REPRO_TRANSPORT`` (default ``local``).
    """
    name = resolve_transport(transport)
    key = (n, name)
    pool = _POOLS.get(key)
    if pool is None or pool.closed:
        pool = WorkerPool(n, transport=name)
        _POOLS[key] = pool
    return pool


def shutdown_pools() -> int:
    """Tear down every registered pool; returns how many were active."""
    n = 0
    for pool in list(_POOLS.values()):
        if not pool.closed:
            n += 1
        pool.shutdown()
    _POOLS.clear()
    return n


def active_pool_count() -> int:
    """How many live pools the registry holds (test/teardown hook)."""
    return sum(1 for pool in _POOLS.values() if not pool.closed)


atexit.register(shutdown_pools)
