"""Persistent process pools for the parallel execution backend.

A :class:`WorkerPool` owns ``n`` *single-process* executors rather than one
``ProcessPoolExecutor(max_workers=n)``: shard ``i`` of every launch is
always submitted to executor ``i % n``, which makes worker-side caches
(task functions, partition colors, sparse subsets, region skeletons)
deterministic — the parent knows exactly what each worker already holds and
ships only deltas, mirroring how DCR's control replicas keep persistent
per-node state across launches.

Pools are cached per worker count in a module-level registry so iterated
benchmarks and long CLI runs reuse warm workers; :func:`shutdown_pools`
(also registered via ``atexit``) tears everything down, and the CLI calls
it on every exit path so error paths cannot leak worker processes.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional

import numpy as np

from repro.exec.plan import dumps, loads
from repro.exec.shm import ShmArena
from repro.obs.profiler import NULL_PROFILER

__all__ = [
    "WorkerPool",
    "get_pool",
    "shutdown_pools",
    "active_pool_count",
    "resolve_workers",
    "CHECK_CHUNK_MIN",
]

#: Below this many domain points a dynamic check is evaluated inline —
#: chunking overhead would dominate the numpy sweep it parallelizes.
CHECK_CHUNK_MIN = 4096


def resolve_workers(configured: Optional[int]) -> int:
    """Effective worker count: explicit config wins, else ``REPRO_WORKERS``.

    Returns at least 1; 1 means the serial backend.
    """
    if configured is not None:
        value = int(configured)
    else:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        try:
            value = int(raw) if raw else 1
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {raw!r}"
            ) from None
    if value < 1:
        raise ValueError(f"workers must be >= 1, got {value}")
    return value


def _mp_context():
    """Fork keeps warm numpy/module state and makes spin-up cheap; fall
    back to the platform default where fork is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class _WorkerCaches:
    """What the parent believes one worker process already holds."""

    __slots__ = ("tasks", "regions", "partition_colors", "subsets")

    def __init__(self):
        self.tasks: set = set()              # task uids
        self.regions: set = set()            # region uids
        self.partition_colors: set = set()   # (partition uid, color tuple)
        self.subsets: set = set()            # sparse subset uids

    def clear(self):
        self.tasks.clear()
        self.regions.clear()
        self.partition_colors.clear()
        self.subsets.clear()


class WorkerPool:
    """``n`` persistent single-process executors with deterministic affinity."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("WorkerPool needs at least one worker")
        self.n = n
        self._executors: List[Optional[ProcessPoolExecutor]] = [None] * n
        self.caches: List[_WorkerCaches] = [_WorkerCaches() for _ in range(n)]
        self._closed = False
        #: bumped on every reset: lets callers tell "this worker died" from
        #: "this worker was already respawned by an earlier failure", and
        #: lets the backend discard cache shipments collected from a worker
        #: generation that no longer exists.
        self._generations: List[int] = [0] * n
        #: executors abandoned by reset_worker, drained at shutdown so
        #: their manager threads are joined before interpreter teardown
        #: (CPython's process-pool atexit hook prints "Exception ignored"
        #: noise when it pokes a broken, never-joined executor).
        self._retired: List[ProcessPoolExecutor] = []
        #: parent-owned shared-memory transport (hot-path engine layer 1).
        #: The backend decides per dispatch whether to use it; the arena's
        #: lifecycle is tied to the pool's: generation bumps orphan a
        #: worker's segments, shutdown unlinks everything.
        self.arena = ShmArena(n)
        self.pool_failures = 0
        #: observability hook; the parallel backend points this at the
        #: runtime's profiler so pool failures surface in traces/metrics.
        self.profiler = NULL_PROFILER
        #: optional ``callback(event: str, info: dict)`` fired on worker
        #: resets; the formal conformance harness uses it to observe the
        #: real action ordering.  ``None`` costs nothing.
        self.observer = None

    # ----------------------------------------------------------- lifecycle
    def executor(self, k: int) -> ProcessPoolExecutor:
        """Lazily start worker ``k``'s process."""
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        if self._executors[k] is None:
            self._executors[k] = ProcessPoolExecutor(
                max_workers=1, mp_context=_mp_context()
            )
        return self._executors[k]

    def reset_worker(self, k: int) -> None:
        """Discard a broken worker process and everything it cached."""
        executor = self._executors[k]
        self._executors[k] = None
        self.caches[k].clear()
        self._generations[k] += 1
        self.arena.on_reset(k, self._generations[k])
        if self.observer is not None:
            self.observer(
                "pool.reset", {"worker": k, "generation": self._generations[k]}
            )
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
            self._retired.append(executor)

    def generation(self, k: int) -> int:
        """The respawn generation of worker ``k`` (bumped on every reset)."""
        return self._generations[k]

    def shutdown(self) -> None:
        self._closed = True
        self.arena.close()
        for k in range(self.n):
            executor = self._executors[k]
            self._executors[k] = None
            self.caches[k].clear()
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
        for executor in self._retired:
            try:
                executor.shutdown(wait=True, cancel_futures=True)
            except Exception:
                pass
        self._retired.clear()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------- dispatch
    def submit_shard(self, k: int, plan_blob: bytes):
        """Submit one shard blob to worker ``k``; returns the future."""
        from repro.exec.worker import run_shard_bytes

        return self.executor(k).submit(run_shard_bytes, plan_blob)

    # ------------------------------------------------- chunked batch evals
    def _note_failure(self, reason: str) -> None:
        """Count one infrastructure failure (visible in metrics/traces)."""
        self.pool_failures += 1
        prof = self.profiler
        if prof.enabled:
            prof.count("pool.failures", 1.0, reason=reason)
            prof.instant("pool.failure", "execution", reason=reason)

    @staticmethod
    def _cancel(futures) -> None:
        """Cancel still-pending chunk futures so nothing leaks into a dead
        (or abandoned) executor; finished futures ignore the cancel."""
        for f in futures:
            f.cancel()

    def apply_batch_chunked(self, functor, points: np.ndarray) -> np.ndarray:
        """Evaluate ``functor.apply_batch`` across workers in |D|/n chunks.

        Exact-preserving: chunks are contiguous domain slices concatenated
        in order, so the result is byte-identical to one inline call.
        *Infrastructure* failures — a dead worker process, a functor that
        cannot be pickled, a corrupted result blob — fall back to inline
        evaluation (which is exact) and are counted in ``pool_failures``.
        A functor that *raises* is an application bug: the exception
        propagates exactly as the inline call would have raised it.
        """
        n_points = len(points)
        if n_points < CHECK_CHUNK_MIN or self.n < 2 or self._closed:
            return functor.apply_batch(points)
        chunks = np.array_split(points, self.n)
        from repro.exec.worker import apply_batch_bytes

        try:
            blob = dumps(functor)
        except Exception:
            # Unpicklable functor: transport-level, inline is exact.
            self._note_failure("functor_unpicklable")
            return functor.apply_batch(points)
        futures: list = []
        try:
            futures = [
                (self.executor(k).submit(apply_batch_bytes, blob, chunk))
                for k, chunk in enumerate(chunks)
                if len(chunk)
            ]
            parts = [loads(f.result()) for f in futures]
        except BrokenProcessPool:
            self._cancel(futures)
            self._note_failure("broken_pool")
            for k in range(self.n):
                self.reset_worker(k)
            return functor.apply_batch(points)
        except (pickle.UnpicklingError, EOFError, OSError):
            # Result transport failed; the workers themselves are fine.
            self._cancel(futures)
            self._note_failure("transport")
            return functor.apply_batch(points)
        except BaseException:
            # The functor itself raised (the worker re-raises it through
            # the future): surface it exactly as inline evaluation would,
            # instead of "succeeding" inline only to raise again later.
            self._cancel(futures)
            raise
        return np.concatenate(parts, axis=0)


# ------------------------------------------------------------ pool registry
_POOLS: Dict[int, WorkerPool] = {}


def get_pool(n: int) -> WorkerPool:
    """The shared pool for ``n`` workers, creating it on first use."""
    pool = _POOLS.get(n)
    if pool is None or pool.closed:
        pool = WorkerPool(n)
        _POOLS[n] = pool
    return pool


def shutdown_pools() -> int:
    """Tear down every registered pool; returns how many were active."""
    n = 0
    for pool in list(_POOLS.values()):
        if not pool.closed:
            n += 1
        pool.shutdown()
    _POOLS.clear()
    return n


def active_pool_count() -> int:
    """How many live pools the registry holds (test/teardown hook)."""
    return sum(1 for pool in _POOLS.values() if not pool.closed)


atexit.register(shutdown_pools)
