"""Framed wire protocol for socket-connected workers.

The fork-based :class:`~repro.exec.transport.LocalTransport` ships shard
plans and cache deltas implicitly: everything rides inside one pickled
``ShardPlan`` handed to a ``ProcessPoolExecutor``.  Over a real transport
the delta-shipped worker caches (task blobs, region skeletons, partition
colors, sparse subsets) become *explicit, versioned messages* so that a
worker on another machine — loopback stands in for a cluster node here —
can maintain exactly the persistent state the parent's
``_WorkerCaches`` bookkeeping believes it holds.

Frame layout (big-endian, ``_HEADER.size`` bytes then the payload)::

    magic   4s   b"RPRO"
    version B    PROTOCOL_VERSION of the sender
    msg     B    message type (below)
    seq     I    correlation id; replies echo the request's seq
    length  Q    payload byte count

Message types:

==========  =======================================================
HELLO       worker -> parent: JSON ``{worker, token, pid, version}``
WELCOME     parent -> worker: handshake accepted
REJECT      parent -> worker: JSON ``{reason}``; the worker exits
REGIONS     parent -> worker: pickled region skeleton delta
PARTITIONS  parent -> worker: pickled partition color delta
TASK        parent -> worker: pickled ``(task_uid, task_blob)``
SHARD       parent -> worker: pickled ``ShardPlan`` (deltas stripped)
BATCH       parent -> worker: pickled ``(functor_blob, points)``
RESULT      worker -> parent: raw result bytes for ``seq``
SHUTDOWN    parent -> worker: drain and exit cleanly
SHARDS      parent -> worker: pickled ``[(seq, plan_blob), ...]`` — one
            vectored write carrying a whole per-worker shard batch; the
            worker answers one RESULT per listed seq, in order
CALL        client -> service: pickled ``(command, payload)`` session
            request; the service answers RESULT (or BUSY) echoing seq
BUSY        service -> client: admission control rejected ``seq``; the
            session queue is full, retry after draining replies
==========  =======================================================

Every frame carries the protocol version; :func:`recv_frame` refuses a
mismatched frame with :class:`VersionMismatch` *except* during the
handshake, where the parent inspects the HELLO's version explicitly so it
can answer with a descriptive REJECT instead of slamming the connection.

The framing layer never interprets payloads, so corruption injected by
the fault layer (a garbled result blob) travels through untouched and is
discovered by the parent's unpickle — the same place a truncated TCP
stream would surface on a real cluster.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import NamedTuple

__all__ = [
    "PROTOCOL_VERSION",
    "MAGIC",
    "HELLO",
    "WELCOME",
    "REJECT",
    "REGIONS",
    "PARTITIONS",
    "TASK",
    "SHARD",
    "BATCH",
    "RESULT",
    "SHUTDOWN",
    "SHARDS",
    "CALL",
    "BUSY",
    "MSG_NAMES",
    "Frame",
    "FrameDecoder",
    "WireError",
    "VersionMismatch",
    "pack_frame",
    "send_frame",
    "recv_frame",
    "json_payload",
    "parse_json",
]

MAGIC = b"RPRO"
#: Bump on any incompatible change to framing or message payloads; the
#: handshake rejects a peer built against a different version.
#: v2 added the SHARDS batched-submit message.
#: v3 added the service messages: CALL (client command) and BUSY
#: (admission-control backpressure, echoes the rejected seq).
PROTOCOL_VERSION = 3

(
    HELLO,
    WELCOME,
    REJECT,
    REGIONS,
    PARTITIONS,
    TASK,
    SHARD,
    BATCH,
    RESULT,
    SHUTDOWN,
    SHARDS,
    CALL,
    BUSY,
) = range(1, 14)

MSG_NAMES = {
    HELLO: "HELLO",
    WELCOME: "WELCOME",
    REJECT: "REJECT",
    REGIONS: "REGIONS",
    PARTITIONS: "PARTITIONS",
    TASK: "TASK",
    SHARD: "SHARD",
    BATCH: "BATCH",
    RESULT: "RESULT",
    SHUTDOWN: "SHUTDOWN",
    SHARDS: "SHARDS",
    CALL: "CALL",
    BUSY: "BUSY",
}

_HEADER = struct.Struct(">4sBBIQ")

#: Refuse absurd frame lengths outright: a desynchronized stream read as a
#: header must not turn into a multi-gigabyte allocation.
MAX_PAYLOAD = 1 << 32


class WireError(ConnectionError):
    """Protocol violation: bad magic, oversized frame, unknown message."""


class VersionMismatch(WireError):
    """The peer speaks a different PROTOCOL_VERSION."""


class Frame(NamedTuple):
    version: int
    msg: int
    seq: int
    payload: bytes


def pack_frame(
    msg: int, seq: int, payload: bytes = b"",
    version: int = PROTOCOL_VERSION,
) -> bytes:
    if msg not in MSG_NAMES:
        raise ValueError(f"unknown message type {msg}")
    return _HEADER.pack(MAGIC, version, msg, seq, len(payload)) + payload


def send_frame(
    sock: socket.socket, msg: int, seq: int, payload: bytes = b"",
    version: int = PROTOCOL_VERSION,
) -> None:
    sock.sendall(pack_frame(msg, seq, payload, version=version))


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    parts = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts) if len(parts) != 1 else parts[0]


def recv_frame(sock: socket.socket, check_version: bool = True) -> Frame:
    """Read one complete frame, surviving partial recvs.

    ``check_version=False`` returns mismatched-version frames instead of
    raising, so the handshake can answer them with a REJECT.
    """
    header = _recv_exactly(sock, _HEADER.size)
    magic, version, msg, seq, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if msg not in MSG_NAMES:
        raise WireError(f"unknown message type {msg}")
    if length > MAX_PAYLOAD:
        raise WireError(f"frame length {length} exceeds limit")
    if check_version and version != PROTOCOL_VERSION:
        raise VersionMismatch(
            f"peer protocol version {version}, ours {PROTOCOL_VERSION}"
        )
    payload = _recv_exactly(sock, length) if length else b""
    return Frame(version, msg, seq, payload)


class FrameDecoder:
    """Incremental frame reassembly for non-blocking byte streams.

    The pipe transport reads whatever ``os.read`` hands it — arbitrary
    byte runs with no message alignment — so frames are reassembled
    statefully: :meth:`feed` appends raw bytes, :meth:`next` yields one
    complete :class:`Frame` (or ``None`` until enough bytes arrive).
    Validation matches :func:`recv_frame`: bad magic, unknown message,
    or an absurd length poison the stream with :class:`WireError`; a
    mismatched version raises :class:`VersionMismatch` unless
    ``check_version=False``.
    """

    __slots__ = ("_buf", "_header", "_check_version")

    def __init__(self, check_version: bool = True):
        self._buf = bytearray()
        self._header = None
        self._check_version = check_version

    def feed(self, data: bytes) -> None:
        self._buf += data

    def next(self):
        buf = self._buf
        if self._header is None:
            if len(buf) < _HEADER.size:
                return None
            magic, version, msg, seq, length = _HEADER.unpack_from(buf)
            if magic != MAGIC:
                raise WireError(f"bad frame magic {bytes(magic)!r}")
            if msg not in MSG_NAMES:
                raise WireError(f"unknown message type {msg}")
            if length > MAX_PAYLOAD:
                raise WireError(f"frame length {length} exceeds limit")
            if self._check_version and version != PROTOCOL_VERSION:
                raise VersionMismatch(
                    f"peer protocol version {version}, ours {PROTOCOL_VERSION}"
                )
            del buf[:_HEADER.size]
            self._header = (version, msg, seq, length)
        version, msg, seq, length = self._header
        if len(buf) < length:
            return None
        payload = bytes(buf[:length])
        del buf[:length]
        self._header = None
        return Frame(version, msg, seq, payload)


def json_payload(**fields) -> bytes:
    """Handshake payloads are JSON: human-debuggable and pickle-free."""
    return json.dumps(fields, sort_keys=True).encode("utf-8")


def parse_json(payload: bytes) -> dict:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"bad handshake payload: {exc}") from None
    if not isinstance(obj, dict):
        raise WireError("handshake payload must be a JSON object")
    return obj
