"""Worker-process entry points for the parallel execution backend.

One worker owns a persistent reconstruction of the slice of the parent's
world it has been shipped: region skeletons (storage allocated, zeroed —
only footprint data travels, per launch), partition stubs holding exactly
the colors its shards project onto, sparse subsets by uid, and unpickled
task functions.  Per shard it then mirrors the serial pipeline tail —
expansion (projection), physical analysis against a snapshot of the
parent's analyzer state, and task-body execution — and ships back portable
deltas: dependence edges, symbolic analyzer ops, write-back footprints,
recorded reductions, future values, and execution spans.

Determinism notes:

* Task ids are placeholders ``-(ordinal + 1)``; the parent re-stamps them.
* Reductions are *recorded, not applied*: ``np.add.at`` with duplicate
  indices is order-sensitive, so the parent replays the recorded calls in
  serial task order for bit-identical floating point results.
* Write-backs return final values *with* their indices, so the parent can
  scatter without re-deriving footprints.
* Workers never see ``ctx.runtime`` (it is None): a task attempting a
  nested launch fails here, and the parent falls back to the serial
  backend, which reproduces the serial behavior exactly.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.domain import Point, Rect
from repro.core.launch import RegionRequirement
from repro.data.collection import Region, SparseSubset, Subregion
from repro.data.privileges import Privilege
from repro.exec.plan import (
    ShardPlan,
    ShardResult,
    TaskResult,
    dumps,
    loads,
    op_record,
    priv_from_token,
)
from repro.runtime.physical import PhysicalAnalyzer, _footprint_key, _User
from repro.runtime.task import PhysicalRegion, TaskContext

__all__ = [
    "run_shard_bytes",
    "apply_batch_bytes",
    "install_regions",
    "install_partitions",
    "install_task",
    "handle_frame",
    "serve_pipe",
    "reset_state",
]


# ------------------------------------------------- persistent worker state
_REGIONS: Dict[int, Region] = {}
_SUBSETS: Dict[int, Any] = {}
_PARTITIONS: Dict[int, "_PartitionStub"] = {}
_TASKS: Dict[int, Any] = {}
_SHM: Dict[str, Any] = {}  # attached parent-owned segments, by name


def reset_state() -> None:
    """Wipe the persistent caches back to a fresh-process state.

    A ``--listen`` socket worker serves a succession of parent
    connections; each new parent's delta-shipping bookkeeping assumes a
    blank worker, and stale region uids from a previous parent must never
    collide with the new one's."""
    _REGIONS.clear()
    _SUBSETS.clear()
    _PARTITIONS.clear()
    _TASKS.clear()
    for shm in _SHM.values():
        try:
            shm.close()
        except Exception:  # pragma: no cover - segment already gone
            pass
    _SHM.clear()


def _attach_shm(name: str):
    """Attach (and cache) one parent-owned shared-memory segment.

    The attachment is immediately unregistered from this process's resource
    tracker: segments are parent-owned, and a worker death must never let a
    tracker cleanup unlink memory the parent still uses.
    """
    shm = _SHM.get(name)
    if shm is None:
        from multiprocessing import resource_tracker, shared_memory

        shm = shared_memory.SharedMemory(name=name)
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker impl details vary
            pass
        _SHM[name] = shm
    return shm


def _shm_view(name: str, offset: int, count: int, dtype: str) -> np.ndarray:
    return np.ndarray(
        count, dtype=np.dtype(dtype), buffer=_attach_shm(name).buf,
        offset=offset,
    )


class _PartitionStub:
    """Just enough of a Partition to serve ``RegionRequirement.project``."""

    __slots__ = ("uid", "region", "_subregions")

    def __init__(self, uid: int, region: Region):
        self.uid = uid
        self.region = region
        self._subregions: Dict[tuple, Subregion] = {}

    def add_color(self, color: tuple, subset) -> None:
        if color not in self._subregions:
            self._subregions[color] = Subregion(
                self.region, subset, Point(*color), self
            )

    def __getitem__(self, color) -> Subregion:
        return self._subregions[tuple(color)]


class _RecordingRegion(PhysicalRegion):
    """A REDUCE accessor that logs contributions instead of applying them."""

    __slots__ = ("_log",)

    def __init__(self, subregion, privilege, fields, log):
        super().__init__(subregion, privilege, fields)
        self._log = log

    def reduce(self, fname: str, values) -> None:
        self._check_field(fname)
        # Same privilege gate as PhysicalRegion.reduce, same error text.
        from repro.runtime.task import PrivilegeError

        if self.privilege.privilege is not Privilege.REDUCE:
            raise PrivilegeError(
                f"task holds {self.privilege!r} on {self.subregion!r}; "
                f"reduce denied"
            )
        self._log.append(
            (
                self.subregion.region.uid,
                fname,
                self.subregion._indices(),
                np.array(values, copy=True),
                self.privilege.redop.name,
            )
        )


# ---------------------------------------------------------- reconstruction
def _resolve_subset(ref: tuple):
    kind = ref[0]
    if kind == "rect":
        from repro.data.collection import RectSubset

        subset = RectSubset(Rect(ref[1], ref[2]))
        subset.uid = ref[3]
        return subset
    if kind == "sparse":
        subset = SparseSubset(ref[2])
        subset.uid = ref[1]
        _SUBSETS[ref[1]] = subset
        return subset
    if kind == "sparse_ref":
        return _SUBSETS[ref[1]]
    raise ValueError(f"unknown subset ref {ref[0]!r}")


def install_regions(entries) -> None:
    """Install region-skeleton deltas (plan field or REGIONS wire frame)."""
    for uid, name, lo, hi, fields in entries:
        # Never replace an installed region: partition stubs hold references
        # to it, and a bailed dispatch can make the parent re-ship skeletons
        # this worker already has.  Same uid means same immutable shape.
        if uid in _REGIONS:
            continue
        region = Region(name, Rect(lo, hi), {fname: dt for fname, dt in fields})
        region.uid = uid
        _REGIONS[uid] = region


def install_partitions(entries) -> None:
    """Install partition-color deltas (plan field or PARTITIONS frame)."""
    for entry in entries:
        stub = _PARTITIONS.get(entry.uid)
        if stub is None:
            stub = _PartitionStub(entry.uid, _REGIONS[entry.region_uid])
            _PARTITIONS[entry.uid] = stub
        for color, ref in entry.colors:
            stub.add_color(color, _resolve_subset(ref))


def install_task(uid: int, blob: bytes) -> None:
    """Install one task function (plan field or TASK wire frame)."""
    _TASKS[uid] = loads(blob)


def _install_plan_state(plan: ShardPlan) -> None:
    install_regions(plan.regions)
    install_partitions(plan.partitions)
    if plan.task_blob is not None:
        install_task(plan.task_uid, plan.task_blob)
    for entry in plan.read_data:
        if entry[0] == "shm":
            (_, region_uid, fname, seg, idx_off, count,
             idx_dtype, val_off, val_dtype) = entry
            idx = _shm_view(seg, idx_off, count, idx_dtype)
            values = _shm_view(seg, val_off, count, val_dtype)
        else:
            region_uid, fname, idx, values = entry
        _REGIONS[region_uid].storage(fname)[idx] = values


def _snapshot_analyzer(plan: ShardPlan) -> PhysicalAnalyzer:
    """A fresh analyzer seeded with the parent's pre-launch user state."""
    analyzer = PhysicalAnalyzer()
    for region_uid, refs in plan.snapshot.items():
        region = _REGIONS[region_uid]
        users = []
        for ref in refs:
            partition = None
            if ref.partition_uid is not None:
                partition = _PARTITIONS.get(ref.partition_uid)
                if partition is None:
                    partition = _PartitionStub(ref.partition_uid, region)
                    _PARTITIONS[ref.partition_uid] = partition
            subregion = Subregion(
                region,
                _resolve_subset(ref.subset),
                Point(*ref.color) if ref.color is not None else None,
                partition,
            )
            user = _User(
                list(ref.task_ids),
                subregion,
                priv_from_token(ref.priv),
                ref.fields,
            )
            if user.footprint_key() != ref.key:
                raise RuntimeError(
                    f"snapshot key mismatch for region {region_uid}: "
                    f"{user.footprint_key()} != {ref.key}"
                )
            users.append(user)
        analyzer._users[region_uid] = users
    return analyzer


# ----------------------------------------------------------- fault firing
class _CorruptResult(BaseException):
    """Raised by a ``corrupt`` directive; run_shard_bytes garbles the blob.

    Subclasses BaseException so no application-level except clause can
    swallow it between the firing site and the entry point.
    """


def _fire_faults(
    faults, phase: str, point: Optional[tuple] = None
) -> None:
    """Fire armed directives matching this phase (and point, if given).

    Real effects only — this is the injected analogue of actual worker
    failures: ``kill`` hard-exits the process (the parent observes a
    ``BrokenProcessPool``), ``hang`` sleeps (the parent's shard timeout
    converts a long enough sleep into a respawn), ``corrupt`` makes the
    result blob unreadable (the parent retries the same worker).
    """
    for kind, ph, pt, hang_s in faults:
        if ph != phase:
            continue
        # Exact anchor match: worker/shard directives (pt None) fire at the
        # phase boundary; point directives fire only at their point.
        if (pt is None) != (point is None):
            continue
        if pt is not None and tuple(point) != tuple(pt):
            continue
        if kind == "hang":
            time.sleep(hang_s)
        elif kind == "kill":
            os._exit(13)
        elif kind == "corrupt":
            raise _CorruptResult()


# -------------------------------------------------------------- shard body
def _run_shard(plan: ShardPlan) -> ShardResult:
    t0 = time.perf_counter()
    faults = plan.faults or []
    _fire_faults(faults, "install")
    _install_plan_state(plan)
    task = _TASKS[plan.task_uid]
    result = ShardResult(node=plan.node, t0=t0)

    # Expansion: project every requirement at every local point.
    _fire_faults(faults, "expansion")
    reqs = [
        RegionRequirement(
            privilege=priv_from_token(r.priv),
            fields=r.fields,
            partition=_PARTITIONS[r.partition_uid],
            functor=r.functor,
        )
        for r in plan.reqs
    ]
    resolved_fields = [r.resolved_fields for r in plan.reqs]
    point_tasks = []
    for i, pt in enumerate(plan.points):
        point = Point(*pt)
        subregions = [req.project(point) for req in reqs]
        extra = (
            plan.point_extra_args[i]
            if plan.point_extra_args is not None
            else ()
        )
        point_tasks.append((i, point, subregions, plan.args + extra))

    # Physical analysis on the snapshot, capturing symbolic ops so the
    # parent can replay the state transition onto its own analyzer.
    ops_per_task: List[Optional[List[tuple]]] = [None] * len(point_tasks)
    deps_per_task: List[List[tuple]] = [[] for _ in point_tasks]
    _fire_faults(faults, "physical")
    if plan.analyze:
        analyzer = _snapshot_analyzer(plan)
        for i, point, subregions, _args in point_tasks:
            placeholder = -(plan.ordinals[i] + 1)
            capture: List[List] = []
            accesses = [
                (sub, req.privilege, rf)
                for sub, req, rf in zip(subregions, reqs, resolved_fields)
            ]
            deps = analyzer.record_task(
                placeholder, accesses, _capture=capture
            )
            for dep in deps:
                if dep.earlier_task < 0:
                    # An in-shard dependence would mean the launch
                    # interferes — ineligible by construction; bail hard.
                    raise RuntimeError(
                        "unexpected intra-launch dependence in worker"
                    )
                deps_per_task[i].append((dep.earlier_task, dep.region_uid))
            records = []
            for access_op in capture[0]:
                created_key = None
                if access_op.create is not None:
                    created_key = _footprint_key(*access_op.create)
                records.append(op_record(access_op, created_key))
            ops_per_task[i] = records

    # Execution: run bodies against worker storage, recording reductions
    # instead of applying them and gathering write-back footprints.
    _fire_faults(faults, "execution")
    for i, point, subregions, args in point_tasks:
        _fire_faults(faults, "execution", point=tuple(point))
        reduce_log: List[tuple] = []
        regions = []
        for sub, req, rf in zip(subregions, reqs, resolved_fields):
            if req.privilege.privilege is Privilege.REDUCE:
                regions.append(
                    _RecordingRegion(sub, req.privilege, rf, reduce_log)
                )
            else:
                regions.append(PhysicalRegion(sub, req.privilege, rf))
        ctx = TaskContext(point=point, node=plan.node, runtime=None)
        start = time.perf_counter() if plan.profile else 0.0
        value = task(ctx, *regions, *args)
        end = time.perf_counter() if plan.profile else 0.0

        writes: List[tuple] = []
        slots = (
            plan.write_slots[i] if plan.write_slots is not None else None
        )
        slot_i = 0
        for sub, req, rf in zip(subregions, reqs, resolved_fields):
            if req.privilege.privilege not in (
                Privilege.WRITE,
                Privilege.READ_WRITE,
            ):
                continue
            idx = sub._indices()
            for fname in rf:
                slot = None
                if slots is not None and slot_i < len(slots):
                    slot = slots[slot_i]
                slot_i += 1
                # Fancy indexing materializes a fresh copy either way.
                data = sub.region.storage(fname)[idx]
                if slot is not None and slot[2] == len(idx):
                    # Parent pre-allocated a gather-back slot (same idx by
                    # pure projection); fill it and ship nothing.
                    seg, val_off, count, val_dtype = slot
                    _shm_view(seg, val_off, count, val_dtype)[:] = data
                    continue
                writes.append((sub.region.uid, fname, idx, data))
        result.tasks.append(
            TaskResult(
                ordinal=plan.ordinals[i],
                point=tuple(point),
                value_blob=dumps(value),
                deps=deps_per_task[i],
                ops=ops_per_task[i],
                writes=writes,
                reduces=reduce_log,
                span=(start, end) if plan.profile else None,
            )
        )
    return result


def run_shard_bytes(blob: bytes) -> bytes:
    """Executor entry point: blob in, ("ok", result) | ("error", ...) out."""
    try:
        plan = loads(blob)
        result = _run_shard(plan)
        return dumps(("ok", result))
    except _CorruptResult:
        # Injected corruption: bytes that cannot unpickle, exactly what a
        # truncated/garbled transport would hand the parent.
        return b"\x80\x04repro-injected-corrupt-result"
    except BaseException as exc:  # noqa: BLE001 - ships diagnosis to parent
        try:
            return dumps(
                ("error", f"{type(exc).__name__}: {exc}", traceback.format_exc())
            )
        except Exception:  # pragma: no cover - unpicklable exception repr
            return dumps(("error", type(exc).__name__, ""))


def apply_batch_bytes(functor_blob: bytes, points: np.ndarray) -> bytes:
    """Executor entry point for chunked dynamic-check evaluation."""
    functor = loads(functor_blob)
    return dumps(functor.apply_batch(points))


# ------------------------------------------------------- framed serve loops
def handle_frame(frame, reply) -> bool:
    """Dispatch one wire frame against the persistent worker state.

    Shared by the socket serve loop and the pipe serve loop so both
    transports run the exact same worker: ``reply(seq, payload)`` sends
    one RESULT frame back.  Returns ``False`` on SHUTDOWN.
    """
    from repro.exec import wire

    if frame.msg == wire.SHUTDOWN:
        return False
    if frame.msg == wire.SHARD:
        reply(frame.seq, run_shard_bytes(frame.payload))
    elif frame.msg == wire.SHARDS:
        # One vectored submit carrying a whole per-worker shard batch;
        # each shard still answers its own RESULT so the parent's fault
        # ladder keeps per-shard granularity.
        for seq, blob in loads(frame.payload):
            reply(seq, run_shard_bytes(blob))
    elif frame.msg == wire.BATCH:
        functor_blob, points = loads(frame.payload)
        reply(frame.seq, apply_batch_bytes(functor_blob, points))
    elif frame.msg == wire.REGIONS:
        install_regions(loads(frame.payload))
    elif frame.msg == wire.PARTITIONS:
        install_partitions(loads(frame.payload))
    elif frame.msg == wire.TASK:
        uid, blob = loads(frame.payload)
        install_task(uid, blob)
    return True


def serve_pipe(rfd: int, wfd: int) -> None:
    """Blocking serve loop for a pipe-connected (forked) worker child.

    No handshake: the child was forked from this very interpreter, so
    version and code identity are guaranteed.  EOF on the read pipe
    (parent died or discarded us) ends the loop like a SHUTDOWN.
    """
    from repro.exec import wire

    def reply(seq: int, payload: bytes) -> None:
        data = wire.pack_frame(wire.RESULT, seq, payload)
        view = memoryview(data)
        while view:
            view = view[os.write(wfd, view):]

    decoder = wire.FrameDecoder()
    while True:
        frame = decoder.next()
        if frame is None:
            chunk = os.read(rfd, 1 << 20)
            if not chunk:
                return
            decoder.feed(chunk)
            continue
        if not handle_frame(frame, reply):
            return
