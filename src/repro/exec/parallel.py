"""The shard-parallel execution backend.

Fans the pipeline tail of a verified index launch out across the worker
pool — one shard per node of the distribution assignment, worker affinity
``shard % workers`` — and merges the results so that every observable is
byte-identical to :class:`~repro.exec.backend.SerialBackend`: region
contents, future values, dependence edges, ``PipelineStats``, analyzer
state, RNG consumption, and Chrome-trace schema.

The determinism contract rests on three rules:

1. **Commit after collect.**  Nothing in the parent mutates — no stats, no
   counters, no task ids, no analyzer state, no region bytes, no RNG —
   until every shard has answered.  Any failure before that point (worker
   exception, pickling error, broken pool) abandons the dispatch and
   re-runs the launch through the owned serial backend, which reproduces
   serial behavior exactly, including exceptions and their partial effects.
2. **Merge in serial order.**  Shard results are committed in sorted node
   order (the serial plan order): worker analyzer ops replay against the
   parent's analyzer task by task, write-backs scatter and recorded
   reductions re-apply in the serial (then optionally shuffled) execution
   order, and futures fill the FutureMap in that same order.
3. **Only verified launches.**  Eligibility requires a launch the safety
   analysis verified (static or hybrid): point tasks are pairwise
   non-interfering, so no dependence edge, retirement, or footprint can
   cross shards — which is precisely what makes the merge exact.  Anything
   else — unverified, trusted-without-validation, single-shard, or a
   launch whose REDUCE requirement shares fields of a region with another
   requirement (its bodies would observe half-applied reductions) — runs
   on the serial backend.

**Pipelined dispatch** (``RuntimeConfig.pipeline_depth`` /
``REPRO_PIPELINE_DEPTH``, default 1 = off) relaxes only *when* rule 1's
collect happens, never the commit order.  With depth > 1 a replayed
launch whose region-uid footprint is disjoint from every uncommitted
write of the launches already in flight (see
:class:`~repro.runtime.kernels.LaunchFootprintCache`) is *submitted* —
all shards of each worker in one vectored write — and its unfilled
``FutureMap`` returned immediately; its collect + commit are deferred to
a strictly-FIFO drain.  Drains fire when the pipeline fills, when a new
operation touches a pending write set, when anything needs committed
state (a region read, a future value, a single task, a serial-path
launch, cache invalidation, poison), or via :meth:`Runtime.drain`.
Because commits stay in issue order, every observable — region bytes,
stats, task ids, RNG, dependence edges — is byte-identical to depth 1,
including under the fault-recovery ladder (a tier-2 respawn cancels
pipelined-ahead shards on the dead worker; their collects see stale
generations and resubmit for free).
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict, deque
from concurrent.futures import CancelledError
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.domain import Point
from repro.data.privileges import REDUCTION_OPS, Privilege
from repro.exec.backend import ExecutionBackend, SerialBackend
from repro.fault.plan import InjectedFaultError, RetryPolicy
from repro.exec.plan import (
    PartitionEntry,
    ReqTemplate,
    ShardPlan,
    UserRef,
    dumps,
    loads,
    priv_token,
    region_spec,
    subset_ref,
)
from repro.exec.pool import get_pool
from repro.exec.shm import shm_env_enabled
from repro.runtime.futures import FutureMap
from repro.runtime.physical import (
    AccessOp,
    TaskDependence,
    _footprint_key,
    _same_subset,
    _User,
    make_template,
)
from repro.runtime.pipeline import Stage
from repro.runtime.replay import ExpansionTemplate, PointPlan
from repro.runtime.task import PhysicalRegion

__all__ = [
    "ParallelBackend",
    "ParallelExecStats",
    "resolve_pipeline_depth",
    "resolve_plan_memo",
]

#: How many launch signatures keep a memoized shard-plan skeleton (LRU).
_PLAN_MEMO_CAP = 64


def resolve_plan_memo(configured: Optional[bool]) -> bool:
    """Effective plan-memo switch: explicit config wins, else env
    ``REPRO_PLAN_MEMO`` (unset/1 = on, 0 = off — the byte-identity
    ablation kill switch, mirroring ``REPRO_SHM``)."""
    if configured is not None:
        return bool(configured)
    return os.environ.get("REPRO_PLAN_MEMO", "1").strip() != "0"


def resolve_pipeline_depth(configured: Optional[int]) -> int:
    """Effective pipeline depth: explicit config wins, else env
    ``REPRO_PIPELINE_DEPTH``; default (and kill switch) is 1 — collect
    every launch before issuing the next, exactly the unpipelined path."""
    if configured is not None:
        value = int(configured)
    else:
        raw = os.environ.get("REPRO_PIPELINE_DEPTH", "").strip()
        try:
            value = int(raw) if raw else 1
        except ValueError:
            raise ValueError(
                f"REPRO_PIPELINE_DEPTH must be an integer, got {raw!r}"
            ) from None
    if value < 1:
        raise ValueError(f"pipeline depth must be >= 1, got {value}")
    return value


class _ParallelBail(Exception):
    """Abandon a dispatch and fall back to the serial backend."""

    def __init__(self, reason: str, poison: bool = False):
        super().__init__(reason)
        self.reason = reason
        self.poison = poison


class _InfraFailure(Exception):
    """A shard attempt lost to infrastructure, not to application code.

    ``kind`` drives the recovery ladder: ``broken``/``timeout`` mean the
    worker process itself is gone or wedged (tier 2: respawn), while
    ``corrupt``/``cancelled`` mean the process may be fine and a plain
    resubmission can succeed (tier 1: same-worker retry).
    """

    def __init__(self, kind: str, detail: str):
        super().__init__(f"{kind}: {detail}")
        self.kind = kind
        self.detail = detail


@dataclass
class _ShardJob:
    """One shard's dispatch state across retry attempts."""

    shard_index: int
    node: int
    k: int                                   # worker affinity
    local: list                              # the node's domain points
    ordinals: List[int]
    local_projs: List[List[Any]]
    gen: int = -1                            # worker generation at submit
    mark: float = 0.0                        # profiler mark at submit
    future: Any = None
    staged: Optional[dict] = None            # cache delta of this attempt
    payload: Any = None
    #: parent-side shm gather-back map of the *current* attempt:
    #: global ordinal -> [(region uid, field, idx, shm view)], rebuilt on
    #: every (re)submission so commit always reads the attempt it awaited.
    shm_writes: Optional[Dict[int, list]] = None


@dataclass
class ParallelExecStats:
    """Backend-local accounting.

    Deliberately *not* part of :class:`PipelineStats`: the pipeline tables
    must stay byte-identical between backends, so everything specific to
    the worker pool lives here.
    """

    parallel_launches: int = 0      # launches committed from shard results
    serial_launches: int = 0        # ineligible launches run serially
    fallbacks: int = 0              # dispatches abandoned mid-flight
    merge_fallbacks: int = 0        # merges replaced by live analysis
    shards_dispatched: int = 0
    tasks_shipped: int = 0
    # --- recovery ladder (see docs/fault-tolerance.md)
    shard_retries: int = 0          # tier 1: resubmissions, same worker
    worker_respawns: int = 0        # tier 2: worker process replacements
    shard_timeouts: int = 0         # hangs converted into respawns
    backoff_total_s: float = 0.0    # wall-clock slept between attempts
    stale_shipments_dropped: int = 0  # cache deltas from respawned gens
    # --- hot-path engine (see docs/hot-path.md)
    batched_commit_ops: int = 0     # vectorized scatter/reduce applications
    batched_commit_tasks: int = 0   # tasks whose effects committed batched
    # --- plan-skeleton memo (replay path; see docs/service.md)
    plan_memo_hits: int = 0         # shards rebuilt from a memoized skeleton
    plan_memo_blob_reuse: int = 0   # shards whose pickled blob shipped as-is


@dataclass
class _PlanMemoShard:
    """One shard's memoized plan skeleton (see :class:`_PlanMemo`)."""

    gen: int                        # worker generation the skeleton targets
    shm_on: bool                    # arena staging state at build
    plan: ShardPlan                 # empty-delta skeleton (analyze=False)
    blob: Optional[bytes]           # pickled skeleton; None = never reusable
    #: ordered read-gather layout: (region uid, field, unique idx array),
    #: exactly the slow path's ``shipped.items()`` iteration order.
    reads: List[tuple]
    #: the shm descriptor each read staged at build (None for any entry
    #: that traveled as a pickled tuple); blob reuse requires the fresh
    #: descriptors to repeat these byte for byte.
    built: List[Optional[tuple]]
    #: per local point: [(region uid, field, idx array, dtype str), ...]
    #: in the worker's gather order; None when built with shm off.
    write_layout: Optional[List[List[tuple]]]


@dataclass
class _PlanMemo:
    """Memoized shard-plan construction for one launch signature.

    ROADMAP item 3's last parent-side cost: on the steady replay path the
    ``ShardPlan`` rebuild + pickle dominates dispatch (~1.4 ms per 8-shard
    launch).  Everything in the plan except the footprint bytes is pure in
    (signature, assignment, args): projections, requirement templates, and
    the empty cache deltas of a warm worker.  This memo keeps the skeleton
    per shard and re-stamps only the live parts — fresh footprint values
    (and their arena slots) per issue.  In shm steady state the arena
    rewinds offsets to zero after every commit, so the staged descriptors
    repeat byte for byte and even the pickled blob ships as-is.

    Validity is checked structurally on every use (assignment identity,
    args equality, worker generation, shm/profiler state); anything stale
    falls back to the ordinary build and overwrites the memo.  Faulty runs
    (an armed injector) bypass the memo entirely so directive-consumption
    order is untouched.
    """

    args: tuple
    assignment_key: Any             # identity token (the sharding cache's dict)
    profile: bool
    nodes: List[int]
    flat_points: List[Tuple[int, Point]]
    projections: Optional[List[List[Any]]] = None
    shards: Dict[int, _PlanMemoShard] = field(default_factory=dict)


@dataclass
class _Dispatch:
    """Everything collected from a successful round of shard results."""

    nodes: List[int]
    points: List[Tuple[int, Point]]          # (node, point) in serial order
    tasks: List[Any]                          # TaskResult per global ordinal
    values: List[Any]                         # decoded future values
    task_worker: List[Tuple[int, float]]      # (worker index, span offset)
    analyzed: bool
    # (worker index, worker generation at success, staged cache delta):
    # committed only while the generation still holds — a respawn wipes the
    # worker state a stale shipment would otherwise claim it has.
    shipments: List[Tuple[int, int, dict]] = field(default_factory=list)
    #: global ordinal -> [(uid, field, idx, shm view)] write-backs that
    #: traveled through shared memory instead of the result blob.
    shm_writes: Optional[Dict[int, list]] = None


@dataclass
class _InFlight:
    """A launch's shards between submission and collection."""

    nodes: List[int]
    flat_points: List[Tuple[int, Point]]
    jobs: List[_ShardJob]
    analyzed: bool
    #: per-job rebuild-and-resubmit closure for the recovery ladder.
    resubmit: Any
    #: whether any footprint of this submission holds arena slots (decides
    #: when the arena may rewind while later launches are still pending).
    used_shm: bool


@dataclass
class _PendingLaunch:
    """One pipelined-ahead launch awaiting its FIFO drain."""

    launch: Any
    sig: tuple
    op_id: int
    assignment: Dict[int, list]
    replay: bool
    safe_order_free: bool
    cache: Any
    inflight: _InFlight
    #: the unfilled FutureMap already handed to the program; filled (or
    #: poisoned) at drain.  Reading it forces the drain.
    fmap: FutureMap
    #: fault-injector launch ordinal at submit, restored around the drain
    #: so retries re-arm against the right launch window.
    fault_ordinal: Optional[int]
    #: profiler mark taken at submission (the parallel.shards span start).
    t_par: Any
    touched: frozenset
    written: frozenset
    used_shm: bool


class ParallelBackend(ExecutionBackend):
    """Multi-process pipeline tail with deterministic merge."""

    name = "parallel"

    def __init__(self, rt, workers: int):
        super().__init__(rt)
        self.workers = workers
        # Resolved eagerly so a bad RuntimeConfig.transport/REPRO_TRANSPORT
        # fails at Runtime construction, not mid-dispatch.
        from repro.exec.transport import resolve_transport

        self.transport = resolve_transport(
            getattr(rt.config, "transport", None)
        )
        self.serial = SerialBackend(rt)
        self.stats = ParallelExecStats()
        self._pool = None
        self._task_blobs: Dict[int, bytes] = {}
        self._poisoned_tasks: set = set()
        # --- pipelined dispatch (depth 1 = off, the unpipelined path).
        self.pipeline_depth = resolve_pipeline_depth(
            getattr(rt.config, "pipeline_depth", None)
        )
        self.plan_memo_enabled = resolve_plan_memo(
            getattr(rt.config, "plan_memo", None)
        )
        #: sig -> _PlanMemo, LRU-capped at _PLAN_MEMO_CAP signatures.
        self._plan_memo: "OrderedDict[tuple, _PlanMemo]" = OrderedDict()
        self._pending: "deque[_PendingLaunch]" = deque()
        #: True while this backend is submitting, collecting, or
        #: committing: drain hooks observed re-entrantly are no-ops.
        self._draining = False
        self._owner_pid = os.getpid()
        self._drain_hook = self._make_drain_hook()
        self._hook_installed = False
        from repro.runtime.kernels import LaunchFootprintCache

        self._footprints = LaunchFootprintCache()
        #: Optional action-ordering observer: ``observer(event, info)`` is
        #: called synchronously at every protocol transition (submit,
        #: collect, retry, respawn, fallback, commit shipment handling).
        #: Used by the formal conformance harness (src/repro/formal/) to
        #: compare the real execution order against model-checker traces;
        #: None (the default) costs nothing.
        self.observer = None

    def _observe(self, event: str, **info) -> None:
        if self.observer is not None:
            self.observer(event, info)

    # ------------------------------------------------------------ plumbing
    def pool(self):
        if self._pool is None or self._pool.closed:
            self._pool = get_pool(self.workers, self.transport)
        # Re-point every fetch: pools are shared across runtimes, and pool
        # failures should land in *this* runtime's metrics/trace.
        self._pool.profiler = self.rt.profiler
        self._pool.observer = self.observer
        return self._pool

    def batch_evaluator(self, functor, points: np.ndarray) -> np.ndarray:
        """Chunked functor evaluation for large dynamic checks."""
        return self.pool().apply_batch_chunked(functor, points)

    # ---------------------------------------------------------- eligibility
    def _eligible(self, launch, assignment, safe_order_free: bool) -> bool:
        cfg = self.rt.config
        if not (cfg.validate_safety and safe_order_free):
            # Only launches the analysis actually *verified* are known to
            # be pairwise non-interfering; trusted launches may interfere
            # and their in-launch dependence edges only the serial path
            # reproduces.
            return False
        if len(assignment) < 2 or self.workers < 2:
            return False
        if launch.task.uid in self._poisoned_tasks:
            return False
        reqs = launch.requirements
        if any(req.partition is None for req in reqs):
            # Subregion-only requirements have no projection to shard.
            return False
        for i, a in enumerate(reqs):
            if a.privilege.privilege is not Privilege.REDUCE:
                continue
            fa = set(a.resolved_fields())
            for j, b in enumerate(reqs):
                if j == i or b.privilege.privilege is Privilege.REDUCE:
                    continue
                if b.region.uid == a.region.uid and fa & set(
                    b.resolved_fields()
                ):
                    # The body would read (or write around) a region it is
                    # also reducing into; recorded-reduction replay cannot
                    # interleave with that exactly.
                    return False
        return True

    # -------------------------------------------------------- entry point
    def finish_launch(
        self, launch, sig, op_id, assignment, replay, safe_order_free, cache
    ) -> FutureMap:
        if not self._eligible(launch, assignment, safe_order_free):
            # The serial tail runs physical analysis and task bodies
            # immediately, so every pipelined-ahead launch must land first.
            self.drain_all()
            self.stats.serial_launches += 1
            return self.serial.finish_launch(
                launch, sig, op_id, assignment, replay, safe_order_free, cache
            )
        if self.pipeline_depth > 1 and self._can_pipeline(sig, replay, cache):
            touched, written = self._footprints.footprint(sig, launch)
            self.drain_conflicting(touched)
            return self._finish_pipelined(
                launch, sig, op_id, assignment, replay, safe_order_free,
                cache, touched, written,
            )
        self.drain_all()
        return self._finish_now(
            launch, sig, op_id, assignment, replay, safe_order_free, cache
        )

    def _finish_now(
        self, launch, sig, op_id, assignment, replay, safe_order_free, cache
    ) -> FutureMap:
        """The depth-1 path: submit, collect, and commit in one call."""
        prof = self.rt.profiler
        t_par = prof.mark()
        try:
            dispatch = self._dispatch(launch, sig, assignment, replay, cache)
        except _ParallelBail as bail:
            return self._fallback(
                launch, sig, op_id, assignment, replay, safe_order_free,
                cache, bail,
            )
        fmap = self._finish_dispatch(
            launch, sig, op_id, assignment, replay, safe_order_free, cache,
            dispatch, t_par,
        )
        # Every future was collected and every shm view consumed: reclaim
        # the arena offsets for the next dispatch.
        self.pool().arena.rewind_all()
        return fmap

    def _fallback(
        self, launch, sig, op_id, assignment, replay, safe_order_free, cache,
        bail,
    ) -> FutureMap:
        """Tier 3: abandon a bailed dispatch and re-run serially."""
        prof = self.rt.profiler
        self.stats.fallbacks += 1
        if self._pool is not None and not self._pool.closed:
            # Sibling futures may still be in flight; their workers
            # could write into shm slots at any time, so the current
            # segments (and their offsets) are forfeit.
            self._pool.arena.abandon_all()
        self._observe("fallback", launch=launch.name, reason=bail.reason,
                      poison=bail.poison)
        if bail.poison:
            self._poisoned_tasks.add(launch.task.uid)
        if prof.enabled:
            prof.instant(
                "parallel.fallback",
                Stage.EXECUTION,
                launch=launch.name,
                reason=bail.reason,
            )
        return self.serial.finish_launch(
            launch, sig, op_id, assignment, replay, safe_order_free, cache
        )

    def _finish_dispatch(
        self, launch, sig, op_id, assignment, replay, safe_order_free, cache,
        dispatch, t_par, fmap=None,
    ) -> FutureMap:
        """Account, ship cache deltas, and commit one collected dispatch."""
        prof = self.rt.profiler
        self.stats.parallel_launches += 1
        self.stats.shards_dispatched += len(dispatch.nodes)
        self.stats.tasks_shipped += len(dispatch.tasks)
        pool = self.pool()
        for k, gen, staged in dispatch.shipments:
            if pool.generation(k) != gen:
                # Respawned since this shard's attempt was submitted: the
                # worker state this shipment claims no longer exists.
                self.stats.stale_shipments_dropped += 1
                self._observe("commit.drop_stale", worker=k, shipment_gen=gen,
                              worker_gen=pool.generation(k))
                continue
            self._observe("commit.ship", worker=k, gen=gen)
            caches = pool.caches[k]
            caches.tasks |= staged["tasks"]
            caches.regions |= staged["regions"]
            caches.partition_colors |= staged["partition_colors"]
            caches.subsets |= staged["subsets"]
        if prof.enabled:
            cost = prof.costmodel
            attrs = dict(
                launch=launch.name,
                workers=self.workers,
                shards=len(dispatch.nodes),
                points=len(dispatch.tasks),
            )
            if cost is not None:
                # Wall-clock bookkeeping only: the pool is an artifact of
                # this implementation, not of the modeled machine, so its
                # overhead is never charged to simulated time.
                attrs["pool_overhead_s"] = (
                    cost.t_worker_dispatch + cost.t_worker_result
                ) * len(dispatch.nodes)
            prof.phase("parallel.shards", Stage.EXECUTION, t_par, **attrs)
            prof.count("parallel.dispatches", 1.0)
        return self._commit(
            launch, sig, op_id, replay, safe_order_free, cache, dispatch,
            assignment, fmap=fmap,
        )

    # --------------------------------------------------- pipelined dispatch
    def _can_pipeline(self, sig, replay, cache) -> bool:
        """Only replayed launches with a live physical template pipeline:
        their workers skip analysis (``analyzed=False``), so nothing about
        the submission reads analyzer state that earlier uncommitted
        launches will mutate at their commit."""
        return (
            replay
            and cache is not None
            and cache._physical.get(sig) is not None
        )

    def _finish_pipelined(
        self, launch, sig, op_id, assignment, replay, safe_order_free, cache,
        touched, written,
    ) -> FutureMap:
        rt = self.rt
        prof = rt.profiler
        inj = rt.fault_injector
        t_par = prof.mark()
        try:
            self._draining = True
            try:
                inflight = self._submit_launch(
                    launch, sig, assignment, replay, cache
                )
            finally:
                self._draining = False
        except _ParallelBail as bail:
            # The serial re-run commits immediately; earlier launches must
            # land first so analyzer state and task ids stay in issue order.
            self.drain_all()
            return self._fallback(
                launch, sig, op_id, assignment, replay, safe_order_free,
                cache, bail,
            )
        fmap = FutureMap(label=launch.name)
        fmap._drain = self._drain_hook
        entry = _PendingLaunch(
            launch=launch,
            sig=sig,
            op_id=op_id,
            assignment=assignment,
            replay=replay,
            safe_order_free=safe_order_free,
            cache=cache,
            inflight=inflight,
            fmap=fmap,
            fault_ordinal=inj.current_launch if inj is not None else None,
            t_par=t_par,
            touched=touched,
            written=written,
            used_shm=inflight.used_shm,
        )
        self._pending.append(entry)
        self._install_hook()
        depth = len(self._pending)
        self._observe("pipeline.submit", launch=launch.name, depth=depth)
        if prof.enabled:
            prof.count("pipeline.depth", float(depth))
            if depth > 1:
                prof.instant("pipeline.submit_ahead", Stage.EXECUTION,
                             launch=launch.name, depth=depth)
        while len(self._pending) >= self.pipeline_depth:
            self._drain_one()
        return fmap

    def drain(self) -> None:
        """Backend-API alias for :meth:`drain_all` (see ``Runtime.drain``)."""
        self.drain_all()

    def drain_all(self) -> None:
        """Collect and commit every pipelined-ahead launch, in FIFO order."""
        if self._draining:
            return
        while self._pending:
            self._drain_one()

    def drain_conflicting(self, uids) -> None:
        """Drain the FIFO prefix of pending launches whose *write* sets
        intersect ``uids`` (the footprint a new operation is about to
        touch).  Commit order is FIFO, so draining entry i requires
        draining everything before it too."""
        if self._draining or not self._pending:
            return
        touched = frozenset(uids)
        last = -1
        for i, entry in enumerate(self._pending):
            if not entry.written.isdisjoint(touched):
                last = i
        for _ in range(last + 1):
            self._drain_one()

    def _drain_one(self) -> None:
        """Collect, validate, and commit the oldest pending launch —
        restoring its fault-injection window, falling back to serial (into
        its existing FutureMap) on a bail, and converting an injected
        fault surfaced by that fallback into launch poison (tier 4)."""
        entry = self._pending.popleft()
        rt = self.rt
        inj = rt.fault_injector
        saved_ordinal = inj.current_launch if inj is not None else None
        committed = False
        self._draining = True
        try:
            if inj is not None:
                inj.current_launch = entry.fault_ordinal
            try:
                dispatch = self._collect_launch(entry.launch, entry.inflight)
            except _ParallelBail as bail:
                self._fallback_into(entry, bail)
            else:
                self._finish_dispatch(
                    entry.launch, entry.sig, entry.op_id, entry.assignment,
                    entry.replay, entry.safe_order_free, entry.cache,
                    dispatch, entry.t_par, fmap=entry.fmap,
                )
                committed = True
        except InjectedFaultError as exc:
            # The serial fallback hit an unrecovered injected fault; the
            # launch is lost exactly as it would be on the unpipelined
            # path — poison its already-issued FutureMap.
            rt._poison_launch(
                entry.launch, exc, propagated=False, fmap=entry.fmap
            )
        finally:
            if inj is not None:
                inj.current_launch = saved_ordinal
            self._draining = False
            entry.fmap._drain = None
            if committed and (entry.used_shm or not self._pending):
                # Entries submitted while this one was pending hold no
                # arena slots (shm staging is disabled for pipelined-ahead
                # submissions), so the rewind cannot clobber them.
                pool = self._pool
                if pool is not None and not pool.closed:
                    pool.arena.rewind_all()
            if not self._pending:
                self._uninstall_hook()

    def _fallback_into(self, entry: _PendingLaunch, bail) -> None:
        """Tier 3 at drain time: serial re-run adopted into the FutureMap
        the program already holds."""
        fmap = self._fallback(
            entry.launch, entry.sig, entry.op_id, entry.assignment,
            entry.replay, entry.safe_order_free, entry.cache, bail,
        )
        entry.fmap._drain = None
        if fmap._error is not None:
            entry.fmap.poison(fmap._error)
            return
        for point, err in fmap._point_errors.items():
            entry.fmap.poison(err, point)
        for point, value in fmap._values.items():
            entry.fmap.set(point, value)

    def _make_drain_hook(self):
        """The closure installed on region storage reads and pending
        FutureMaps while launches are in flight.  Forked worker children
        inherit it; the pid guard makes it remove itself there."""

        def hook():
            if os.getpid() != self._owner_pid:
                from repro.data import collection

                try:
                    collection._DRAIN_HOOKS.remove(hook)
                except ValueError:
                    pass
                return
            if not self._draining:
                self.drain_all()

        return hook

    def _install_hook(self) -> None:
        if not self._hook_installed:
            from repro.data import collection

            collection._DRAIN_HOOKS.append(self._drain_hook)
            self._hook_installed = True

    def _uninstall_hook(self) -> None:
        if self._hook_installed:
            from repro.data import collection

            try:
                collection._DRAIN_HOOKS.remove(self._drain_hook)
            except ValueError:
                pass
            self._hook_installed = False

    def shutdown(self) -> None:
        """Best-effort: land pipelined-ahead launches before teardown."""
        try:
            self.drain_all()
        finally:
            self._uninstall_hook()

    # ------------------------------------------------------------ dispatch
    def _dispatch(self, launch, sig, assignment, replay, cache) -> _Dispatch:
        """Submit and collect in one breath (the depth-1 path)."""
        return self._collect_launch(
            launch, self._submit_launch(launch, sig, assignment, replay, cache)
        )

    def _submit_launch(
        self, launch, sig, assignment, replay, cache
    ) -> _InFlight:
        rt = self.rt
        cfg = rt.config
        prof = rt.profiler
        pool = self.pool()

        # Predict (without touching counters) whether a physical template
        # will replay at commit; workers skip analysis in that case.
        ptemplate = (
            cache._physical.get(sig) if (replay and cache is not None) else None
        )
        analyzed = ptemplate is None

        nodes = sorted(assignment)
        flat_points: List[Tuple[int, Point]] = []
        for node in nodes:
            for point in assignment[node]:
                flat_points.append((node, point))

        injector = getattr(rt, "fault_injector", None)

        # Shard-plan memo (replay path only): valid while nothing the plan
        # bakes in can have moved — same assignment object (the sharding
        # cache returns a stable dict per mapping decision), same broadcast
        # args, no per-point args, workers skipping analysis (no snapshot),
        # no armed fault injector (directive-consumption order is sacred),
        # and the same profiler state.  Stale memos are overwritten.
        memo: Optional[_PlanMemo] = None
        if (
            self.plan_memo_enabled
            and not analyzed
            and injector is None
            and launch.point_args is None
        ):
            memo = self._plan_memo.get(sig)
            if memo is not None and (
                memo.args != launch.args
                or memo.assignment_key is not assignment
                or memo.profile != prof.enabled
            ):
                memo = None
            if memo is None:
                memo = _PlanMemo(
                    args=launch.args,
                    assignment_key=assignment,
                    profile=prof.enabled,
                    nodes=nodes,
                    flat_points=flat_points,
                )
                self._plan_memo[sig] = memo
                while len(self._plan_memo) > _PLAN_MEMO_CAP:
                    self._plan_memo.popitem(last=False)
            else:
                self._plan_memo.move_to_end(sig)

        # Per-point projections (pure: functor.apply + partition lookup) —
        # signature-pure, so a valid memo serves them without re-projecting.
        if memo is not None and memo.projections is not None:
            projections = memo.projections
        else:
            projections = [
                [req.project(point) for req in launch.requirements]
                for _, point in flat_points
            ]
            if memo is not None:
                memo.projections = projections
        region_by_uid = {req.region.uid: req.region for req in launch.requirements}

        # Snapshot of the analyzer state the workers must analyze against.
        snapshot_users = (
            {
                uid: rt.physical._users.get(uid, [])
                for uid in region_by_uid
            }
            if analyzed
            else {}
        )

        try:
            task_blob = self._task_blobs.get(launch.task.uid)
            if task_blob is None:
                task_blob = dumps(launch.task)
                self._task_blobs[launch.task.uid] = task_blob
        except Exception as exc:
            raise _ParallelBail(f"task not picklable: {exc}", poison=True)

        arena = pool.arena
        # Pipelined-ahead submissions skip the arena: their slots would
        # outlive the head launch's commit and block the rewind that
        # reclaims arena offsets (wire payloads need no reclamation).
        shm_on = (
            arena.available
            and not self._pending
            and (cfg.shm if cfg.shm is not None else shm_env_enabled())
        )

        jobs: List[_ShardJob] = []
        ordinal = 0
        for shard_index, node in enumerate(nodes):
            local = assignment[node]
            jobs.append(
                _ShardJob(
                    shard_index=shard_index,
                    node=node,
                    k=shard_index % self.workers,
                    local=local,
                    ordinals=list(range(ordinal, ordinal + len(local))),
                    local_projs=projections[ordinal : ordinal + len(local)],
                )
            )
            ordinal += len(local)

        def build_plan(job: _ShardJob) -> Tuple[bytes, ShardPlan]:
            """(Re)build one shard plan against the worker's *current*
            committed cache view.  Retries rebuild from scratch: a
            respawned worker's caches are empty, so the fresh plan ships
            everything it needs; a surviving worker's install is
            idempotent, so re-shipped state is harmless."""
            k, node = job.k, job.node

            # Memoized skeleton fast path: the plan's structural payload
            # (reqs, regions, partitions, points, snapshot) is a pure
            # function of the launch signature once the worker caches are
            # warm, so only the footprint data and shm slots are live.
            # Validity: same worker generation (a respawn empties the
            # caches the skeleton assumes warm) and the same shm mode.
            sm = memo.shards.get(job.shard_index) if memo is not None else None
            if (
                sm is not None
                and sm.gen == pool.generation(k)
                and sm.shm_on == shm_on
            ):
                gen = sm.gen
                read_data = []
                identical = sm.blob is not None
                for (uid, fname, idx), built in zip(sm.reads, sm.built):
                    vals = region_by_uid[uid].storage(fname)[idx]
                    entry = (
                        arena.stage_read(k, gen, uid, fname, idx, vals)
                        if shm_on
                        else None
                    )
                    if entry is None or entry != built:
                        identical = False
                    read_data.append(entry or (uid, fname, idx, vals))
                write_slots = None
                job.shm_writes = None
                if shm_on and sm.write_layout is not None:
                    write_slots = []
                    shm_writes: Dict[int, list] = {}
                    for li, layout in enumerate(sm.write_layout):
                        slots: List[Optional[tuple]] = []
                        parent_slots = []
                        for uid, fname, idx, dtype_str in layout:
                            slot = arena.alloc_write_slot(
                                k, gen, len(idx), np.dtype(dtype_str)
                            )
                            if slot is None:
                                slots.append(None)
                            else:
                                desc, view = slot
                                slots.append(desc)
                                parent_slots.append((uid, fname, idx, view))
                        write_slots.append(slots)
                        if parent_slots:
                            shm_writes[job.ordinals[li]] = parent_slots
                    if shm_writes:
                        job.shm_writes = shm_writes
                self.stats.plan_memo_hits += 1
                if identical and write_slots == sm.plan.write_slots:
                    # Steady state: the arena rewound to the same offsets,
                    # so every descriptor matches the memoized plan and the
                    # pickle blob can be resent byte-for-byte.
                    plan, blob = sm.plan, sm.blob
                    self.stats.plan_memo_blob_reuse += 1
                else:
                    plan = replace(
                        sm.plan, read_data=read_data, write_slots=write_slots
                    )
                    try:
                        blob = dumps(plan)
                    except Exception as exc:
                        raise _ParallelBail(
                            f"plan not picklable: {exc}", poison=True
                        )
                job.staged = {
                    "tasks": set(),
                    "regions": set(),
                    "partition_colors": set(),
                    "subsets": set(),
                }
                job.gen = gen
                job.mark = prof.now() if prof.enabled else 0.0
                return blob, plan

            caches = pool.caches[k]
            staged = {
                "tasks": set(),
                "regions": set(),
                "partition_colors": set(),
                "subsets": set(),
            }
            known_subsets = caches.subsets | staged["subsets"]
            local = job.local
            ordinals = job.ordinals
            local_projs = job.local_projs

            # Region skeletons new to this worker.
            regions = []
            for uid, region in region_by_uid.items():
                if uid not in caches.regions and uid not in staged["regions"]:
                    regions.append(region_spec(region))
                    staged["regions"].add(uid)

            # Requirement templates plus the partition colors they project.
            reqs = []
            part_entries: Dict[int, PartitionEntry] = {}
            for ri, req in enumerate(launch.requirements):
                reqs.append(
                    ReqTemplate(
                        priv=priv_token(req.privilege),
                        fields=req.fields,
                        resolved_fields=tuple(req.resolved_fields()),
                        partition_uid=req.partition.uid,
                        region_uid=req.region.uid,
                        functor=req.functor,
                    )
                )
                for subs in local_projs:
                    sub = subs[ri]
                    color_key = (req.partition.uid, tuple(sub.color))
                    if (
                        color_key in caches.partition_colors
                        or color_key in staged["partition_colors"]
                    ):
                        continue
                    staged["partition_colors"].add(color_key)
                    entry = part_entries.get(req.partition.uid)
                    if entry is None:
                        entry = PartitionEntry(
                            uid=req.partition.uid,
                            region_uid=req.region.uid,
                            colors=[],
                        )
                        part_entries[req.partition.uid] = entry
                    entry.colors.append(
                        (tuple(sub.color), subset_ref(sub.subset, known_subsets))
                    )
            staged["subsets"] = known_subsets - caches.subsets

            # Analyzer snapshot (only when the workers must analyze).
            snapshot: Dict[int, List[UserRef]] = {}
            if analyzed:
                for uid, users in snapshot_users.items():
                    refs = []
                    for user in users:
                        sub = user.subregion
                        refs.append(
                            UserRef(
                                key=user.footprint_key(),
                                task_ids=list(user.task_ids),
                                region_uid=uid,
                                partition_uid=(
                                    sub.partition.uid
                                    if sub.partition is not None
                                    else None
                                ),
                                color=(
                                    tuple(sub.color)
                                    if sub.color is not None
                                    else None
                                ),
                                subset=subset_ref(sub.subset, known_subsets),
                                priv=priv_token(user.privilege),
                                fields=user.fields,
                            )
                        )
                    snapshot[uid] = refs
                staged["subsets"] = known_subsets - caches.subsets

            # Footprint data: everything the shard reads, plus current
            # write-footprint bytes so partial writes gather back intact.
            # With shm on, each entry travels through the worker's arena
            # segment as a descriptor; any entry the arena declines (odd
            # dtype, allocation failure) stays a pickled tuple.
            gen = pool.generation(k)
            read_data = []
            shipped: Dict[Tuple[int, str], List[np.ndarray]] = {}
            for ri, req in enumerate(launch.requirements):
                if req.privilege.privilege is Privilege.REDUCE:
                    continue
                for subs in local_projs:
                    sub = subs[ri]
                    for fname in req.resolved_fields():
                        shipped.setdefault(
                            (req.region.uid, fname), []
                        ).append(sub._indices())
            reads_memo: List[tuple] = []
            built_descs: List[Optional[tuple]] = []
            for (uid, fname), idx_parts in shipped.items():
                idx = np.unique(np.concatenate(idx_parts))
                vals = region_by_uid[uid].storage(fname)[idx]
                entry = (
                    arena.stage_read(k, gen, uid, fname, idx, vals)
                    if shm_on
                    else None
                )
                reads_memo.append((uid, fname, idx))
                built_descs.append(entry)
                read_data.append(entry or (uid, fname, idx, vals))

            # Gather-back slots: projection is pure, so the parent derives
            # the same write indices the worker will, pre-allocates one shm
            # slot per (point, requirement, field) in the worker's gather
            # order, and keeps (uid, field, idx, view) for commit.
            write_slots = None
            write_layout: Optional[List[List[tuple]]] = None
            job.shm_writes = None
            if shm_on:
                write_slots = []
                write_layout = []
                shm_writes: Dict[int, list] = {}
                for li, subs in enumerate(local_projs):
                    slots: List[Optional[tuple]] = []
                    parent_slots = []
                    layout: List[tuple] = []
                    for ri, req in enumerate(launch.requirements):
                        if req.privilege.privilege not in (
                            Privilege.WRITE,
                            Privilege.READ_WRITE,
                        ):
                            continue
                        sub = subs[ri]
                        idx = sub._indices()
                        store_of = req.region.storage
                        for fname in req.resolved_fields():
                            dtype = store_of(fname).dtype
                            layout.append(
                                (req.region.uid, fname, idx, dtype.str)
                            )
                            slot = arena.alloc_write_slot(
                                k, gen, len(idx), dtype
                            )
                            if slot is None:
                                slots.append(None)
                            else:
                                desc, view = slot
                                slots.append(desc)
                                parent_slots.append(
                                    (req.region.uid, fname, idx, view)
                                )
                    write_slots.append(slots)
                    write_layout.append(layout)
                    if parent_slots:
                        shm_writes[ordinals[li]] = parent_slots
                if shm_writes:
                    job.shm_writes = shm_writes

            extra = None
            if launch.point_args is not None:
                extra = [launch.point_args.get(p) for p in local]

            plan = ShardPlan(
                node=node,
                points=[tuple(p) for p in local],
                ordinals=ordinals,
                task_uid=launch.task.uid,
                task_blob=(
                    None
                    if launch.task.uid in caches.tasks
                    else task_blob
                ),
                args=launch.args,
                point_extra_args=extra,
                reqs=reqs,
                regions=regions,
                partitions=list(part_entries.values()),
                snapshot=snapshot,
                analyze=analyzed,
                read_data=read_data,
                profile=prof.enabled,
                write_slots=write_slots,
            )
            staged["tasks"].add(launch.task.uid)
            if injector is not None:
                plan.faults = injector.arm_shard(k, node, local)
            try:
                blob = dumps(plan)
            except Exception as exc:
                raise _ParallelBail(f"plan not picklable: {exc}", poison=True)
            job.staged = staged
            job.gen = gen
            job.mark = prof.now() if prof.enabled else 0.0

            # Memoize the skeleton only once the worker holds everything
            # the plan assumes (no staged deltas, task blob already
            # cached) and no fault directives were baked in — then the
            # fast path's empty delta is exact, not an approximation.
            if (
                memo is not None
                and plan.task_blob is None
                and not plan.faults
                and not staged["regions"]
                and not staged["partition_colors"]
                and not staged["subsets"]
            ):
                reusable = shm_on and all(
                    d is not None for d in built_descs
                )
                memo.shards[job.shard_index] = _PlanMemoShard(
                    gen=gen,
                    shm_on=shm_on,
                    plan=(
                        plan
                        if reusable
                        else replace(plan, read_data=(), write_slots=None)
                    ),
                    blob=blob if reusable else None,
                    reads=reads_memo,
                    built=built_descs,
                    write_layout=write_layout,
                )
            return blob, plan

        def build_and_submit(job: _ShardJob, depth: int = 0) -> None:
            """Ladder resubmission: rebuild one shard and submit it alone."""
            blob, plan = build_plan(job)
            self._observe("submit", shard=job.node, worker=job.k, gen=job.gen)
            try:
                job.future = pool.submit_shard(job.k, blob, plan=plan)
            except BrokenProcessPool:
                # The worker's death surfaced at *submit* time (the
                # transport noticed its child was gone before we handed it
                # this plan).  Respawn and rebuild against the emptied
                # caches; deaths that surface at result time go through
                # the capped ladder in _collect_shard instead.
                if depth >= 3:
                    raise _ParallelBail(
                        f"worker {job.k} broken at submit {depth} times"
                    )
                pool.reset_worker(job.k)
                self.stats.worker_respawns += 1
                self._note_recovery(
                    "respawn", launch, job,
                    _InfraFailure("broken", "pool broken at submit"),
                )
                self._backoff(depth + 1)
                build_and_submit(job, depth + 1)
            except Exception as exc:
                raise _ParallelBail(f"submit failed: {exc}")

        def submit_batch(worker_jobs: List[_ShardJob], depth: int = 0) -> None:
            """Initial submission: one worker's whole shard batch, one
            vectored write where the transport supports it.  Building per
            worker in shard order preserves both the fault-injector's
            directive-consumption order and the arena's per-worker
            allocation order."""
            items = [build_plan(job) for job in worker_jobs]
            k = worker_jobs[0].k
            for job in worker_jobs:
                self._observe("submit", shard=job.node, worker=k, gen=job.gen)
            try:
                futures = pool.submit_shards(k, items)
            except BrokenProcessPool:
                if depth >= 3:
                    raise _ParallelBail(
                        f"worker {k} broken at submit {depth} times"
                    )
                pool.reset_worker(k)
                self.stats.worker_respawns += 1
                self._note_recovery(
                    "respawn", launch, worker_jobs[0],
                    _InfraFailure("broken", "pool broken at submit"),
                )
                # Same pause the collect-path ladder takes: a respawn is a
                # respawn, wherever the death happened to surface.
                self._backoff(depth + 1)
                submit_batch(worker_jobs, depth + 1)
                return
            except Exception as exc:
                raise _ParallelBail(f"submit failed: {exc}")
            for job, future in zip(worker_jobs, futures):
                job.future = future

        by_worker: Dict[int, List[_ShardJob]] = {}
        for job in jobs:
            by_worker.setdefault(job.k, []).append(job)
        for k in sorted(by_worker):
            submit_batch(by_worker[k])
        return _InFlight(
            nodes=nodes,
            flat_points=flat_points,
            jobs=jobs,
            analyzed=analyzed,
            resubmit=build_and_submit,
            used_shm=shm_on,
        )

    def _collect_launch(self, launch, inflight: _InFlight) -> _Dispatch:
        """Await every shard of one submitted launch and validate the
        results into a :class:`_Dispatch`, recovering per shard
        (retry -> respawn), bailing to serial only when a shard exhausts
        its retry policy."""
        rt = self.rt
        pool = self.pool()
        jobs = inflight.jobs
        analyzed = inflight.analyzed
        flat_points = inflight.flat_points
        policy = getattr(rt, "retry_policy", None) or RetryPolicy()
        shipments: List[Tuple[int, int, dict]] = []
        for job in jobs:
            job.payload = self._collect_shard(
                launch, pool, policy, job, inflight.resubmit
            )
            # Stamp the shipment with the generation that *produced* it
            # (job.gen, set at submit), never the generation at collect
            # time: a sibling shard's recovery may reset this worker after
            # the result was banked but before it was collected, and a
            # collect-time stamp would launder that stale state past the
            # commit-side generation check.  (Found by the commit-protocol
            # model checker; see docs/formal-verification.md.)
            shipments.append((job.k, job.gen, job.staged))

        # Validate everything before committing.
        total = len(flat_points)
        tasks: List[Optional[Any]] = [None] * total
        task_worker: List[Tuple[int, float]] = [(0, 0.0)] * total
        for job in jobs:
            result = job.payload
            offset = job.mark - result.t0
            for trec in result.tasks:
                if not 0 <= trec.ordinal < total or tasks[trec.ordinal] is not None:
                    raise _ParallelBail("shard result ordinals inconsistent")
                if analyzed and trec.ops is None:
                    raise _ParallelBail("missing analyzer ops in shard result")
                tasks[trec.ordinal] = trec
                task_worker[trec.ordinal] = (job.k, offset)
        if any(t is None for t in tasks):
            raise _ParallelBail("missing tasks in shard results")
        try:
            values = [loads(t.value_blob) for t in tasks]
        except Exception as exc:
            raise _ParallelBail(f"future value not unpicklable: {exc}",
                                poison=True)
        shm_writes: Optional[Dict[int, list]] = None
        for job in jobs:
            if job.shm_writes:
                if shm_writes is None:
                    shm_writes = {}
                shm_writes.update(job.shm_writes)
        return _Dispatch(
            nodes=inflight.nodes,
            points=flat_points,
            tasks=tasks,
            values=values,
            task_worker=task_worker,
            analyzed=analyzed,
            shipments=shipments,
            shm_writes=shm_writes,
        )

    # ----------------------------------------------------- shard collection
    def _collect_shard(self, launch, pool, policy, job, resubmit):
        """Await one shard's result, climbing the recovery ladder on
        infrastructure failures.

        Tier 1 (same-worker retry) handles failures that leave the process
        usable: a corrupt result blob, a future cancelled because another
        shard's recovery reset this worker.  Tier 2 (respawn) handles a
        dead or wedged process.  Exhausting both raises ``_ParallelBail``
        (tier 3, serial fallback); a worker-side *application* error skips
        the ladder entirely — it is deterministic, so the serial re-run
        reproduces it exactly.
        """
        retries = respawns = 0
        while True:
            failure: Optional[_InfraFailure] = None
            payload = None
            try:
                raw = job.future.result(timeout=policy.shard_timeout_s)
            except BrokenProcessPool as exc:
                failure = _InfraFailure("broken", str(exc) or "worker died")
            except FuturesTimeout:
                failure = _InfraFailure(
                    "timeout",
                    f"no result within {policy.shard_timeout_s}s",
                )
            except CancelledError:
                failure = _InfraFailure(
                    "cancelled", "future cancelled by a worker reset"
                )
            except Exception as exc:
                failure = _InfraFailure("transport", str(exc))
            if failure is None:
                try:
                    payload = loads(raw)
                except Exception as exc:
                    failure = _InfraFailure("corrupt", str(exc))
            if failure is None:
                if payload[0] == "error":
                    raise _ParallelBail(
                        f"worker error: {payload[1]}", poison=True
                    )
                self._observe("collect.ok", shard=job.node, worker=job.k,
                              gen=job.gen)
                return payload[1]

            # Worker process gone/wedged (and not already replaced by an
            # earlier shard's recovery) -> the attempt needs a respawn.
            worker_stale = pool.generation(job.k) != job.gen
            need_respawn = (
                failure.kind in ("broken", "timeout") and not worker_stale
            )
            if need_respawn:
                if respawns >= policy.respawns:
                    self._bail_unrecoverable(pool, job, failure,
                                             retries, respawns)
                respawns += 1
                if failure.kind == "timeout":
                    self.stats.shard_timeouts += 1
                self.stats.worker_respawns += 1
                pool.reset_worker(job.k)
                self._note_recovery("respawn", launch, job, failure)
            elif retries < policy.same_worker_retries or worker_stale:
                # A stale-generation failure is not the worker's fault; the
                # resubmission goes to the already-fresh process.
                retries += 1
                self.stats.shard_retries += 1
                self._note_recovery("retry", launch, job, failure)
            elif respawns < policy.respawns:
                # Same-worker retries exhausted: escalate, the process may
                # be corrupted in a way that does not kill it.
                respawns += 1
                self.stats.worker_respawns += 1
                pool.reset_worker(job.k)
                self._note_recovery("respawn", launch, job, failure)
            else:
                self._bail_unrecoverable(pool, job, failure, retries, respawns)
            self._backoff(retries + respawns)
            resubmit(job)

    def _backoff(self, attempt: int) -> None:
        """Capped exponential, wall-clock-only pause before a retry."""
        policy = getattr(self.rt, "retry_policy", None) or RetryPolicy()
        delay = policy.backoff_s(attempt)
        if delay > 0:
            time.sleep(delay)
            self.stats.backoff_total_s += delay

    def _bail_unrecoverable(self, pool, job, failure, retries, respawns):
        """Tier 3: abandon the dispatch for the serial fallback.

        Every worker is reset — in-flight futures of sibling shards die
        with their executors, and nothing about any worker's state can be
        trusted after a dispatch this broken."""
        self._observe("ladder.bail", shard=job.node, worker=job.k,
                      failure=failure.kind, retries=retries,
                      respawns=respawns)
        for j in range(pool.n):
            pool.reset_worker(j)
        raise _ParallelBail(
            f"shard {job.node} unrecoverable after {retries} retries and "
            f"{respawns} respawns: {failure}"
        )

    def _note_recovery(self, kind, launch, job, failure) -> None:
        """One recovery-ladder transition: instant + counter, wall-clock
        cost annotations only (never charged to simulated time)."""
        self._observe(f"recovery.{kind}", shard=job.node, worker=job.k,
                      failure=failure.kind, stamped_gen=job.gen)
        prof = self.rt.profiler
        if not prof.enabled:
            return
        cost = prof.costmodel
        attrs = dict(
            launch=launch.name,
            shard=job.node,
            worker=job.k,
            failure=failure.kind,
        )
        if cost is not None:
            attrs["wall_cost_s"] = (
                cost.t_worker_respawn if kind == "respawn"
                else cost.t_retry_backoff
            )
        prof.instant(f"recovery.{kind}", Stage.EXECUTION, **attrs)
        prof.count("recovery.events", 1.0, kind=kind, failure=failure.kind)

    # -------------------------------------------------------------- commit
    def _commit(
        self, launch, sig, op_id, replay, safe_order_free, cache, dispatch,
        assignment, fmap=None,
    ) -> FutureMap:
        rt = self.rt
        cfg = rt.config
        prof = rt.profiler
        cost = prof.costmodel if prof.enabled else None
        total = len(dispatch.points)

        # --- expansion: identical counter discipline to the serial tail;
        # plan materialization is deferred because a successful template
        # replay never touches the per-point plans.
        t_expand = prof.mark()
        expansion = cache.get_expansion(sig) if cache is not None else None
        expansion_cached = expansion is not None
        if expansion_cached:
            rt.stats.analysis_cache_hits += 1
        plan_holder: List[Optional[List[Tuple[int, PointPlan]]]] = [None]

        def plan_list() -> List[Tuple[int, PointPlan]]:
            if plan_holder[0] is not None:
                return plan_holder[0]
            template = expansion
            plans: List[Tuple[int, PointPlan]] = []
            if template is not None:
                cached_plans = template.ordered_plans(launch, assignment)
                if cached_plans is not None:
                    plans = cached_plans
                else:
                    for node, point in dispatch.points:
                        plans.append(
                            (node, template.point_plan(launch, point))
                        )
                    template.store_plans(launch, assignment, plans)
            else:
                template = ExpansionTemplate(
                    base_args=launch.args,
                    had_point_args=launch.point_args is not None,
                )
                for node, point in dispatch.points:
                    point_task = launch.point_task(point)
                    triples = [
                        (req.subregion, req.privilege, req.resolved_fields())
                        for req in point_task.requirements
                    ]
                    plan = PointPlan(
                        task_launch=point_task,
                        requirements=list(point_task.requirements),
                        accesses=triples,
                        regions=[PhysicalRegion(*t) for t in triples],
                    )
                    template.plans[tuple(point)] = plan
                    plans.append((node, plan))
                template.store_plans(launch, assignment, plans)
                if cache is not None:
                    cache.put_expansion(sig, template)
            plan_holder[0] = plans
            return plans

        if not expansion_cached:
            plan_list()  # first issue: build and store, like the serial path
        if prof.enabled:
            prof.phase("expansion", "expansion", t_expand,
                       launch=launch.name, cached=expansion_cached,
                       points=total)
            if expansion_cached:
                prof.instant("cache.expansion_hit", "expansion",
                             launch=launch.name)

        # --- physical analysis: template replay, worker-op merge, or live.
        t_phys = prof.mark()
        template_replayed = False
        task_ids = [next(rt._task_counter) for _ in range(total)]
        tdeps_lists = None
        if replay and cache is not None:
            ptemplate = cache.get_physical(sig)
            if ptemplate is not None:
                tdeps_lists = rt.physical.replay_tasks(task_ids, ptemplate)
                if tdeps_lists is None:
                    cache.drop_physical_for(sig)
                    rt.stats.analysis_cache_invalidations += 1
                    if prof.enabled:
                        prof.instant("cache.physical_bail", Stage.PHYSICAL,
                                     launch=launch.name)
                else:
                    rt.stats.analysis_cache_hits += 1
                    template_replayed = True
                    if prof.enabled:
                        prof.instant("cache.physical_replay", Stage.PHYSICAL,
                                     launch=launch.name)
        if tdeps_lists is None:
            capture = entry_keys = None
            if replay and cache is not None:
                region_uids = {req.region.uid for req in launch.requirements}
                entry_keys = rt.physical.snapshot_keys(region_uids)
                capture = []
            if dispatch.analyzed:
                tdeps_lists = self._merge_analysis(
                    launch, dispatch, task_ids, plan_list(), capture
                )
            if tdeps_lists is None:
                # No worker ops (a predicted template bailed at commit) or
                # the merge hit an ambiguity: run the live analyzer — the
                # serial reference path — against the untouched state.
                if dispatch.analyzed:
                    self.stats.merge_fallbacks += 1
                if capture is not None:
                    capture = []
                tdeps_lists = [
                    rt.physical.record_task(tid, plan.accesses,
                                            _capture=capture)
                    for tid, (_, plan) in zip(task_ids, plan_list())
                ]
            if capture is not None:
                ptemplate = make_template(capture, entry_keys)
                if ptemplate is not None:
                    cache.put_physical(sig, ptemplate)

        if fmap is None:
            fmap = FutureMap(label=launch.name)
        per_node: Dict[int, int] = {}
        for node, _ in dispatch.points:
            per_node[node] = per_node.get(node, 0) + 1
        rt.stats.physical_dependences += sum(len(t) for t in tdeps_lists)
        for node in sorted(per_node):
            rt.stats.add_representation(Stage.PHYSICAL, node, per_node[node])
        if rt.graph_recorder is not None:
            for tid, ((node, point), tdeps) in zip(
                task_ids, zip(dispatch.points, tdeps_lists)
            ):
                name = f"{launch.task.name}{tuple(point)}"
                rt.graph_recorder.record_task(tid, name, op_id, node)
                rt.graph_recorder.record_physical_edges(tdeps)
        rt.stats.overlap_queries = rt.physical.overlap_queries
        if prof.enabled:
            for node in sorted(per_node):
                local = per_node[node]
                attrs = dict(op=op_id, launch=launch.name, tasks=local,
                             replayed=template_replayed)
                if cost is not None:
                    attrs["sim_cost_s"] = (
                        cost.t_replay_cache_hit
                        + cost.t_trace_replay_task * local
                        if template_replayed
                        else cost.physical_task_time(launch.domain.volume)
                        * local
                    )
                prof.phase("physical", Stage.PHYSICAL, t_phys,
                           node=node, **attrs)

        # --- execution commit: apply effects in serial (or shuffled) order.
        order = list(range(total))
        if cfg.shuffle_intra_launch and safe_order_free:
            rt._rng.shuffle(order)
        region_by_uid = {
            req.region.uid: req.region for req in launch.requirements
        }
        if cfg.batched_commit:
            self._commit_effects_batched(dispatch, order, region_by_uid)
        else:
            for g in order:
                trec = dispatch.tasks[g]
                for uid, fname, idx, vals in self._task_writes(dispatch, g):
                    region_by_uid[uid].storage(fname)[idx] = vals
                for uid, fname, idx, vals, opname in trec.reduces:
                    self._apply_reduce(
                        region_by_uid[uid], fname, idx, vals, opname
                    )
        for g in order:
            trec = dispatch.tasks[g]
            fmap.set(Point(*trec.point), dispatch.values[g])
        rt.stats.tasks_executed += total
        for node in sorted(per_node):
            rt.stats.add_representation(Stage.EXECUTION, node, per_node[node])
        if prof.enabled:
            span_name = f"execute:{launch.task.name}"
            for g in order:
                trec = dispatch.tasks[g]
                if trec.span is None:
                    continue
                node, _point = dispatch.points[g]
                k, offset = dispatch.task_worker[g]
                start, end = trec.span
                prof.ingest_span(
                    span_name,
                    Stage.EXECUTION,
                    node,
                    start + offset,
                    end + offset,
                    task=f"{launch.task.name}{tuple(trec.point)}",
                    point=str(tuple(trec.point)),
                    worker=k,
                )
        return fmap

    @staticmethod
    def _apply_reduce(region, fname, idx, values, opname) -> None:
        """Replay one recorded reduce call — exact mirror of
        ``Subregion.reduce`` so duplicate-index accumulation order (and
        therefore floating point) matches the serial backend bit for bit."""
        store = region.storage(fname)
        values = np.asarray(values).ravel()
        if opname == "+":
            np.add.at(store, idx, values)
        elif opname == "*":
            np.multiply.at(store, idx, values)
        elif opname == "min":
            np.minimum.at(store, idx, values)
        elif opname == "max":
            np.maximum.at(store, idx, values)
        else:  # pragma: no cover - custom operators never reach workers
            store[idx] = REDUCTION_OPS[opname].apply(store[idx], values)

    def _commit_effects_batched(self, dispatch, order, region_by_uid) -> None:
        """Launch-granularity application of shard write-backs and reduces.

        Byte-identity with the per-task loop rests on two facts.  Writes:
        only verified launches are dispatched, and the cross-check proves
        all write footprints of a launch pairwise disjoint, so scattering
        one concatenated (idx, values) pair per (region, field) is
        order-free and lands the same bytes.  Reduces: ``np.ufunc.at``
        applies duplicate indices sequentially in index-array order, so
        concatenating recorded calls per (region, field, operator) in
        commit order accumulates bit-identically; a group is flushed early
        whenever the *operator* on its (region, field) changes, preserving
        the interleaving the per-task loop would produce.  Eligibility
        already guarantees writes and reduces never share a (region,
        field), so the two phases commute.
        """
        writes: Dict[Tuple[int, str], List[tuple]] = {}
        reduces: Dict[Tuple[int, str], Tuple[str, list, list]] = {}
        stats = self.stats
        for g in order:
            trec = dispatch.tasks[g]
            for uid, fname, idx, vals in self._task_writes(dispatch, g):
                writes.setdefault((uid, fname), []).append((idx, vals))
            for uid, fname, idx, vals, opname in trec.reduces:
                key = (uid, fname)
                pending = reduces.get(key)
                if pending is not None and pending[0] != opname:
                    self._flush_reduce_group(region_by_uid, key, pending)
                    stats.batched_commit_ops += 1
                    pending = None
                if pending is None:
                    reduces[key] = (opname, [idx], [np.asarray(vals).ravel()])
                else:
                    pending[1].append(idx)
                    pending[2].append(np.asarray(vals).ravel())
        for (uid, fname), parts in writes.items():
            store = region_by_uid[uid].storage(fname)
            if len(parts) == 1:
                idx, vals = parts[0]
                store[idx] = vals
            else:
                store[np.concatenate([p[0] for p in parts])] = np.concatenate(
                    [np.asarray(p[1]) for p in parts]
                )
            stats.batched_commit_ops += 1
        for key, pending in reduces.items():
            self._flush_reduce_group(region_by_uid, key, pending)
            stats.batched_commit_ops += 1
        stats.batched_commit_tasks += len(order)

    @staticmethod
    def _task_writes(dispatch, g) -> list:
        """One task's write-back footprints, whichever transport each used."""
        trec = dispatch.tasks[g]
        shm = dispatch.shm_writes
        if shm is None:
            return trec.writes
        extra = shm.get(g)
        if extra is None:
            return trec.writes
        return extra + trec.writes if trec.writes else extra

    def _flush_reduce_group(self, region_by_uid, key, pending) -> None:
        opname, idx_parts, val_parts = pending
        uid, fname = key
        idx = idx_parts[0] if len(idx_parts) == 1 else np.concatenate(idx_parts)
        vals = val_parts[0] if len(val_parts) == 1 else np.concatenate(val_parts)
        self._apply_reduce(region_by_uid[uid], fname, idx, vals, opname)

    # --------------------------------------------------------------- merge
    def _merge_analysis(
        self, launch, dispatch, task_ids, plans, capture
    ) -> Optional[List[List[TaskDependence]]]:
        """Replay worker analyzer ops onto the parent state, transactionally.

        Works on cloned buckets and installs them only when every op
        resolves unambiguously; any mismatch returns None with the real
        analyzer untouched, and the caller re-runs the live path.
        """
        rt = self.rt
        phys = rt.physical
        # Clones carry their footprint keys alongside, maintained
        # incrementally across ops: footprint keys are pure in the user's
        # (subregion, privilege, fields), none of which the merge mutates,
        # so one computation per user replaces one per (op, user) pair.
        clones: Dict[int, Tuple[List[_User], List[tuple]]] = {}

        def bucket_for(uid: int) -> Tuple[List[_User], List[tuple]]:
            entry = clones.get(uid)
            if entry is None:
                bucket = [
                    _User(list(u.task_ids), u.subregion, u.privilege, u.fields)
                    for u in phys._users.get(uid, [])
                ]
                entry = (bucket, [u.footprint_key() for u in bucket])
                clones[uid] = entry
            return entry

        added_queries = 0
        tdeps_lists: List[List[TaskDependence]] = []
        synthesized: List[List[AccessOp]] = []
        for g, trec in enumerate(dispatch.tasks):
            tid = task_ids[g]
            deps = []
            for earlier, region_uid in trec.deps:
                if earlier < 0:
                    return None  # placeholder leaked: intra-launch edge
                deps.append(TaskDependence(earlier, tid, region_uid))
            ops_out: List[AccessOp] = []
            accesses = plans[g][1].accesses
            if len(trec.ops) != len(accesses):
                return None
            for ai, record in enumerate(trec.ops):
                dep_keys, retire_keys, coalesce_key, created_key, region_uid = (
                    record
                )
                bucket, keys = bucket_for(region_uid)
                added_queries += len(bucket)
                op = AccessOp(
                    region_uid=region_uid,
                    n_scanned=len(bucket),
                    dep_keys=list(dep_keys),
                    retire_keys=list(retire_keys),
                    coalesce_key=coalesce_key,
                    ambiguous=len(set(keys)) != len(keys),
                )
                for key in retire_keys:
                    matches = [i for i, k in enumerate(keys) if k == key]
                    if len(matches) != 1:
                        return None
                    del bucket[matches[0]]
                    del keys[matches[0]]
                if coalesce_key is not None:
                    matches = [
                        i for i, k in enumerate(keys) if k == coalesce_key
                    ]
                    if len(matches) != 1:
                        return None
                    bucket[matches[0]].task_ids.append(tid)
                if created_key is not None:
                    sub, priv, fields = accesses[ai]
                    fieldset = frozenset(fields)
                    if _footprint_key(sub, priv, fieldset) != created_key:
                        return None  # cross-process key drift: do not trust
                    # The serial scan may coalesce this access into a user
                    # another shard created (the worker could not see it);
                    # find the first user serial would have matched.  A
                    # field-disjoint user is skipped before the coalesce
                    # test there, so an empty field set never coalesces.
                    target = None
                    if fieldset:
                        for user in bucket:
                            if (
                                user.privilege.compatible_with(priv)
                                and user.fields == fieldset
                                and _same_subset(
                                    user.subregion.subset, sub.subset
                                )
                            ):
                                target = user
                                break
                    if target is None:
                        bucket.append(_User([tid], sub, priv, fieldset))
                        keys.append(created_key)
                        op.create = (sub, priv, fieldset)
                    elif target.footprint_key() == created_key:
                        target.task_ids.append(tid)
                        op.coalesce_key = created_key
                    else:
                        # Serial would coalesce across distinct keys (an
                        # aliased-partition footprint); only the live path
                        # reproduces that exactly.
                        return None
                ops_out.append(op)
            tdeps_lists.append(deps)
            synthesized.append(ops_out)

        # Commit: install the merged buckets and the query accounting.
        for uid, (bucket, _keys) in clones.items():
            phys.install_bucket(uid, bucket)
        phys.overlap_queries += added_queries
        if capture is not None:
            capture.extend(synthesized)
        return tdeps_lists
