"""Picklable shard plans and results for the parallel execution backend.

A :class:`ShardPlan` is the self-contained description of one node's share
of an index launch — the moral equivalent of the per-node launch descriptor
that DCR ships to each control replica (Section 5 of the paper): the task,
the local domain slice, requirement templates, and just enough region /
partition / analyzer metadata to run expansion, physical analysis, and the
task bodies in another process.

Everything here is built from plain values (tuples, ints, strings, numpy
arrays) plus a handful of repro objects that pickle by value (functors,
``Point``/``Rect``).  Task functions are serialized with ``cloudpickle``
when available (decorated module attributes are :class:`Task` objects, so
stdlib reference pickling cannot find them); plans and results travel as
opaque byte blobs so the worker pool never depends on the parent's pickling
defaults.

Identity discipline: regions, partitions, and sparse subsets are addressed
by their construction ``uid`` on both sides of the process boundary.  The
worker reconstructs skeleton objects and *overwrites* their locally
assigned uids with the shipped ones, so footprint keys computed in a worker
are byte-equal to the parent's (see ``_footprint_key`` in
:mod:`repro.runtime.physical`).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised indirectly by the parallel backend
    import cloudpickle as _by_value_pickler
except ImportError:  # pragma: no cover - the container bakes cloudpickle in
    _by_value_pickler = pickle

__all__ = [
    "dumps",
    "loads",
    "subset_ref",
    "region_spec",
    "priv_token",
    "priv_from_token",
    "ReqTemplate",
    "PartitionEntry",
    "UserRef",
    "ShardPlan",
    "TaskResult",
    "ShardResult",
]


def dumps(obj: Any) -> bytes:
    """Serialize by value (closures and Task objects included).

    Plans and results are almost always plain data (dataclasses, tuples,
    numpy arrays), which the stdlib C pickler handles in under half the
    time of cloudpickle's Python-level pickler — and this runs once per
    shard per launch on the dispatch hot path.  The fast path is safe
    because stdlib pickle *verifies* by-reference identity at save time:
    any object it cannot faithfully reference (a closure, or a ``Task``
    shadowing the function it decorates) raises ``PicklingError`` rather
    than mis-serializing, and only then do we pay for cloudpickle.
    """
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return _by_value_pickler.dumps(obj)


def loads(blob: bytes) -> Any:
    """Cloudpickle output is plain pickle data; stdlib loads it."""
    return pickle.loads(blob)


# --------------------------------------------------------------- references
def subset_ref(subset, shipped_uids: Optional[set] = None) -> tuple:
    """A portable reference to an :class:`IndexSubset`.

    Rect subsets ship by bounds value (cheap, and footprint keys address
    them by rectangle anyway).  Sparse subsets ship their index array once
    per worker: when ``shipped_uids`` already contains the uid, only the
    uid travels and the worker resolves it from its cache.
    """
    from repro.data.collection import RectSubset

    if isinstance(subset, RectSubset):
        return ("rect", tuple(subset.rect.lo), tuple(subset.rect.hi), subset.uid)
    if shipped_uids is not None and subset.uid in shipped_uids:
        return ("sparse_ref", subset.uid)
    if shipped_uids is not None:
        shipped_uids.add(subset.uid)
    return ("sparse", subset.uid, subset.indices)


def region_spec(region) -> tuple:
    """Skeleton of a region: uid, name, bounds, and field dtypes.

    Storage is *not* shipped — the plan carries only the footprint data the
    shard actually reads or writes.
    """
    return (
        region.uid,
        region.name,
        tuple(region.bounds.lo),
        tuple(region.bounds.hi),
        tuple((fname, np.dtype(dt).str) for fname, dt in region.fields.items()),
    )


def priv_token(privilege) -> tuple:
    """Portable privilege encoding; see ``_priv_token`` in physical.py."""
    redop = privilege.redop.name if privilege.redop is not None else None
    return (privilege.privilege.value, redop)


def priv_from_token(token: tuple):
    """Rebuild a :class:`PrivilegeSpec` sharing the parent's operator table."""
    from repro.data.privileges import (
        REDUCTION_OPS,
        Privilege,
        PrivilegeSpec,
    )

    value, redop = token
    if redop is not None:
        return PrivilegeSpec(Privilege(value), REDUCTION_OPS[redop])
    return PrivilegeSpec(Privilege(value))


@dataclass
class ReqTemplate:
    """One region requirement of the launch, in shippable form."""

    priv: tuple                     # priv_token
    fields: Tuple[str, ...]         # declared fields ('' means region default)
    resolved_fields: Tuple[str, ...]
    partition_uid: int
    region_uid: int
    functor: Any                    # ProjectionFunctor; pickles by value


@dataclass
class PartitionEntry:
    """The colors of one partition a shard actually projects onto."""

    uid: int
    region_uid: int
    colors: List[Tuple[tuple, tuple]]  # (color tuple, subset_ref)


@dataclass
class UserRef:
    """One active footprint of the pre-launch analyzer snapshot."""

    key: tuple                      # _footprint_key value (already portable)
    task_ids: List[int]
    region_uid: int
    partition_uid: Optional[int]
    color: Optional[tuple]
    subset: tuple                   # subset_ref
    priv: tuple                     # priv_token
    fields: frozenset


@dataclass
class ShardPlan:
    """Everything one worker needs to run its shard of a launch."""

    node: int
    points: List[tuple]             # local domain slice, in serial order
    ordinals: List[int]             # global plan-list positions of the points
    task_uid: int
    task_blob: Optional[bytes]      # cloudpickled Task; None when cached
    args: tuple
    point_extra_args: Optional[List[tuple]]  # per-point ArgumentMap values
    reqs: List[ReqTemplate]
    regions: List[tuple]            # region_spec for regions new to the worker
    partitions: List[PartitionEntry]
    snapshot: Dict[int, List[UserRef]]  # region uid -> pre-launch users
    analyze: bool                   # run physical analysis (no template replay)
    #: read footprints: legacy pickle tuples (region_uid, field, idx array,
    #: values) or shm descriptors ("shm", uid, field, segment, idx_off,
    #: count, idx_dtype, val_off, val_dtype) — see repro.exec.shm.
    read_data: List[tuple]
    profile: bool
    #: armed fault directives (kind, phase, point|None, hang_s) — injected
    #: failures the worker fires with real effects; see repro.fault.
    faults: List[tuple] = field(default_factory=list)
    #: shm gather-back slots, parallel to ``points``: per point, one
    #: (segment, val_off, count, val_dtype) | None per (WRITE/READ_WRITE
    #: requirement, field) in gather order.  None (or a None slot) means
    #: the worker pickles that footprint into ``TaskResult.writes``.
    write_slots: Optional[List[List[Optional[tuple]]]] = None


@dataclass
class TaskResult:
    """What one point task produced, addressed by placeholder ids.

    Workers never see the parent's task-id counter; in-shard task ids are
    ``-(ordinal + 1)`` and the parent re-stamps them at commit, so a bailed
    dispatch consumes no ids.
    """

    ordinal: int
    point: tuple
    value_blob: bytes               # future value (pickled separately)
    deps: List[Tuple[int, int]]     # (earlier real task id, region uid)
    ops: Optional[List[tuple]]      # per-access op records when analyze
    writes: List[tuple]             # (region_uid, field, idx, final values)
    reduces: List[tuple]            # (region_uid, field, idx, values, op name)
    span: Optional[tuple]           # (start, end) on the worker clock


@dataclass
class ShardResult:
    """One worker's answer for one shard."""

    node: int
    t0: float                       # worker perf_counter at shard start
    tasks: List[TaskResult] = field(default_factory=list)


# Per-access op record layout inside TaskResult.ops:
#   (dep_keys tuple, retire_keys tuple, coalesce_key | None,
#    created_key | None, region_uid)
# Keys are _footprint_key values — portable by construction.
def op_record(access_op, created_key: Optional[tuple]) -> tuple:
    return (
        tuple(access_op.dep_keys),
        tuple(access_op.retire_keys),
        access_op.coalesce_key,
        created_key,
        access_op.region_uid,
    )
