"""Pluggable worker transports beneath :class:`~repro.exec.pool.WorkerPool`.

A transport owns how worker processes are started, how shard plans and
cache deltas reach them, and how result bytes come back.  The pool keeps
everything else — affinity, cache bookkeeping, generations, the shm
arena, failure metrics — so the PR 5 recovery ladder in
``parallel._collect_shard`` works unchanged on any transport.  The
contract that makes that possible is the *exception mapping*: every
transport surfaces infrastructure failures through the same classes the
fork path produces —

* a dead worker (or lost connection) raises ``BrokenProcessPool``, at
  submit time or from a collected future;
* a worker discarded mid-flight cancels its pending futures
  (``CancelledError`` at collect — the free same-worker retry);
* a slow result is the caller's ``future.result(timeout)`` raising
  ``concurrent.futures.TimeoutError``.

Two implementations:

* :class:`LocalTransport` — the original fork/``ProcessPoolExecutor``
  path, one single-process executor per slot (``local_shm=True``: parent
  and workers share the machine-local shm segment namespace).
* :class:`SocketTransport` — standalone ``python -m
  repro.exec.socket_worker`` processes connected over length-prefixed
  framed loopback sockets (:mod:`repro.exec.wire`), standing in for
  cluster nodes.  ``local_shm=False``: shm descriptors degrade to wire
  payloads because a remote node cannot map the parent's segments.
"""

from __future__ import annotations

import os
import secrets
import socket
import subprocess
import sys
import threading
from abc import ABC, abstractmethod
from concurrent.futures import Future, InvalidStateError, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import Dict, List, Optional

from repro.exec import wire
from repro.exec.plan import dumps

__all__ = [
    "Transport",
    "LocalTransport",
    "SocketTransport",
    "TRANSPORTS",
    "make_transport",
    "resolve_transport",
]

#: Seconds a freshly spawned socket worker gets to connect and say HELLO
#: (a cold python -m import of numpy + repro dominates this).
SPAWN_TIMEOUT_S = 60.0


def resolve_transport(configured: Optional[str]) -> str:
    """Effective transport name: explicit config wins, else
    ``REPRO_TRANSPORT``, else ``local``."""
    name = configured
    if name is None:
        name = os.environ.get("REPRO_TRANSPORT", "").strip() or "local"
    name = str(name).lower()
    if name not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {name!r}; choose from {sorted(TRANSPORTS)}"
        )
    return name


def make_transport(name: str, n: int) -> "Transport":
    return TRANSPORTS[name](n)


class Transport(ABC):
    """How ``n`` worker slots are reached; see the module docstring for
    the exception-mapping contract every implementation must keep."""

    #: Whether workers share the parent's shared-memory segment namespace.
    #: False degrades every shm descriptor to a pickled wire payload.
    local_shm = True
    name = "abstract"

    def __init__(self, n: int):
        self.n = n

    def executor(self, k: int) -> ProcessPoolExecutor:
        raise RuntimeError(
            f"{type(self).__name__} has no in-process executor"
        )

    @abstractmethod
    def submit_shard(self, k: int, plan_blob: bytes, plan=None) -> Future:
        """Ship one shard to worker ``k``; future resolves to result bytes."""

    @abstractmethod
    def submit_batch(self, k: int, functor_blob: bytes, points) -> Future:
        """Chunked dynamic-check evaluation; future resolves to result bytes."""

    @abstractmethod
    def discard_worker(self, k: int) -> None:
        """Abandon worker ``k``: cancel its pending futures, drop the
        process.  The pool has already cleared caches and bumped the
        generation; a later submit spawns a fresh worker."""

    @abstractmethod
    def shutdown(self) -> List[BaseException]:
        """Tear everything down; returns the exceptions swallowed doing it
        (counted by the pool as ``shutdown_errors`` — never silent)."""


# --------------------------------------------------------------------- local
def _mp_context():
    """Fork keeps warm numpy/module state and makes spin-up cheap; fall
    back to the platform default where fork is unavailable."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class LocalTransport(Transport):
    """One persistent single-process fork executor per slot."""

    local_shm = True
    name = "local"

    def __init__(self, n: int):
        super().__init__(n)
        self._slots: List[Optional[ProcessPoolExecutor]] = [None] * n
        #: executors abandoned by discard_worker, drained at shutdown so
        #: their manager threads are joined before interpreter teardown
        #: (CPython's process-pool atexit hook prints "Exception ignored"
        #: noise when it pokes a broken, never-joined executor).
        self._retired: List[ProcessPoolExecutor] = []

    def executor(self, k: int) -> ProcessPoolExecutor:
        if self._slots[k] is None:
            self._slots[k] = ProcessPoolExecutor(
                max_workers=1, mp_context=_mp_context()
            )
        return self._slots[k]

    def submit_shard(self, k: int, plan_blob: bytes, plan=None) -> Future:
        from repro.exec.worker import run_shard_bytes

        return self.executor(k).submit(run_shard_bytes, plan_blob)

    def submit_batch(self, k: int, functor_blob: bytes, points) -> Future:
        from repro.exec.worker import apply_batch_bytes

        return self.executor(k).submit(apply_batch_bytes, functor_blob, points)

    def discard_worker(self, k: int) -> None:
        executor = self._slots[k]
        self._slots[k] = None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
            self._retired.append(executor)

    def shutdown(self) -> List[BaseException]:
        errors: List[BaseException] = []
        for k in range(self.n):
            executor = self._slots[k]
            self._slots[k] = None
            if executor is not None:
                try:
                    executor.shutdown(wait=False, cancel_futures=True)
                except Exception as exc:
                    errors.append(exc)
        for executor in self._retired:
            try:
                executor.shutdown(wait=True, cancel_futures=True)
            except Exception as exc:
                errors.append(exc)
        self._retired.clear()
        return errors


# -------------------------------------------------------------------- socket
class _SocketWorker:
    """Parent-side handle for one connected socket worker process."""

    def __init__(self, k: int, proc: subprocess.Popen, conn: socket.socket):
        self.k = k
        self.proc = proc
        self.conn = conn
        self.pending: Dict[int, Future] = {}
        self.lock = threading.Lock()       # guards pending + seq + sends
        self.seq = 0
        self.broken = False                # connection lost unexpectedly
        self.closing = False               # deliberate discard/shutdown
        self.reader = threading.Thread(
            target=self._read_loop, name=f"repro-sock-w{k}", daemon=True
        )
        self.reader.start()

    # The reader thread is the only receiver; it completes futures by seq.
    def _read_loop(self) -> None:
        while True:
            try:
                frame = wire.recv_frame(self.conn)
            except (wire.WireError, ConnectionError, OSError):
                self._fail_pending()
                return
            if frame.msg != wire.RESULT:
                continue  # stray frame; only RESULT flows worker -> parent
            with self.lock:
                future = self.pending.pop(frame.seq, None)
            if future is not None:
                try:
                    future.set_result(frame.payload)
                except InvalidStateError:
                    pass  # cancelled by apply_batch_chunked's unwind

    def _fail_pending(self) -> None:
        with self.lock:
            if self.closing:
                return  # discard/shutdown already settled the futures
            self.broken = True
            pending, self.pending = self.pending, {}
        for future in pending.values():
            try:
                future.set_exception(
                    BrokenProcessPool(
                        f"socket worker {self.k} connection lost"
                    )
                )
            except InvalidStateError:
                pass  # lost the race with a cancel; either way it's dead

    def submit(self, frames_payloads) -> Future:
        """Send ``[(msg, payload), ...]``; the last one carries the reply
        seq.  Raises ``BrokenProcessPool`` if the worker is gone."""
        future: Future = Future()
        with self.lock:
            if self.broken or self.closing:
                raise BrokenProcessPool(
                    f"socket worker {self.k} is not connected"
                )
            self.seq += 1
            seq = self.seq
            self.pending[seq] = future
            try:
                for msg, payload in frames_payloads[:-1]:
                    wire.send_frame(self.conn, msg, 0, payload)
                msg, payload = frames_payloads[-1]
                wire.send_frame(self.conn, msg, seq, payload)
            except OSError:
                self.broken = True
                self.pending.pop(seq, None)
                raise BrokenProcessPool(
                    f"socket worker {self.k} send failed"
                ) from None
        return future

    def discard(self, graceful: bool = False) -> List[BaseException]:
        """Stop the worker.  Pending futures are *cancelled* (the collect
        path's free same-worker retry), mirroring the local transport's
        ``shutdown(cancel_futures=True)``.  Returns swallowed errors."""
        errors: List[BaseException] = []
        with self.lock:
            self.closing = True
            pending, self.pending = self.pending, {}
            if graceful and not self.broken:
                try:
                    wire.send_frame(self.conn, wire.SHUTDOWN, 0)
                except OSError as exc:
                    errors.append(exc)
        for future in pending.values():
            future.cancel()
        try:
            self.conn.close()
        except OSError as exc:  # pragma: no cover - close on dead socket
            errors.append(exc)
        try:
            if graceful:
                self.proc.wait(timeout=5)
            else:
                self.proc.kill()
                self.proc.wait(timeout=5)
        except Exception as exc:
            errors.append(exc)
            try:
                self.proc.kill()
            except Exception:  # pragma: no cover - already gone
                pass
        return errors


class SocketTransport(Transport):
    """Standalone worker processes over framed loopback sockets.

    Loopback TCP stands in for a cluster interconnect: workers inherit no
    parent state, all caches travel as explicit delta frames, and shm is
    off (``local_shm=False``) because a remote node could not map the
    parent's segments — every footprint degrades to a wire payload.
    """

    local_shm = False
    name = "socket"

    def __init__(self, n: int):
        super().__init__(n)
        self._handles: List[Optional[_SocketWorker]] = [None] * n
        self._token = secrets.token_hex(16)

    # ----------------------------------------------------------- spawning
    def _spawn(self, k: int) -> _SocketWorker:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        proc = None
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            port = listener.getsockname()[1]
            env = dict(os.environ)
            # Ship the parent's import universe: by-reference pickles
            # (tasks defined in importable modules, e.g. under pytest)
            # must resolve in a process that inherited nothing.
            env["PYTHONPATH"] = os.pathsep.join(
                p if p else os.getcwd() for p in sys.path
            )
            env["REPRO_SOCKET_TOKEN"] = self._token
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.exec.socket_worker",
                    "--port",
                    str(port),
                    "--worker",
                    str(k),
                ],
                env=env,
                stdout=subprocess.DEVNULL,
            )
            listener.settimeout(SPAWN_TIMEOUT_S)
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                raise BrokenProcessPool(
                    f"socket worker {k} never connected"
                ) from None
        except Exception:
            if proc is not None:
                proc.kill()
            raise
        finally:
            listener.close()
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn.settimeout(SPAWN_TIMEOUT_S)
            hello = wire.recv_frame(conn, check_version=False)
            if hello.msg != wire.HELLO:
                raise wire.WireError(
                    f"expected HELLO, got {wire.MSG_NAMES.get(hello.msg)}"
                )
            if hello.version != wire.PROTOCOL_VERSION:
                wire.send_frame(
                    conn, wire.REJECT, 0,
                    wire.json_payload(
                        reason=f"protocol version {hello.version} != "
                               f"{wire.PROTOCOL_VERSION}"
                    ),
                )
                raise wire.VersionMismatch(
                    f"socket worker {k} speaks protocol {hello.version}, "
                    f"parent speaks {wire.PROTOCOL_VERSION}"
                )
            fields = wire.parse_json(hello.payload)
            if fields.get("token") != self._token:
                wire.send_frame(
                    conn, wire.REJECT, 0,
                    wire.json_payload(reason="bad token"),
                )
                raise wire.WireError(f"socket worker {k} sent a bad token")
            wire.send_frame(conn, wire.WELCOME, 0)
            conn.settimeout(None)
        except Exception:
            conn.close()
            proc.kill()
            raise
        return _SocketWorker(k, proc, conn)

    def _handle(self, k: int) -> _SocketWorker:
        handle = self._handles[k]
        if handle is not None and (handle.broken or handle.closing):
            # Do NOT transparently respawn here: the parent's cache
            # bookkeeping still believes this worker holds shipped state,
            # and a silently-fresh process cannot apply the next delta.
            # Surfacing BrokenProcessPool routes the failure through the
            # backend's ladder, whose respawn (``pool.reset_worker``)
            # discards the handle *and* wipes beliefs + bumps the
            # generation before anything is resubmitted.
            raise BrokenProcessPool(
                f"socket worker {k} connection is down"
            )
        if handle is None:
            handle = self._spawn(k)
            self._handles[k] = handle
        return handle

    # ----------------------------------------------------------- dispatch
    def submit_shard(self, k: int, plan_blob: bytes, plan=None) -> Future:
        frames = []
        if plan is not None and (
            plan.regions or plan.partitions or plan.task_blob is not None
        ):
            # First shipment to this worker generation: peel the cache
            # deltas out of the plan into their explicit message types.
            # Steady-state plans carry no deltas and skip straight to the
            # (already serialized) SHARD frame below.
            if plan.regions:
                frames.append((wire.REGIONS, dumps(plan.regions)))
            if plan.partitions:
                frames.append((wire.PARTITIONS, dumps(plan.partitions)))
            if plan.task_blob is not None:
                frames.append(
                    (wire.TASK, dumps((plan.task_uid, plan.task_blob)))
                )
            plan_blob = dumps(
                replace(plan, regions=(), partitions=(), task_blob=None)
            )
        frames.append((wire.SHARD, plan_blob))
        return self._handle(k).submit(frames)

    def submit_batch(self, k: int, functor_blob: bytes, points) -> Future:
        return self._handle(k).submit(
            [(wire.BATCH, dumps((functor_blob, points)))]
        )

    # ---------------------------------------------------------- lifecycle
    def discard_worker(self, k: int) -> None:
        handle = self._handles[k]
        self._handles[k] = None
        if handle is not None:
            handle.discard()

    def drop_connection(self, k: int) -> None:
        """Sever worker ``k``'s connection *without* settling anything —
        the fault-injection hook for "the network ate this node".  The
        reader thread fails the pending futures with BrokenProcessPool,
        exactly what a mid-run connection loss looks like."""
        handle = self._handles[k]
        if handle is not None:
            try:
                handle.conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            handle.conn.close()

    def shutdown(self) -> List[BaseException]:
        errors: List[BaseException] = []
        for k in range(self.n):
            handle = self._handles[k]
            self._handles[k] = None
            if handle is not None:
                errors.extend(handle.discard(graceful=True))
        return errors


TRANSPORTS = {
    LocalTransport.name: LocalTransport,
    SocketTransport.name: SocketTransport,
}
