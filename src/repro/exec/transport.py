"""Pluggable worker transports beneath :class:`~repro.exec.pool.WorkerPool`.

A transport owns how worker processes are started, how shard plans and
cache deltas reach them, and how result bytes come back.  The pool keeps
everything else — affinity, cache bookkeeping, generations, the shm
arena, failure metrics — so the PR 5 recovery ladder in
``parallel._collect_shard`` works unchanged on any transport.  The
contract that makes that possible is the *exception mapping*: every
transport surfaces infrastructure failures through the same classes the
fork path produces —

* a dead worker (or lost connection) raises ``BrokenProcessPool``, at
  submit time or from a collected future;
* a worker discarded mid-flight cancels its pending futures
  (``CancelledError`` at collect — the free same-worker retry);
* a slow result is the caller's ``future.result(timeout)`` raising
  ``concurrent.futures.TimeoutError``.

Three implementations:

* :class:`LocalTransport` — the original fork/``ProcessPoolExecutor``
  path, one single-process executor per slot (``local_shm=True``: parent
  and workers share the machine-local shm segment namespace).
* :class:`PipeTransport` — persistent workers forked once per pool, each
  wired to the parent by a pair of raw ``os.pipe`` fds speaking the
  framed wire protocol.  No ``concurrent.futures`` anywhere: the parent
  does non-blocking batched writes and drains every worker's RESULT
  frames through one ``selectors`` loop driven inline from
  ``future.result()`` — zero helper threads, so collecting a shard costs
  one ``epoll_wait`` + one ``read`` instead of the stdlib executor's
  queue-feeder/condition-variable wake (~0.25 ms per submit).
  ``local_shm=True``: forked children attach the parent's segments.
* :class:`SocketTransport` — standalone ``python -m
  repro.exec.socket_worker`` processes connected over length-prefixed
  framed loopback sockets (:mod:`repro.exec.wire`), standing in for
  cluster nodes.  ``local_shm=False``: shm descriptors degrade to wire
  payloads because a remote node cannot map the parent's segments.
  ``REPRO_SOCKET_HOSTS=host:port,...`` assigns slots to *pre-started*
  remote workers (``socket_worker --listen``) instead of spawning
  locally — the first real step off the single machine.
"""

from __future__ import annotations

import os
import secrets
import select
import selectors
import signal
import socket
import subprocess
import sys
import threading
import time
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import (
    CancelledError,
    Future,
    InvalidStateError,
    ProcessPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import Dict, List, Optional

from repro.exec import wire
from repro.exec.plan import dumps

__all__ = [
    "Transport",
    "LocalTransport",
    "PipeTransport",
    "SocketTransport",
    "TRANSPORTS",
    "make_transport",
    "resolve_transport",
]

#: Seconds a freshly spawned socket worker gets to connect and say HELLO
#: (a cold python -m import of numpy + repro dominates this).
SPAWN_TIMEOUT_S = 60.0


def resolve_transport(configured: Optional[str]) -> str:
    """Effective transport name: explicit config wins, else
    ``REPRO_TRANSPORT``, else ``local``."""
    name = configured
    if name is None:
        name = os.environ.get("REPRO_TRANSPORT", "").strip() or "local"
    name = str(name).lower()
    if name not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {name!r}; choose from {sorted(TRANSPORTS)}"
        )
    return name


def make_transport(name: str, n: int) -> "Transport":
    return TRANSPORTS[name](n)


class Transport(ABC):
    """How ``n`` worker slots are reached; see the module docstring for
    the exception-mapping contract every implementation must keep."""

    #: Whether workers share the parent's shared-memory segment namespace.
    #: False degrades every shm descriptor to a pickled wire payload.
    local_shm = True
    name = "abstract"

    def __init__(self, n: int):
        self.n = n
        #: Optional obs profiler, wired in by the pool; transports with a
        #: dispatch loop count their wakes (``dispatch.wake``) on it.
        self.profiler = None

    def executor(self, k: int) -> ProcessPoolExecutor:
        raise RuntimeError(
            f"{type(self).__name__} has no in-process executor"
        )

    @abstractmethod
    def submit_shard(self, k: int, plan_blob: bytes, plan=None) -> Future:
        """Ship one shard to worker ``k``; future resolves to result bytes."""

    def submit_shards(self, k: int, items) -> List[Future]:
        """Ship a whole per-worker shard batch ``[(plan_blob, plan), ...]``.

        The default just loops :meth:`submit_shard`; transports with a
        vectored write path (pipe) override this to send one frame
        carrying the batch, amortizing serialization and syscalls."""
        return [
            self.submit_shard(k, plan_blob, plan=plan)
            for plan_blob, plan in items
        ]

    @abstractmethod
    def submit_batch(self, k: int, functor_blob: bytes, points) -> Future:
        """Chunked dynamic-check evaluation; future resolves to result bytes."""

    @abstractmethod
    def discard_worker(self, k: int) -> None:
        """Abandon worker ``k``: cancel its pending futures, drop the
        process.  The pool has already cleared caches and bumped the
        generation; a later submit spawns a fresh worker."""

    @abstractmethod
    def shutdown(self) -> List[BaseException]:
        """Tear everything down; returns the exceptions swallowed doing it
        (counted by the pool as ``shutdown_errors`` — never silent)."""


# --------------------------------------------------------------------- local
def _mp_context():
    """Fork keeps warm numpy/module state and makes spin-up cheap; fall
    back to the platform default where fork is unavailable."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class LocalTransport(Transport):
    """One persistent single-process fork executor per slot."""

    local_shm = True
    name = "local"

    def __init__(self, n: int):
        super().__init__(n)
        self._slots: List[Optional[ProcessPoolExecutor]] = [None] * n
        #: executors abandoned by discard_worker, drained at shutdown so
        #: their manager threads are joined before interpreter teardown
        #: (CPython's process-pool atexit hook prints "Exception ignored"
        #: noise when it pokes a broken, never-joined executor).
        self._retired: List[ProcessPoolExecutor] = []

    def executor(self, k: int) -> ProcessPoolExecutor:
        if self._slots[k] is None:
            self._slots[k] = ProcessPoolExecutor(
                max_workers=1, mp_context=_mp_context()
            )
        return self._slots[k]

    def submit_shard(self, k: int, plan_blob: bytes, plan=None) -> Future:
        from repro.exec.worker import run_shard_bytes

        return self.executor(k).submit(run_shard_bytes, plan_blob)

    def submit_batch(self, k: int, functor_blob: bytes, points) -> Future:
        from repro.exec.worker import apply_batch_bytes

        return self.executor(k).submit(apply_batch_bytes, functor_blob, points)

    def discard_worker(self, k: int) -> None:
        executor = self._slots[k]
        self._slots[k] = None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
            self._retired.append(executor)

    def shutdown(self) -> List[BaseException]:
        errors: List[BaseException] = []
        for k in range(self.n):
            executor = self._slots[k]
            self._slots[k] = None
            if executor is not None:
                try:
                    executor.shutdown(wait=False, cancel_futures=True)
                except Exception as exc:
                    errors.append(exc)
        for executor in self._retired:
            try:
                executor.shutdown(wait=True, cancel_futures=True)
            except Exception as exc:
                errors.append(exc)
        self._retired.clear()
        return errors


# ---------------------------------------------------------------------- pipe
_PENDING = "pending"
_CANCELLED = "cancelled"
_RESULT = "result"
_EXCEPTION = "exception"


class _PipeFuture:
    """A future settled by :class:`PipeTransport`'s inline selector loop.

    There is no worker-side thread to wake us: ``result()`` *is* the
    event loop — it drives the owning transport's selector until this
    future settles, servicing every pipe worker's reads and writes along
    the way.  The surface mirrors what the backend and the pool's
    ``apply_batch_chunked`` actually use of ``concurrent.futures.Future``
    (``result``/``cancel``/``done``), with the same exception mapping:
    ``CancelledError`` for a discarded worker, ``FuturesTimeout`` past
    the deadline, and whatever ``set_exception`` recorded otherwise.
    """

    __slots__ = ("_transport", "_state", "_value")

    def __init__(self, transport: "PipeTransport"):
        self._transport = transport
        self._state = _PENDING
        self._value = None

    def done(self) -> bool:
        return self._state is not _PENDING

    def cancelled(self) -> bool:
        return self._state is _CANCELLED

    def cancel(self) -> bool:
        if self._state is _PENDING:
            self._state = _CANCELLED
            return True
        return self._state is _CANCELLED

    def set_result(self, value) -> None:
        if self._state is _PENDING:
            self._state = _RESULT
            self._value = value

    def set_exception(self, exc: BaseException) -> None:
        if self._state is _PENDING:
            self._state = _EXCEPTION
            self._value = exc

    def result(self, timeout: Optional[float] = None):
        if self._state is _PENDING:
            self._transport._drive_until(self, timeout)
        if self._state is _CANCELLED:
            raise CancelledError()
        if self._state is _EXCEPTION:
            raise self._value
        return self._value


class _PipeWorker:
    """Parent-side bookkeeping for one forked pipe worker."""

    __slots__ = (
        "k", "pid", "rfd", "wfd", "decoder", "pending", "seq",
        "backlog", "broken", "closing", "write_waiting",
    )

    def __init__(self, k: int, pid: int, rfd: int, wfd: int):
        self.k = k
        self.pid = pid
        self.rfd = rfd
        self.wfd = wfd
        self.decoder = wire.FrameDecoder()
        self.pending: Dict[int, _PipeFuture] = {}
        self.seq = 0
        self.backlog: deque = deque()   # outgoing memoryviews, oldest first
        self.broken = False
        self.closing = False
        self.write_waiting = False      # wfd registered for EVENT_WRITE


class PipeTransport(Transport):
    """Forked persistent workers over raw pipes — no executor, no threads.

    Each slot is one child forked from this very interpreter (warm numpy
    and module state, guaranteed protocol-version match, shared shm
    namespace), connected by an ``os.pipe`` pair carrying the framed wire
    protocol.  All parent-side I/O is non-blocking: submits append to a
    per-worker write backlog and flush opportunistically; one shared
    ``selectors`` loop — run inline from ``_PipeFuture.result()`` on the
    caller's own thread — drains every worker's RESULT frames and
    finishes stalled writes.  A worker death surfaces as EOF on its read
    pipe (sibling children close each other's fds at fork so the EOF is
    prompt), mapped to ``BrokenProcessPool`` per the transport contract;
    a framing desync (garbled stream) poisons the pipe the same way.
    """

    local_shm = True
    name = "pipe"

    def __init__(self, n: int):
        super().__init__(n)
        self._handles: List[Optional[_PipeWorker]] = [None] * n
        self._selector = selectors.DefaultSelector()

    # ----------------------------------------------------------- spawning
    def _spawn(self, k: int) -> _PipeWorker:
        sys.stdout.flush()
        sys.stderr.flush()
        child_read, parent_write = os.pipe()
        parent_read, child_write = os.pipe()
        pid = os.fork()
        if pid == 0:
            # Child: serve frames until SHUTDOWN or EOF, then _exit so no
            # parent atexit hook (pools, pytest, shm cleanup) ever runs
            # twice.  Closing sibling workers' fds is what makes a sibling
            # death observable as EOF in the parent.
            status = 0
            try:
                os.close(parent_write)
                os.close(parent_read)
                for sibling in self._handles:
                    if sibling is not None:
                        for fd in (sibling.rfd, sibling.wfd):
                            try:
                                os.close(fd)
                            except OSError:
                                pass
                from repro.exec.worker import serve_pipe

                serve_pipe(child_read, child_write)
            except BaseException:
                status = 1
            finally:
                os._exit(status)
        os.close(child_read)
        os.close(child_write)
        os.set_blocking(parent_read, False)
        os.set_blocking(parent_write, False)
        worker = _PipeWorker(k, pid, parent_read, parent_write)
        self._selector.register(parent_read, selectors.EVENT_READ, worker)
        return worker

    def _handle(self, k: int) -> _PipeWorker:
        worker = self._handles[k]
        if worker is not None and (worker.broken or worker.closing):
            # Same discipline as the socket transport: never respawn
            # transparently — the ladder's reset_worker must wipe cache
            # beliefs and bump the generation first.
            raise BrokenProcessPool(f"pipe worker {k} is down")
        if worker is None:
            worker = self._spawn(k)
            self._handles[k] = worker
        return worker

    # ----------------------------------------------------------- dispatch
    def _register_future(self, worker: _PipeWorker):
        worker.seq += 1
        future = _PipeFuture(self)
        worker.pending[worker.seq] = future
        return worker.seq, future

    def submit_shard(self, k: int, plan_blob: bytes, plan=None) -> _PipeFuture:
        worker = self._handle(k)
        seq, future = self._register_future(worker)
        self._send(worker, wire.pack_frame(wire.SHARD, seq, plan_blob))
        return future

    def submit_shards(self, k: int, items) -> List[_PipeFuture]:
        """The vectored path: one SHARDS frame carries the whole batch in
        a single write; the worker answers one RESULT per shard so the
        fault ladder keeps per-shard granularity."""
        worker = self._handle(k)
        futures: List[_PipeFuture] = []
        pairs = []
        for plan_blob, _plan in items:
            seq, future = self._register_future(worker)
            futures.append(future)
            pairs.append((seq, plan_blob))
        self._send(worker, wire.pack_frame(wire.SHARDS, 0, dumps(pairs)))
        return futures

    def submit_batch(self, k: int, functor_blob: bytes, points) -> _PipeFuture:
        worker = self._handle(k)
        seq, future = self._register_future(worker)
        self._send(
            worker,
            wire.pack_frame(wire.BATCH, seq, dumps((functor_blob, points))),
        )
        return future

    # ------------------------------------------------------------- writes
    def _send(self, worker: _PipeWorker, data: bytes) -> None:
        worker.backlog.append(memoryview(data))
        self._flush(worker)
        if worker.broken:
            raise BrokenProcessPool(f"pipe worker {worker.k} is gone")

    def _flush(self, worker: _PipeWorker) -> None:
        backlog = worker.backlog
        while backlog:
            head = backlog[0]
            try:
                n = os.write(worker.wfd, head)
            except BlockingIOError:
                break
            except OSError:
                self._mark_broken(worker)
                return
            if n == len(head):
                backlog.popleft()
            else:
                backlog[0] = head[n:]
        self._update_write_interest(worker)

    def _update_write_interest(self, worker: _PipeWorker) -> None:
        want = bool(worker.backlog)
        if want and not worker.write_waiting:
            self._selector.register(
                worker.wfd, selectors.EVENT_WRITE, worker
            )
            worker.write_waiting = True
        elif not want and worker.write_waiting:
            self._selector.unregister(worker.wfd)
            worker.write_waiting = False

    # -------------------------------------------------------- event loop
    def _drive(self, timeout: Optional[float]) -> bool:
        """One selector pass; True if any events were serviced."""
        events = self._selector.select(timeout)
        if not events:
            return False
        prof = self.profiler
        if prof is not None and prof.enabled:
            prof.count("dispatch.wake", 1.0, transport=self.name)
        for key, mask in events:
            worker = key.data
            if worker.broken or worker.closing:
                continue
            if mask & selectors.EVENT_WRITE:
                self._flush(worker)
            if mask & selectors.EVENT_READ:
                self._on_readable(worker)
        return True

    def _drive_until(
        self, future: _PipeFuture, timeout: Optional[float]
    ) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        while future._state is _PENDING:
            if deadline is None:
                self._drive(None)
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise FuturesTimeout(
                    f"pipe worker result not ready after {timeout}s"
                )
            self._drive(remaining)

    def _on_readable(self, worker: _PipeWorker) -> None:
        try:
            chunk = os.read(worker.rfd, 1 << 20)
        except BlockingIOError:
            return
        except OSError:
            chunk = b""
        if not chunk:
            self._mark_broken(worker)
            return
        worker.decoder.feed(chunk)
        while True:
            try:
                frame = worker.decoder.next()
            except wire.WireError:
                # Framing desync: the stream can never be trusted again —
                # same failure class as a severed connection.
                self._mark_broken(worker)
                return
            if frame is None:
                return
            if frame.msg != wire.RESULT:
                continue
            future = worker.pending.pop(frame.seq, None)
            if future is not None:
                future.set_result(frame.payload)

    # ------------------------------------------------------------ failure
    def _mark_broken(self, worker: _PipeWorker) -> None:
        if worker.broken or worker.closing:
            return
        worker.broken = True
        self._unregister(worker)
        pending, worker.pending = worker.pending, {}
        for future in pending.values():
            future.set_exception(
                BrokenProcessPool(f"pipe worker {worker.k} died")
            )
        worker.backlog.clear()
        for fd in (worker.rfd, worker.wfd):
            try:
                os.close(fd)
            except OSError:
                pass
        try:
            os.kill(worker.pid, signal.SIGKILL)
        except (ProcessLookupError, OSError):
            pass
        self._reap(worker.pid, timeout=5.0)

    def _unregister(self, worker: _PipeWorker) -> None:
        try:
            self._selector.unregister(worker.rfd)
        except (KeyError, ValueError):
            pass
        if worker.write_waiting:
            try:
                self._selector.unregister(worker.wfd)
            except (KeyError, ValueError):
                pass
            worker.write_waiting = False

    @staticmethod
    def _reap(pid: int, timeout: float) -> bool:
        end = time.monotonic() + timeout
        while True:
            try:
                done, _ = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                return True
            if done:
                return True
            if time.monotonic() >= end:
                return False
            time.sleep(0.005)

    # ---------------------------------------------------------- lifecycle
    def discard_worker(self, k: int) -> None:
        worker = self._handles[k]
        self._handles[k] = None
        if worker is not None:
            self._close_worker(worker, graceful=False)

    def drop_connection(self, k: int) -> None:
        """Kill worker ``k`` without settling anything — the pipe
        analogue of the socket transport's severed connection.  The next
        selector pass reads EOF and fails the pending futures with
        BrokenProcessPool, which the ladder recovers as a tier-2
        respawn."""
        worker = self._handles[k]
        if worker is not None:
            try:
                os.kill(worker.pid, signal.SIGKILL)
            except (ProcessLookupError, OSError):
                pass

    def _close_worker(
        self, worker: _PipeWorker, graceful: bool
    ) -> List[BaseException]:
        errors: List[BaseException] = []
        was_broken = worker.broken
        worker.closing = True
        self._unregister(worker)
        pending, worker.pending = worker.pending, {}
        for future in pending.values():
            future.cancel()
        if graceful and not was_broken:
            try:
                tail = b"".join(bytes(m) for m in worker.backlog)
                self._write_deadline(
                    worker, tail + wire.pack_frame(wire.SHUTDOWN, 0)
                )
            except (OSError, TimeoutError) as exc:
                errors.append(exc)
        worker.backlog.clear()
        if not was_broken:
            for fd in (worker.rfd, worker.wfd):
                try:
                    os.close(fd)
                except OSError:
                    pass
            if not graceful:
                try:
                    os.kill(worker.pid, signal.SIGKILL)
                except (ProcessLookupError, OSError):
                    pass
            if not self._reap(worker.pid, timeout=5.0):
                try:
                    os.kill(worker.pid, signal.SIGKILL)
                except (ProcessLookupError, OSError):
                    pass
                if not self._reap(worker.pid, timeout=5.0):
                    errors.append(
                        TimeoutError(
                            f"pipe worker {worker.k} "
                            f"(pid {worker.pid}) did not exit"
                        )
                    )
        return errors

    @staticmethod
    def _write_deadline(
        worker: _PipeWorker, data: bytes, deadline_s: float = 2.0
    ) -> None:
        """Best-effort bounded write for the graceful-shutdown frame; the
        fd stays non-blocking so a wedged child cannot hang teardown."""
        view = memoryview(data)
        end = time.monotonic() + deadline_s
        while view:
            try:
                view = view[os.write(worker.wfd, view):]
            except BlockingIOError:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError("pipe shutdown write stalled")
                select.select([], [worker.wfd], [], remaining)

    def shutdown(self) -> List[BaseException]:
        errors: List[BaseException] = []
        for k in range(self.n):
            worker = self._handles[k]
            self._handles[k] = None
            if worker is not None:
                errors.extend(self._close_worker(worker, graceful=True))
        try:
            self._selector.close()
        except Exception as exc:  # pragma: no cover - selector close
            errors.append(exc)
        self._selector = selectors.DefaultSelector()
        return errors


# -------------------------------------------------------------------- socket
class _SocketWorker:
    """Parent-side handle for one connected socket worker process.

    ``proc`` is ``None`` for a pre-started remote worker (see
    ``REPRO_SOCKET_HOSTS``): the parent owns only the connection, never
    the process."""

    def __init__(
        self, k: int, proc: Optional[subprocess.Popen], conn: socket.socket
    ):
        self.k = k
        self.proc = proc
        self.conn = conn
        self.pending: Dict[int, Future] = {}
        self.lock = threading.Lock()       # guards pending + seq + sends
        self.seq = 0
        self.broken = False                # connection lost unexpectedly
        self.closing = False               # deliberate discard/shutdown
        self.reader = threading.Thread(
            target=self._read_loop, name=f"repro-sock-w{k}", daemon=True
        )
        self.reader.start()

    # The reader thread is the only receiver; it completes futures by seq.
    def _read_loop(self) -> None:
        while True:
            try:
                frame = wire.recv_frame(self.conn)
            except (wire.WireError, ConnectionError, OSError):
                self._fail_pending()
                return
            if frame.msg != wire.RESULT:
                continue  # stray frame; only RESULT flows worker -> parent
            with self.lock:
                future = self.pending.pop(frame.seq, None)
            if future is not None:
                try:
                    future.set_result(frame.payload)
                except InvalidStateError:
                    pass  # cancelled by apply_batch_chunked's unwind

    def _fail_pending(self) -> None:
        with self.lock:
            if self.closing:
                return  # discard/shutdown already settled the futures
            self.broken = True
            pending, self.pending = self.pending, {}
        for future in pending.values():
            try:
                future.set_exception(
                    BrokenProcessPool(
                        f"socket worker {self.k} connection lost"
                    )
                )
            except InvalidStateError:
                pass  # lost the race with a cancel; either way it's dead

    def submit(self, frames_payloads) -> Future:
        """Send ``[(msg, payload), ...]``; the last one carries the reply
        seq.  Raises ``BrokenProcessPool`` if the worker is gone."""
        future: Future = Future()
        with self.lock:
            if self.broken or self.closing:
                raise BrokenProcessPool(
                    f"socket worker {self.k} is not connected"
                )
            self.seq += 1
            seq = self.seq
            self.pending[seq] = future
            try:
                for msg, payload in frames_payloads[:-1]:
                    wire.send_frame(self.conn, msg, 0, payload)
                msg, payload = frames_payloads[-1]
                wire.send_frame(self.conn, msg, seq, payload)
            except OSError:
                self.broken = True
                self.pending.pop(seq, None)
                raise BrokenProcessPool(
                    f"socket worker {self.k} send failed"
                ) from None
        return future

    def discard(self, graceful: bool = False) -> List[BaseException]:
        """Stop the worker.  Pending futures are *cancelled* (the collect
        path's free same-worker retry), mirroring the local transport's
        ``shutdown(cancel_futures=True)``.  Returns swallowed errors."""
        errors: List[BaseException] = []
        with self.lock:
            self.closing = True
            pending, self.pending = self.pending, {}
            if graceful and not self.broken:
                try:
                    wire.send_frame(self.conn, wire.SHUTDOWN, 0)
                except OSError as exc:
                    errors.append(exc)
        for future in pending.values():
            future.cancel()
        try:
            self.conn.close()
        except OSError as exc:  # pragma: no cover - close on dead socket
            errors.append(exc)
        if self.proc is None:
            # Pre-started remote worker: closing the connection is all we
            # own; its --listen loop goes back to accepting.
            return errors
        try:
            if graceful:
                self.proc.wait(timeout=5)
            else:
                self.proc.kill()
                self.proc.wait(timeout=5)
        except Exception as exc:
            errors.append(exc)
            try:
                self.proc.kill()
            except Exception:  # pragma: no cover - already gone
                pass
        return errors


class SocketTransport(Transport):
    """Standalone worker processes over framed loopback sockets.

    Loopback TCP stands in for a cluster interconnect: workers inherit no
    parent state, all caches travel as explicit delta frames, and shm is
    off (``local_shm=False``) because a remote node could not map the
    parent's segments — every footprint degrades to a wire payload.
    """

    local_shm = False
    name = "socket"

    def __init__(self, n: int):
        super().__init__(n)
        self._handles: List[Optional[_SocketWorker]] = [None] * n
        self._hosts = self._parse_hosts(
            os.environ.get("REPRO_SOCKET_HOSTS", "")
        )
        if self._hosts:
            # Pre-started workers read REPRO_SOCKET_TOKEN from *their*
            # environment at launch, so both sides must agree on it out of
            # band; locally spawned fill-in workers inherit the same one.
            self._token = os.environ.get("REPRO_SOCKET_TOKEN", "")
        else:
            self._token = secrets.token_hex(16)

    @staticmethod
    def _parse_hosts(raw: str) -> List[tuple]:
        hosts = []
        for entry in raw.split(","):
            entry = entry.strip()
            if not entry:
                continue
            host, sep, port = entry.rpartition(":")
            if not sep or not host:
                raise ValueError(
                    f"REPRO_SOCKET_HOSTS entry {entry!r} is not host:port"
                )
            hosts.append((host, int(port)))
        return hosts

    # ----------------------------------------------------------- spawning
    def _spawn(self, k: int) -> _SocketWorker:
        if k < len(self._hosts):
            return self._connect(k, *self._hosts[k])
        return self._spawn_local(k)

    def _connect(self, k: int, host: str, port: int) -> _SocketWorker:
        """Adopt a pre-started ``socket_worker --listen`` process: dial
        it, then run the usual HELLO/WELCOME handshake (the worker sends
        HELLO on accept, so the frames are direction-agnostic).  Version
        or token mismatches get the same descriptive REJECT a spawned
        worker would."""
        try:
            conn = socket.create_connection(
                (host, port), timeout=SPAWN_TIMEOUT_S
            )
        except OSError as exc:
            raise BrokenProcessPool(
                f"socket worker {k} at {host}:{port} is unreachable: {exc}"
            ) from None
        try:
            self._verify_hello(conn, k)
        except Exception:
            conn.close()
            raise
        return _SocketWorker(k, None, conn)

    def _spawn_local(self, k: int) -> _SocketWorker:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        proc = None
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            port = listener.getsockname()[1]
            env = dict(os.environ)
            # Ship the parent's import universe: by-reference pickles
            # (tasks defined in importable modules, e.g. under pytest)
            # must resolve in a process that inherited nothing.
            env["PYTHONPATH"] = os.pathsep.join(
                p if p else os.getcwd() for p in sys.path
            )
            env["REPRO_SOCKET_TOKEN"] = self._token
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.exec.socket_worker",
                    "--port",
                    str(port),
                    "--worker",
                    str(k),
                ],
                env=env,
                stdout=subprocess.DEVNULL,
            )
            listener.settimeout(SPAWN_TIMEOUT_S)
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                raise BrokenProcessPool(
                    f"socket worker {k} never connected"
                ) from None
        except Exception:
            if proc is not None:
                proc.kill()
            raise
        finally:
            listener.close()
        try:
            self._verify_hello(conn, k)
        except Exception:
            conn.close()
            proc.kill()
            raise
        return _SocketWorker(k, proc, conn)

    def _verify_hello(self, conn: socket.socket, k: int) -> None:
        """Receive and validate the worker's HELLO; answer WELCOME, or a
        descriptive REJECT on version/token mismatch before raising."""
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn.settimeout(SPAWN_TIMEOUT_S)
        hello = wire.recv_frame(conn, check_version=False)
        if hello.msg != wire.HELLO:
            raise wire.WireError(
                f"expected HELLO, got {wire.MSG_NAMES.get(hello.msg)}"
            )
        if hello.version != wire.PROTOCOL_VERSION:
            wire.send_frame(
                conn, wire.REJECT, 0,
                wire.json_payload(
                    reason=f"protocol version {hello.version} != "
                           f"{wire.PROTOCOL_VERSION}"
                ),
            )
            raise wire.VersionMismatch(
                f"socket worker {k} speaks protocol {hello.version}, "
                f"parent speaks {wire.PROTOCOL_VERSION}"
            )
        fields = wire.parse_json(hello.payload)
        if fields.get("token") != self._token:
            wire.send_frame(
                conn, wire.REJECT, 0,
                wire.json_payload(reason="bad token"),
            )
            raise wire.WireError(f"socket worker {k} sent a bad token")
        wire.send_frame(conn, wire.WELCOME, 0)
        conn.settimeout(None)

    def _handle(self, k: int) -> _SocketWorker:
        handle = self._handles[k]
        if handle is not None and (handle.broken or handle.closing):
            # Do NOT transparently respawn here: the parent's cache
            # bookkeeping still believes this worker holds shipped state,
            # and a silently-fresh process cannot apply the next delta.
            # Surfacing BrokenProcessPool routes the failure through the
            # backend's ladder, whose respawn (``pool.reset_worker``)
            # discards the handle *and* wipes beliefs + bumps the
            # generation before anything is resubmitted.
            raise BrokenProcessPool(
                f"socket worker {k} connection is down"
            )
        if handle is None:
            handle = self._spawn(k)
            self._handles[k] = handle
        return handle

    # ----------------------------------------------------------- dispatch
    def submit_shard(self, k: int, plan_blob: bytes, plan=None) -> Future:
        frames = []
        if plan is not None and (
            plan.regions or plan.partitions or plan.task_blob is not None
        ):
            # First shipment to this worker generation: peel the cache
            # deltas out of the plan into their explicit message types.
            # Steady-state plans carry no deltas and skip straight to the
            # (already serialized) SHARD frame below.
            if plan.regions:
                frames.append((wire.REGIONS, dumps(plan.regions)))
            if plan.partitions:
                frames.append((wire.PARTITIONS, dumps(plan.partitions)))
            if plan.task_blob is not None:
                frames.append(
                    (wire.TASK, dumps((plan.task_uid, plan.task_blob)))
                )
            plan_blob = dumps(
                replace(plan, regions=(), partitions=(), task_blob=None)
            )
        frames.append((wire.SHARD, plan_blob))
        return self._handle(k).submit(frames)

    def submit_batch(self, k: int, functor_blob: bytes, points) -> Future:
        return self._handle(k).submit(
            [(wire.BATCH, dumps((functor_blob, points)))]
        )

    # ---------------------------------------------------------- lifecycle
    def discard_worker(self, k: int) -> None:
        handle = self._handles[k]
        self._handles[k] = None
        if handle is not None:
            handle.discard()

    def drop_connection(self, k: int) -> None:
        """Sever worker ``k``'s connection *without* settling anything —
        the fault-injection hook for "the network ate this node".  The
        reader thread fails the pending futures with BrokenProcessPool,
        exactly what a mid-run connection loss looks like."""
        handle = self._handles[k]
        if handle is not None:
            try:
                handle.conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            handle.conn.close()

    def shutdown(self) -> List[BaseException]:
        errors: List[BaseException] = []
        for k in range(self.n):
            handle = self._handles[k]
            self._handles[k] = None
            if handle is not None:
                errors.extend(handle.discard(graceful=True))
        return errors


TRANSPORTS = {
    LocalTransport.name: LocalTransport,
    PipeTransport.name: PipeTransport,
    SocketTransport.name: SocketTransport,
}
