"""Pluggable execution backends for the pipeline tail of an index launch.

``Runtime._issue_index_launch`` handles the launch-level stages — issuance,
safety, logical analysis, distribution — and then hands the per-node tail
(expansion, physical analysis, task-body execution) to its backend:

* :class:`SerialBackend` — the original in-process behavior, verbatim.
* :class:`~repro.exec.parallel.ParallelBackend` — fans shards out across a
  persistent process pool and merges results deterministically; selected
  with ``RuntimeConfig.workers > 1`` (or env ``REPRO_WORKERS``).

The backend boundary is *after* distribution on purpose: everything up to
the assignment is O(launch) work the paper's control replicas replicate
anyway, while everything below it is the O(|D|_local) per-node work that
Section 5 distributes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.fault.plan import InjectedFaultError
from repro.runtime.futures import FutureMap
from repro.runtime.physical import make_template
from repro.runtime.pipeline import Stage
from repro.runtime.replay import ExpansionTemplate, PointPlan
from repro.runtime.task import PhysicalRegion

__all__ = ["ExecutionBackend", "SerialBackend", "resolve_backend"]


class ExecutionBackend:
    """Interface: finish one distributed index launch."""

    name = "abstract"

    def __init__(self, rt):
        self.rt = rt

    def finish_launch(
        self,
        launch,
        sig: tuple,
        op_id: int,
        assignment: Dict[int, list],
        replay: bool,
        safe_order_free: bool,
        cache,
    ) -> FutureMap:
        """Expansion -> physical analysis -> execution for ``assignment``."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release backend resources (worker processes)."""

    def drain(self) -> None:
        """Commit every pipelined-ahead launch (see
        :class:`~repro.exec.parallel.ParallelBackend`).  Backends that
        never defer a commit have nothing to do."""

    def drain_conflicting(self, uids) -> None:
        """Commit pending launches whose write footprints intersect the
        region ``uids`` a new operation is about to touch.  No-op for
        backends that commit eagerly."""


class SerialBackend(ExecutionBackend):
    """The in-process pipeline tail — reference semantics for every backend."""

    name = "serial"

    def finish_launch(
        self, launch, sig, op_id, assignment, replay, safe_order_free, cache
    ) -> FutureMap:
        rt = self.rt
        cfg = rt.config
        prof = rt.profiler
        cost = prof.costmodel if prof.enabled else None

        # --- expansion, post-distribution: materialize per-point plans, or
        # reuse the memoized template (requirement footprints, analyzer
        # access triples, PhysicalRegion views) built on the first issue.
        t_expand = prof.mark()
        expansion = cache.get_expansion(sig) if cache is not None else None
        expansion_cached = expansion is not None
        plan_list: Optional[List[Tuple[int, PointPlan]]] = None
        if expansion is not None:
            rt.stats.analysis_cache_hits += 1
            plan_list = expansion.ordered_plans(launch, assignment)
            if plan_list is None:
                plan_list = []
                for node in sorted(assignment):
                    for point in assignment[node]:
                        plan_list.append(
                            (node, expansion.point_plan(launch, point))
                        )
                expansion.store_plans(launch, assignment, plan_list)
        else:
            expansion = ExpansionTemplate(
                base_args=launch.args,
                had_point_args=launch.point_args is not None,
            )
            plan_list = []
            for node in sorted(assignment):
                for point in assignment[node]:
                    point_task = launch.point_task(point)
                    triples = [
                        (req.subregion, req.privilege, req.resolved_fields())
                        for req in point_task.requirements
                    ]
                    plan = PointPlan(
                        task_launch=point_task,
                        requirements=list(point_task.requirements),
                        accesses=triples,
                        regions=[PhysicalRegion(*t) for t in triples],
                    )
                    expansion.plans[tuple(point)] = plan
                    plan_list.append((node, plan))
            expansion.store_plans(launch, assignment, plan_list)
            if cache is not None:
                cache.put_expansion(sig, expansion)
        if prof.enabled:
            prof.phase("expansion", "expansion", t_expand,
                       launch=launch.name, cached=expansion_cached,
                       points=len(plan_list))
            if expansion_cached:
                prof.instant("cache.expansion_hit", "expansion",
                             launch=launch.name)

        # --- physical analysis.  On a trace-validated replay, re-stamp the
        # recorded dependence template with fresh task ids; otherwise run
        # the live analyzer (capturing a template when this is the first
        # validated replay, so the next one can skip it).
        t_phys = prof.mark()
        template_replayed = False
        task_ids = [next(rt._task_counter) for _ in plan_list]
        tdeps_lists = None
        if replay and cache is not None:
            ptemplate = cache.get_physical(sig)
            if ptemplate is not None:
                tdeps_lists = rt.physical.replay_tasks(task_ids, ptemplate)
                if tdeps_lists is None:
                    # Validation failed (foreign state change): drop the
                    # template and fall back to live analysis below.
                    cache.drop_physical_for(sig)
                    rt.stats.analysis_cache_invalidations += 1
                    if prof.enabled:
                        prof.instant("cache.physical_bail", Stage.PHYSICAL,
                                     launch=launch.name)
                else:
                    rt.stats.analysis_cache_hits += 1
                    template_replayed = True
                    if prof.enabled:
                        prof.instant("cache.physical_replay", Stage.PHYSICAL,
                                     launch=launch.name)
        if tdeps_lists is None:
            capture = entry_keys = None
            if replay and cache is not None:
                region_uids = {req.region.uid for req in launch.requirements}
                entry_keys = rt.physical.snapshot_keys(region_uids)
                capture = []
            tdeps_lists = [
                rt.physical.record_task(tid, plan.accesses, _capture=capture)
                for tid, (_, plan) in zip(task_ids, plan_list)
            ]
            if capture is not None:
                ptemplate = make_template(capture, entry_keys)
                if ptemplate is not None:
                    cache.put_physical(sig, ptemplate)

        fmap = FutureMap(label=launch.name)
        # Per-node batched accounting: the representation table is a pure
        # additive counter, so one call per node lands the same totals as
        # one call per task.
        per_node: Dict[int, int] = {}
        for node, _ in plan_list:
            per_node[node] = per_node.get(node, 0) + 1
        rt.stats.physical_dependences += sum(len(t) for t in tdeps_lists)
        for node in sorted(per_node):
            rt.stats.add_representation(Stage.PHYSICAL, node, per_node[node])
        if rt.graph_recorder is not None:
            for tid, (node, plan), tdeps in zip(
                task_ids, plan_list, tdeps_lists
            ):
                rt.graph_recorder.record_task(
                    tid, plan.task_launch.name, op_id, node
                )
                rt.graph_recorder.record_physical_edges(tdeps)
        rt.stats.overlap_queries = rt.physical.overlap_queries
        if prof.enabled:
            for node in sorted(per_node):
                local = per_node[node]
                attrs = dict(op=op_id, launch=launch.name, tasks=local,
                             replayed=template_replayed)
                if cost is not None:
                    attrs["sim_cost_s"] = (
                        cost.t_replay_cache_hit
                        + cost.t_trace_replay_task * local
                        if template_replayed
                        else cost.physical_task_time(launch.domain.volume)
                        * local
                    )
                prof.phase("physical", Stage.PHYSICAL, t_phys,
                           node=node, **attrs)

        # --- execution (functionally; order free for verified launches).
        if cfg.shuffle_intra_launch and safe_order_free:
            executed = list(zip(task_ids, plan_list))
            rt._rng.shuffle(executed)
        else:
            executed = zip(task_ids, plan_list)
        for tid, (node, plan) in executed:
            try:
                fmap.set(
                    plan.task_launch.point,
                    rt._run_task(plan.task_launch, node, regions=plan.regions),
                )
            except InjectedFaultError as exc:
                # Stamp the originating task so the poisoned diagnostics
                # name the real culprit, then let the runtime convert the
                # whole launch to a poisoned FutureMap.
                if exc.task_id is None:
                    exc.task_id = tid
                if exc.point is None and plan.task_launch.point is not None:
                    exc.point = tuple(plan.task_launch.point)
                raise
        return fmap


def resolve_backend(rt, workers: int) -> ExecutionBackend:
    """The backend for ``workers`` (1 = serial; >1 = process pool)."""
    if workers <= 1:
        return SerialBackend(rt)
    from repro.exec.parallel import ParallelBackend

    return ParallelBackend(rt, workers)
