"""Pluggable execution backends (serial and shard-parallel)."""

from repro.exec.backend import ExecutionBackend, SerialBackend, resolve_backend
from repro.exec.pool import (
    active_pool_count,
    get_pool,
    resolve_workers,
    shutdown_pools,
)
from repro.exec.transport import (
    LocalTransport,
    SocketTransport,
    Transport,
    resolve_transport,
)

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ParallelBackend",
    "resolve_backend",
    "get_pool",
    "shutdown_pools",
    "active_pool_count",
    "resolve_workers",
    "Transport",
    "LocalTransport",
    "SocketTransport",
    "resolve_transport",
]


def __getattr__(name):
    if name == "ParallelBackend":  # lazy: pulls in the worker machinery
        from repro.exec.parallel import ParallelBackend

        return ParallelBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
