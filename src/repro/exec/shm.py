"""Zero-copy shared-memory transport for shard footprint data.

Hot-path engine layer 1 (see ``docs/hot-path.md``).  The parallel backend
ships two kinds of bulk array data per shard: *read footprints* (the region
bytes a shard's tasks read, scattered into worker-local storage at install)
and *write-back footprints* (the final bytes a shard's WRITE/READ_WRITE
tasks produced, scattered into parent storage at commit).  Both previously
traveled as pickled numpy arrays inside the plan/result blobs; this module
moves them through per-worker ``multiprocessing.shared_memory`` segments so
the plan and result carry only small descriptors:

* read descriptor (in ``ShardPlan.read_data``)::

      ("shm", region_uid, field, segment, idx_off, count, idx_dtype,
       val_off, val_dtype)

  The parent copies the index array and the values into the segment; the
  worker maps views and scatters ``storage[idx] = vals``.

* write slot (in ``ShardPlan.write_slots``, one entry per (requirement,
  field) in the worker's gather order)::

      (segment, val_off, count, val_dtype)

  The parent pre-computes each write footprint's index array (projection is
  pure, so parent and worker derive identical indices), allocates an
  uninitialized slot, and keeps an ``(uid, field, idx, view)`` record; the
  worker fills the slot with its final bytes instead of pickling them, and
  the parent commits straight from its own view.

Ownership and lifecycle — designed so the PR 5/6 stale-shipment protocol
carries over unchanged:

* Segments are **parent-owned**: created, rewound, and unlinked only by the
  parent.  Workers attach read-only by name and explicitly *unregister*
  the attachment from their resource tracker, so a worker death can never
  reap a live segment.
* Segment names embed the worker index and **generation**
  (``reproshm-<pid>p<pool>w<k>g<gen>-<seq>``).  ``WorkerPool.reset_worker``
  bumps the generation and unlinks the old generation's segments, so a
  zombie process from before a respawn writes into an orphaned mapping —
  exactly the fate of its stale cache shipments.
* Offsets grow monotonically across a dispatch (retries included) and are
  **rewound** only after a successful commit, when every future has been
  collected and no worker can still be writing.  A dispatch abandoned for
  the serial fallback *abandons* (unlinks) the current segments instead:
  an uncollected straggler keeps its orphaned mapping and the next
  dispatch starts on fresh segments.

Fallback: every entry degrades independently to the pickle transport —
object/void dtypes, zero-length footprints, allocation failures, or shm
being unavailable (``REPRO_SHM=0``, ``RuntimeConfig.shm=False``, or no
platform support) simply leave the legacy tuples in place, and the worker
handles both forms unconditionally.  CI exercises both paths.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.profiler import NULL_PROFILER

try:  # pragma: no cover - exercised on every POSIX CI leg
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic platforms only
    _shared_memory = None

__all__ = ["ShmArena", "ShmStats", "shm_env_enabled"]


def shm_env_enabled() -> bool:
    """The ``REPRO_SHM`` gate: unset or ``1`` means on, ``0`` means off."""
    return os.environ.get("REPRO_SHM", "1").strip() != "0"


class ShmStats:
    """Hot-path counters for the shared-memory transport."""

    __slots__ = (
        "read_entries",
        "read_fallbacks",
        "write_slots",
        "write_fallbacks",
        "bytes_staged",
        "bytes_slotted",
        "segments_created",
        "segments_unlinked",
        "rewinds",
        "abandons",
        "teardown_errors",
    )

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class _Segment:
    __slots__ = ("shm", "size", "used")

    def __init__(self, shm, size: int):
        self.shm = shm
        self.size = size
        self.used = 0


_ARENA_COUNTER = [0]

#: Smallest segment; grows geometrically per worker as dispatches demand.
_MIN_SEGMENT = 1 << 16
_ALIGN = 64


class ShmArena:
    """Per-pool allocator of parent-owned shared-memory segments.

    One arena serves one :class:`~repro.exec.pool.WorkerPool`; worker ``k``
    of generation ``g`` draws from segments named for ``(k, g)``.  All
    methods are parent-side only and single-threaded (the backend's
    dispatch loop); ``None`` returns mean "use the pickle fallback for this
    entry" and never raise.
    """

    def __init__(self, n: int):
        self.n = n
        self.available = _shared_memory is not None
        self.stats = ShmStats()
        self._segments: List[List[_Segment]] = [[] for _ in range(n)]
        #: Unlinked but still-mapped segments.  A retired segment may hold
        #: write slots whose parent-side views an in-flight dispatch still
        #: reads at commit (the stale-success-racing-respawn interleaving),
        #: and ``SharedMemory.close()`` does *not* refuse while numpy views
        #: exist — it silently unmaps, and the next segment's mapping can
        #: land at the same address, aliasing the dangling views onto fresh
        #: data.  So retirement only unlinks (frees the name); the mapping
        #: stays open until :meth:`close`, when no dispatch can be alive.
        self._retired: List[_Segment] = []
        self._gens = [0] * n
        self._seq = [0] * n
        _ARENA_COUNTER[0] += 1
        self._tag = f"{os.getpid()}p{_ARENA_COUNTER[0]}"
        #: re-pointed by the owning pool so teardown errors land in the
        #: runtime's trace/metrics stream.
        self.profiler = NULL_PROFILER

    # ------------------------------------------------------------ allocation
    def _alloc(self, k: int, gen: int, nbytes: int):
        """An (segment, offset) slice for ``nbytes``, or None on failure."""
        if not self.available:
            return None
        if gen != self._gens[k]:
            # The pool respawned this worker without telling us (defensive;
            # reset_worker normally calls on_reset first).
            self._drop_worker(k)
            self._gens[k] = gen
        segs = self._segments[k]
        if segs:
            seg = segs[-1]
            offset = (seg.used + _ALIGN - 1) & ~(_ALIGN - 1)
            if offset + nbytes <= seg.size:
                seg.used = offset + nbytes
                return seg, offset
        size = max(
            _MIN_SEGMENT,
            segs[-1].size * 2 if segs else 0,
            1 << max(nbytes - 1, 1).bit_length(),
        )
        name = f"reproshm-{self._tag}w{k}g{gen}-{self._seq[k]}"
        self._seq[k] += 1
        try:
            shm = _shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
        except Exception:
            try:  # name collision with a stale run: retry anonymously
                shm = _shared_memory.SharedMemory(create=True, size=size)
            except Exception:
                self.available = False  # e.g. /dev/shm missing or full
                return None
        seg = _Segment(shm, size)
        segs.append(seg)
        self.stats.segments_created += 1
        seg.used = nbytes
        return seg, 0

    @staticmethod
    def _shippable(arr: np.ndarray) -> bool:
        return arr.dtype.hasobject is False and arr.dtype.kind != "V"

    def view(self, seg: _Segment, offset: int, count: int, dtype):
        return np.ndarray(count, dtype=dtype, buffer=seg.shm.buf, offset=offset)

    # -------------------------------------------------------------- staging
    def stage_read(
        self, k: int, gen: int, uid: int, fname: str,
        idx: np.ndarray, vals: np.ndarray,
    ) -> Optional[tuple]:
        """Copy one read footprint into shm; returns its wire descriptor."""
        if not (self._shippable(idx) and self._shippable(vals)):
            self.stats.read_fallbacks += 1
            return None
        nbytes = idx.nbytes + _ALIGN + vals.nbytes
        slice_ = self._alloc(k, gen, nbytes)
        if slice_ is None:
            self.stats.read_fallbacks += 1
            return None
        seg, idx_off = slice_
        val_off = (idx_off + idx.nbytes + _ALIGN - 1) & ~(_ALIGN - 1)
        self.view(seg, idx_off, len(idx), idx.dtype)[:] = idx
        self.view(seg, val_off, len(vals), vals.dtype)[:] = vals
        self.stats.read_entries += 1
        self.stats.bytes_staged += idx.nbytes + vals.nbytes
        return (
            "shm", uid, fname, seg.shm.name, idx_off, len(idx),
            idx.dtype.str, val_off, vals.dtype.str,
        )

    def alloc_write_slot(
        self, k: int, gen: int, count: int, dtype
    ) -> Optional[Tuple[tuple, np.ndarray]]:
        """An uninitialized gather-back slot: (wire descriptor, parent view)."""
        dtype = np.dtype(dtype)
        if count <= 0 or dtype.hasobject or dtype.kind == "V":
            self.stats.write_fallbacks += 1
            return None
        slice_ = self._alloc(k, gen, count * dtype.itemsize)
        if slice_ is None:
            self.stats.write_fallbacks += 1
            return None
        seg, offset = slice_
        view = self.view(seg, offset, count, dtype)
        self.stats.write_slots += 1
        self.stats.bytes_slotted += count * dtype.itemsize
        return (seg.shm.name, offset, count, dtype.str), view

    # ------------------------------------------------------------ lifecycle
    def _retire(self, seg: _Segment) -> None:
        """Free the segment's *name* now; keep its mapping open.

        Workers unregister their attachments from the (fork-shared)
        resource tracker so a worker death can never reap a live segment —
        which may have removed *our* registration too.  Re-register first
        so unlink()'s internal unregister always balances instead of
        spraying KeyError noise in the tracker process.
        """
        try:
            from multiprocessing import resource_tracker

            resource_tracker.register(seg.shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker impl details vary
            pass
        try:
            seg.shm.unlink()
            self.stats.segments_unlinked += 1
        except Exception as exc:  # pragma: no cover - already gone
            self._note_teardown_error(exc)
        self._retired.append(seg)

    def _note_teardown_error(self, exc: BaseException) -> None:
        """A segment unlink/close failed.  Historically swallowed with a
        bare ``except: pass``; now counted (``stats.teardown_errors``) and
        emitted as an obs instant so shm leaks are diagnosable."""
        self.stats.teardown_errors += 1
        prof = self.profiler
        if prof.enabled:
            prof.count("shm.teardown_errors", 1.0, kind=type(exc).__name__)
            prof.instant("shm.teardown_error", "execution",
                         kind=type(exc).__name__, detail=str(exc))

    def _drop_worker(self, k: int) -> None:
        for seg in self._segments[k]:
            self._retire(seg)
        self._segments[k] = []

    def on_reset(self, k: int, new_gen: int) -> None:
        """Worker respawn: orphan everything its old incarnation could
        still be writing to, and key future segments to the new gen."""
        self._drop_worker(k)
        self._gens[k] = new_gen

    def rewind_all(self) -> None:
        """Reclaim offsets after a committed dispatch (no outstanding
        writers by construction).  Keeps only each worker's newest — and
        largest — segment so steady state settles to one segment each."""
        self.stats.rewinds += 1
        for k in range(self.n):
            segs = self._segments[k]
            for seg in segs[:-1]:
                self._retire(seg)
            del segs[:-1]
            if segs:
                segs[-1].used = 0

    def abandon_all(self) -> None:
        """A dispatch bailed with futures possibly uncollected: these
        offsets can never be trusted again, so retire the segments."""
        self.stats.abandons += 1
        for k in range(self.n):
            self._drop_worker(k)

    def close(self) -> None:
        for k in range(self.n):
            self._drop_worker(k)
        for seg in self._retired:
            try:
                seg.shm.close()
            except Exception as exc:  # pragma: no cover
                self._note_teardown_error(exc)
        self._retired.clear()

    def live_segments(self) -> List[str]:
        """Names of every segment currently linked (leak-test hook)."""
        return [
            seg.shm.name
            for segs in self._segments
            for seg in segs
        ]
