"""Stencil: the PRK 2-D star stencil [30], tiled with halo exchange.

The grid is partitioned into disjoint compute blocks plus an aliased *halo*
partition (each block grown by the stencil radius).  Every time step runs
two foralls:

1. ``stencil_step`` — reads the halo block, accumulates the weighted star
   stencil into the output field over the block's interior points;
2. ``increment`` — adds 1.0 to the input field everywhere (the PRK idiom
   that keeps iterations from being dead code).

Both launches use identity projection functors over disjoint write
partitions, so the app verifies statically — like Circuit, it pays no
dynamic-check cost (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.domain import Domain
from repro.data.collection import Region
from repro.data.partition import Partition, block_partition
from repro.machine.workload import IterationSpec, LaunchSpec
from repro.runtime.runtime import Runtime
from repro.runtime.task import task

__all__ = [
    "StencilConfig",
    "StencilGrid",
    "star_weights",
    "build_stencil",
    "run_stencil",
    "reference_stencil",
    "stencil_iteration",
    "STENCIL_GPU_CELLS_PER_SEC",
]


@dataclass(frozen=True)
class StencilConfig:
    """Problem definition: an ``n x n`` grid cut into ``blocks x blocks`` tiles."""

    n: int = 64
    blocks: Tuple[int, int] = (2, 2)
    radius: int = 2
    steps: int = 4


@dataclass
class StencilGrid:
    config: StencilConfig
    grid: Region
    interior: Partition  # disjoint compute blocks
    halo: Partition      # aliased: blocks grown by the radius


def star_weights(radius: int) -> List[Tuple[int, int, float]]:
    """PRK star-stencil weights: ``(di, dj, w)`` triples."""
    out: List[Tuple[int, int, float]] = []
    for i in range(1, radius + 1):
        w = 1.0 / (2.0 * i * radius)
        out.append((0, i, w))
        out.append((i, 0, w))
        out.append((0, -i, -w))
        out.append((-i, 0, -w))
    return out


def build_stencil(runtime: Runtime, config: StencilConfig) -> StencilGrid:
    """Create the grid region and its interior/halo partitions."""
    if config.n < 2 * config.radius + 1:
        raise ValueError("grid too small for the stencil radius")
    grid = runtime.create_region(
        "stencil_grid", (config.n, config.n), {"input": "f8", "output": "f8"}
    )
    # PRK initial condition: in(i, j) = i + j.
    ii, jj = np.meshgrid(
        np.arange(config.n), np.arange(config.n), indexing="ij"
    )
    grid.field_nd("input")[...] = ii + jj
    interior = block_partition("stencil_blocks", grid, config.blocks)
    halo = block_partition("stencil_halo", grid, config.blocks, halo=config.radius)
    return StencilGrid(config=config, grid=grid, interior=interior, halo=halo)


@task(
    privileges=["reads", "reads writes"],
    fields=[("input",), ("output",)],
    name="stencil_step",
)
def stencil_step(ctx, halo, out, n, radius, weights):
    """Accumulate the star stencil over the block's interior points."""
    hin = halo.read_nd("input")
    bout = out.read_nd("output")
    brect = out.bounds()
    hrect = halo.bounds()
    # The computable window: block points at least `radius` from the grid edge.
    lo0 = max(brect.lo[0], radius)
    lo1 = max(brect.lo[1], radius)
    hi0 = min(brect.hi[0], n - 1 - radius)
    hi1 = min(brect.hi[1], n - 1 - radius)
    if lo0 > hi0 or lo1 > hi1:
        return
    nr = hi0 - lo0 + 1
    nc = hi1 - lo1 + 1
    acc = np.zeros((nr, nc))
    # Offsets of the window inside the halo view.
    r0 = lo0 - hrect.lo[0]
    c0 = lo1 - hrect.lo[1]
    for di, dj, w in weights:
        acc += w * hin[r0 + di : r0 + di + nr, c0 + dj : c0 + dj + nc]
    # Offsets of the window inside the block view.
    b0 = lo0 - brect.lo[0]
    b1 = lo1 - brect.lo[1]
    bout[b0 : b0 + nr, b1 : b1 + nc] += acc


@task(privileges=["reads writes"], fields=[("input",)], name="increment")
def increment(ctx, block):
    """PRK: bump the input field so every iteration does fresh work."""
    view = block.read_nd("input")
    view += 1.0


def run_stencil(runtime: Runtime, grid: StencilGrid,
                steps: Optional[int] = None) -> np.ndarray:
    """Execute through the runtime; returns the final output field (2-D)."""
    cfg = grid.config
    steps = cfg.steps if steps is None else steps
    weights = star_weights(cfg.radius)
    domain = Domain.rect((0, 0), (cfg.blocks[0] - 1, cfg.blocks[1] - 1))
    for _ in range(steps):
        runtime.begin_trace(2001)
        runtime.index_launch(
            stencil_step,
            domain,
            grid.halo,
            grid.interior,
            args=(cfg.n, cfg.radius, weights),
        )
        runtime.index_launch(increment, domain, grid.interior)
        runtime.end_trace(2001)
    return grid.grid.field_nd("output").copy()


def reference_stencil(config: StencilConfig,
                      steps: Optional[int] = None) -> np.ndarray:
    """Serial numpy reference for validation."""
    steps = config.steps if steps is None else steps
    n, r = config.n, config.radius
    ii, jj = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    grid_in = (ii + jj).astype(np.float64)
    grid_out = np.zeros((n, n))
    weights = star_weights(r)
    for _ in range(steps):
        acc = np.zeros((n - 2 * r, n - 2 * r))
        for di, dj, w in weights:
            acc += w * grid_in[r + di : n - r + di, r + dj : n - r + dj]
        grid_out[r : n - r, r : n - r] += acc
        grid_in += 1.0
    return grid_out


# ----------------------------------------------------------------- workload

#: Calibrated GPU throughput for the stencil kernel (cells/s on one
#: P100-class GPU, both phases combined).
STENCIL_GPU_CELLS_PER_SEC = 1.05e10


def stencil_iteration(
    n_nodes: int,
    cells_per_node: float = 9e8,
    overdecompose: int = 1,
    radius: int = 2,
) -> IterationSpec:
    """Workload description of one stencil time step (Figures 7 and 8).

    Halo traffic: four edges of length ``sqrt(cells_per_task)``, ``radius``
    deep, 8 bytes per cell.
    """
    n_tasks = n_nodes * overdecompose
    cells_per_task = cells_per_node / overdecompose
    task_seconds = cells_per_task / STENCIL_GPU_CELLS_PER_SEC
    edge = cells_per_task ** 0.5
    halo_bytes = 4 * edge * radius * 8.0
    launches = [
        LaunchSpec(
            "stencil_step",
            n_tasks,
            task_seconds * 0.8,
            n_args=2,
            comm_bytes_per_task=halo_bytes,
            comm_neighbors=2,
        ),
        LaunchSpec("increment", n_tasks, task_seconds * 0.2, n_args=1),
    ]
    return IterationSpec(
        launches, work_units=float(cells_per_node * n_nodes), name="stencil"
    )
