"""The paper's three evaluation codes (Section 6.1), as mini-apps.

* :mod:`repro.apps.circuit` — unstructured-graph electrical circuit
  simulation with private/shared/ghost dependent partitioning and a
  ``reduces +`` charge-scatter phase.  Trivial (identity) projection
  functors: verified fully statically.
* :mod:`repro.apps.stencil` — 2-D PRK star stencil with disjoint compute
  blocks and an aliased halo partition.  Trivial functors.
* :mod:`repro.apps.soleil` — a mini Soleil-X: fluid + particles + DOM
  radiation sweeps whose diagonal-slice launch domains use non-trivial
  plane-projection functors that only the dynamic check can verify.

Each module provides a functional implementation (numpy-backed regions
through the runtime), a serial reference implementation for validation, and
a workload generator emitting :class:`~repro.machine.workload.IterationSpec`
records for the scaling studies.
"""

from repro.apps import circuit, stencil, soleil

__all__ = ["circuit", "stencil", "soleil"]
