"""The task-graph patterns of Figure 1, as runnable index-launch programs.

The paper's introduction motivates index launches with six common task-graph
shapes: trivial, stencil, FFT, sweep, tree, and unstructured.  This module
builds each pattern against the runtime — so the dependence structure is
produced by the real logical/physical analyses — and validates the computed
values against straightforward serial references.

Each pattern also exercises a different corner of the safety analysis:

* **trivial** — identity functors, statically safe (Figure 1a);
* **stencil** — ping/pong regions with neighbour reads through affine
  functors, statically safe (Figure 1b);
* **fft** — butterfly reads ``i`` and ``i XOR 2^s`` via an opaque functor:
  read-only, so safe regardless (Figure 1c);
* **sweep** — 2-D wavefronts with true diagonal dependencies: one launch
  per anti-diagonal, like the DOM sweeps (Figure 1d);
* **tree** — reduction tree with ``2j`` / ``2j+1`` affine reads per level
  (Figure 1e);
* **unstructured** — a different random permutation functor every step,
  dynamically checked every time (Figure 1f).

Every builder returns a :class:`PatternResult` with the final values, the
matching serial reference, and the launch/task counts used by the
representation-compression benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.core.domain import Domain, Point
from repro.core.projection import AffineFunctor, CallableFunctor, IdentityFunctor
from repro.data.partition import Partition, equal_partition
from repro.runtime.runtime import Runtime
from repro.runtime.task import task

__all__ = [
    "PatternResult",
    "PATTERNS",
    "run_pattern",
    "trivial_pattern",
    "stencil_pattern",
    "fft_pattern",
    "sweep_pattern",
    "tree_pattern",
    "unstructured_pattern",
]


@dataclass
class PatternResult:
    """Outcome of one pattern run."""

    name: str
    values: np.ndarray       # computed through the runtime
    reference: np.ndarray    # serial reference
    launches: int            # foralls issued
    tasks: int               # individual tasks executed

    @property
    def correct(self) -> bool:
        return bool(np.allclose(self.values, self.reference))


def _block_region(rt: Runtime, name: str, width: int, init: np.ndarray):
    region = rt.create_region(name, width, {"v": "f8"})
    region.storage("v")[:] = init
    part = equal_partition(f"{name}_part", region, width)
    return region, part


# ----------------------------------------------------------------- patterns

@task(privileges=["reads writes"], name="pat_bump")
def _bump(ctx, block):
    block.write("v", block.read("v") + 1.0)


def trivial_pattern(rt: Runtime, width: int = 8, steps: int = 4) -> PatternResult:
    """Figure 1a: independent columns of tasks."""
    init = np.arange(float(width))
    region, part = _block_region(rt, "triv", width, init)
    for _ in range(steps):
        rt.index_launch(_bump, width, part)
    return PatternResult(
        "trivial", region.storage("v").copy(), init + steps,
        launches=steps, tasks=steps * width,
    )


@task(privileges=["reads", "reads", "reads", "writes"], name="pat_stencil")
def _stencil3(ctx, left, mid, right, out):
    out.write(
        "v", left.read("v") + mid.read("v") + right.read("v")
    )


def stencil_pattern(rt: Runtime, width: int = 8, steps: int = 3) -> PatternResult:
    """Figure 1b: each task reads its neighbours' previous values.

    Ping/pong regions; neighbour selection through affine functors with
    periodic boundary handled by wrapping the partition index via an opaque
    modular composition — kept affine here by using clamped interior plus
    periodic wrap through ModularFunctor-free means: we simply use periodic
    indexing with (i±1) mod width, which needs a dynamic check and passes.
    """
    from repro.core.projection import ModularFunctor

    init = np.arange(float(width))
    ping, p_ping = _block_region(rt, "sten_a", width, init)
    pong, p_pong = _block_region(rt, "sten_b", width, np.zeros(width))
    ref = init.copy()
    regions = [(ping, p_ping), (pong, p_pong)]
    for s in range(steps):
        (src, p_src), (dst, p_dst) = regions[s % 2], regions[(s + 1) % 2]
        rt.index_launch(
            _stencil3,
            width,
            (p_src, ModularFunctor(width, width - 1)),  # (i - 1) mod width
            p_src,
            (p_src, ModularFunctor(width, 1)),          # (i + 1) mod width
            p_dst,
        )
        ref = np.roll(ref, 1) + ref + np.roll(ref, -1)
    final = regions[steps % 2][0]
    return PatternResult(
        "stencil", final.storage("v").copy(), ref,
        launches=steps, tasks=steps * width,
    )


@task(privileges=["reads", "reads", "writes"], name="pat_butterfly")
def _butterfly(ctx, a, b, out):
    out.write("v", a.read("v") + b.read("v"))


def fft_pattern(rt: Runtime, width: int = 8) -> PatternResult:
    """Figure 1c: butterfly exchanges across log2(width) stages."""
    if width & (width - 1):
        raise ValueError("fft pattern requires a power-of-two width")
    init = np.arange(float(width))
    ping, p_ping = _block_region(rt, "fft_a", width, init)
    pong, p_pong = _block_region(rt, "fft_b", width, np.zeros(width))
    regions = [(ping, p_ping), (pong, p_pong)]
    ref = init.copy()
    stages = width.bit_length() - 1
    for s in range(stages):
        (src, p_src), (dst, p_dst) = regions[s % 2], regions[(s + 1) % 2]
        stride = 1 << s
        partner = CallableFunctor(lambda i, st=stride: i ^ st, name=f"xor{stride}")
        rt.index_launch(
            _butterfly, width, p_src, (p_src, partner), p_dst
        )
        idx = np.arange(width)
        ref = ref[idx] + ref[idx ^ stride]
    final = regions[stages % 2][0]
    return PatternResult(
        "fft", final.storage("v").copy(), ref,
        launches=stages, tasks=stages * width,
    )


@task(privileges=["reads", "reads", "reads writes"], name="pat_sweep_cell")
def _sweep_cell(ctx, up, left, cell):
    cell.write("v", cell.read("v") + up.read("v") + left.read("v"))


def sweep_pattern(rt: Runtime, width: int = 4) -> PatternResult:
    """Figure 1d: a 2-D wavefront sweep, one launch per anti-diagonal.

    Cell (i, j) accumulates its upper and left neighbours; boundary cells
    read a zero ghost row/column.  The launch domains are diagonal slices
    (sparse), exactly like the DOM sweeps in Soleil-X.
    """
    n = width
    grid = rt.create_region("sweep_grid", (n + 1, n + 1), {"v": "f8"})
    # Interior (1..n, 1..n) initialized to 1; ghost row 0 / column 0 zero.
    grid.field_nd("v")[1:, 1:] = 1.0
    from repro.data.partition import block_partition

    cells = block_partition("sweep_cells", grid, (n + 1, n + 1))
    shift_up = CallableFunctor(lambda p: (p[0] - 1, p[1]), output_dim=2,
                               name="up")
    shift_left = CallableFunctor(lambda p: (p[0], p[1] - 1), output_dim=2,
                                 name="left")
    launches = 0
    tasks = 0
    for d in range(2, 2 * n + 1):
        pts = [
            Point(i, d - i)
            for i in range(max(1, d - n), min(n, d - 1) + 1)
        ]
        rt.index_launch(
            _sweep_cell, Domain.points(pts),
            (cells, shift_up), (cells, shift_left), cells,
        )
        launches += 1
        tasks += len(pts)

    ref = np.zeros((n + 1, n + 1))
    ref[1:, 1:] = 1.0
    for i in range(1, n + 1):
        for j in range(1, n + 1):
            ref[i, j] += ref[i - 1, j] + ref[i, j - 1]
    return PatternResult(
        "sweep", grid.field_nd("v").copy().ravel(), ref.ravel(),
        launches=launches, tasks=tasks,
    )


@task(privileges=["reads", "reads", "writes"], name="pat_combine")
def _combine(ctx, left, right, out):
    out.write("v", left.read("v") + right.read("v"))


def tree_pattern(rt: Runtime, width: int = 8) -> PatternResult:
    """Figure 1e: a binary reduction tree via 2j / 2j+1 affine functors."""
    if width & (width - 1):
        raise ValueError("tree pattern requires a power-of-two width")
    init = np.arange(float(width))
    level, p_level = _block_region(rt, "tree_l0", width, init)
    launches = 0
    tasks = 0
    w = width
    k = 0
    while w > 1:
        w //= 2
        k += 1
        nxt, p_nxt = _block_region(rt, f"tree_l{k}", w, np.zeros(w))
        rt.index_launch(
            _combine, w,
            (p_level, AffineFunctor(2, 0)),
            (p_level, AffineFunctor(2, 1)),
            p_nxt,
        )
        launches += 1
        tasks += w
        level, p_level = nxt, p_nxt
    return PatternResult(
        "tree", level.storage("v").copy(), np.array([init.sum()]),
        launches=launches, tasks=tasks,
    )


@task(privileges=["reads", "writes"], name="pat_gather")
def _gather(ctx, src, dst, offset):
    dst.write("v", src.read("v") + offset)


def unstructured_pattern(rt: Runtime, width: int = 8, steps: int = 4,
                         seed: int = 0) -> PatternResult:
    """Figure 1f: a fresh random permutation of blocks every step.

    The permutation selects the *write* destination, so every step's launch
    is statically undecidable and must pass the dynamic self-check (which
    it does — permutations are injective).
    """
    rng = np.random.default_rng(seed)
    init = np.arange(float(width))
    ping, p_ping = _block_region(rt, "unst_a", width, init)
    pong, p_pong = _block_region(rt, "unst_b", width, np.zeros(width))
    regions = [(ping, p_ping), (pong, p_pong)]
    ref = init.copy()
    for s in range(steps):
        perm = rng.permutation(width)
        (src, p_src), (dst, p_dst) = regions[s % 2], regions[(s + 1) % 2]
        functor = CallableFunctor(
            lambda i, perm=perm: int(perm[i]), name=f"perm{s}"
        )
        rt.index_launch(
            _gather, width, p_src, (p_dst, functor), args=(float(s),)
        )
        new_ref = np.empty_like(ref)
        new_ref[perm] = ref + s
        ref = new_ref
    final = regions[steps % 2][0]
    return PatternResult(
        "unstructured", final.storage("v").copy(), ref,
        launches=steps, tasks=steps * width,
    )


PATTERNS: Dict[str, Callable[..., PatternResult]] = {
    "trivial": trivial_pattern,
    "stencil": stencil_pattern,
    "fft": fft_pattern,
    "sweep": sweep_pattern,
    "tree": tree_pattern,
    "unstructured": unstructured_pattern,
}


def run_pattern(name: str, rt: Runtime, **kwargs) -> PatternResult:
    """Build and execute one Figure-1 pattern on the given runtime."""
    if name not in PATTERNS:
        raise KeyError(f"unknown pattern {name!r}; choose from {sorted(PATTERNS)}")
    return PATTERNS[name](rt, **kwargs)
