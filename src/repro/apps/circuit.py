"""Circuit: electrical simulation on an unstructured graph [6].

The canonical Legion demonstration app.  A circuit is a graph of *nodes*
(capacitors to ground) connected by *wires* (resistors).  The graph is
partitioned into pieces; each time step runs three foralls:

1. ``calc_new_currents`` — per piece: each wire's current from the voltage
   difference of its endpoints (reads all nodes the piece's wires touch,
   i.e. the aliased *reachable* partition — safe because read-only).
2. ``distribute_charge`` — per piece: scatter ``I * dt`` charge onto both
   endpoints with a ``reduces +`` privilege (aliased partition again — safe
   because reductions commute).
3. ``update_voltages`` — per piece: integrate charge into voltage on the
   disjoint *owned* node partition.

All projection functors are identity, so (as in the paper) the entire app
is verified statically and pays zero dynamic-check cost.

The module provides the graph generator, the runtime implementation, a pure
numpy serial reference, and the workload generator for Figures 4-6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.domain import Domain
from repro.data.collection import Region
from repro.data.partition import (
    Partition,
    image_partition,
    partition_by_field,
    partition_difference,
)
from repro.machine.workload import IterationSpec, LaunchSpec
from repro.runtime.runtime import Runtime
from repro.runtime.task import task

__all__ = [
    "CircuitConfig",
    "CircuitGraph",
    "build_circuit",
    "run_circuit",
    "reference_circuit",
    "circuit_iteration",
    "CIRCUIT_GPU_WIRES_PER_SEC",
]


@dataclass(frozen=True)
class CircuitConfig:
    """Problem definition for one circuit run."""

    n_pieces: int = 4
    nodes_per_piece: int = 16
    wires_per_piece: int = 24
    pct_wire_in_piece: float = 0.8  # fraction of wires staying intra-piece
    steps: int = 10
    dt: float = 1e-2
    seed: int = 42


@dataclass
class CircuitGraph:
    """Regions and partitions of one circuit instance."""

    config: CircuitConfig
    nodes: Region
    wires: Region
    node_owned: Partition      # disjoint: nodes by owning piece
    node_reachable: Partition  # aliased: nodes touched by a piece's wires
    node_ghost: Partition      # aliased: reachable minus owned
    wire_pieces: Partition     # disjoint: wires by piece
    initial_voltage: np.ndarray = None  # snapshot taken at build time

    @property
    def n_pieces(self) -> int:
        return self.config.n_pieces


def build_circuit(runtime: Runtime, config: CircuitConfig) -> CircuitGraph:
    """Generate a random circuit and its partition hierarchy.

    Wires prefer endpoints inside their own piece
    (``pct_wire_in_piece``); the rest reach into a random other piece,
    creating the shared/ghost structure that makes the app interesting.
    """
    rng = np.random.default_rng(config.seed)
    n_nodes = config.n_pieces * config.nodes_per_piece
    n_wires = config.n_pieces * config.wires_per_piece

    nodes = runtime.create_region(
        "circuit_nodes",
        n_nodes,
        {
            "voltage": "f8",
            "charge": "f8",
            "capacitance": "f8",
            "leakage": "f8",
            "piece": "i8",
        },
    )
    wires = runtime.create_region(
        "circuit_wires",
        n_wires,
        {
            "in_node": "i8",
            "out_node": "i8",
            "resistance": "f8",
            "current": "f8",
            "piece": "i8",
        },
    )

    piece_of_node = np.repeat(np.arange(config.n_pieces), config.nodes_per_piece)
    nodes.storage("piece")[:] = piece_of_node
    nodes.storage("voltage")[:] = rng.uniform(-1.0, 1.0, n_nodes)
    nodes.storage("capacitance")[:] = rng.uniform(1.0, 2.0, n_nodes)
    nodes.storage("leakage")[:] = rng.uniform(0.01, 0.05, n_nodes)

    piece_of_wire = np.repeat(np.arange(config.n_pieces), config.wires_per_piece)
    wires.storage("piece")[:] = piece_of_wire
    in_node = np.empty(n_wires, dtype=np.int64)
    out_node = np.empty(n_wires, dtype=np.int64)
    for w in range(n_wires):
        piece = piece_of_wire[w]
        base = piece * config.nodes_per_piece
        in_node[w] = base + rng.integers(config.nodes_per_piece)
        if rng.random() < config.pct_wire_in_piece or config.n_pieces == 1:
            out_node[w] = base + rng.integers(config.nodes_per_piece)
        else:
            other = int(rng.integers(config.n_pieces - 1))
            if other >= piece:
                other += 1
            out_node[w] = other * config.nodes_per_piece + rng.integers(
                config.nodes_per_piece
            )
    wires.storage("in_node")[:] = in_node
    wires.storage("out_node")[:] = out_node
    wires.storage("resistance")[:] = rng.uniform(1.0, 10.0, n_wires)

    wire_pieces = partition_by_field("wire_pieces", wires, "piece", config.n_pieces)
    node_owned = partition_by_field("node_owned", nodes, "piece", config.n_pieces)
    reach_in = image_partition("reach_in", wire_pieces, "in_node", nodes)
    reach_out = image_partition("reach_out", wire_pieces, "out_node", nodes)
    from repro.data.partition import partition_union

    node_reachable = partition_union("node_reachable", reach_in, reach_out)
    node_ghost = partition_difference("node_ghost", node_reachable, node_owned)

    return CircuitGraph(
        config=config,
        nodes=nodes,
        wires=wires,
        node_owned=node_owned,
        node_reachable=node_reachable,
        node_ghost=node_ghost,
        wire_pieces=wire_pieces,
        initial_voltage=nodes.storage("voltage").copy(),
    )


# --------------------------------------------------------------------- tasks

@task(
    privileges=["reads writes", "reads"],
    fields=[("in_node", "out_node", "resistance", "current"), ("voltage",)],
    name="calc_new_currents",
)
def calc_new_currents(ctx, wires, nodes, dt):
    """Ohm's law per wire: I = (V_in - V_out) / R.

    ``nodes`` is the piece's *reachable* subregion (aliased, read-only).
    Endpoint voltages are gathered by global node id.
    """
    in_node = wires.read("in_node")
    out_node = wires.read("out_node")
    resistance = wires.read("resistance")
    voltage = nodes.read("voltage")
    v_in = voltage[nodes.locate(in_node)]
    v_out = voltage[nodes.locate(out_node)]
    wires.write("current", (v_in - v_out) / resistance)


@task(
    privileges=["reads", "reduces +"],
    fields=[("in_node", "out_node", "current"), ("charge",)],
    name="distribute_charge",
)
def distribute_charge(ctx, wires, nodes, dt):
    """Scatter +/- I*dt onto wire endpoints with a sum reduction."""
    in_node = wires.read("in_node")
    out_node = wires.read("out_node")
    current = wires.read("current")
    contrib = np.zeros(nodes.volume)
    np.add.at(contrib, nodes.locate(in_node), -current * dt)
    np.add.at(contrib, nodes.locate(out_node), current * dt)
    nodes.reduce("charge", contrib)


@task(privileges=["reads writes"], name="update_voltages")
def update_voltages(ctx, nodes):
    """Integrate charge into voltage and decay by leakage; reset charge."""
    voltage = nodes.read("voltage")
    charge = nodes.read("charge")
    capacitance = nodes.read("capacitance")
    leakage = nodes.read("leakage")
    new_voltage = (voltage + charge / capacitance) * (1.0 - leakage)
    nodes.write("voltage", new_voltage)
    nodes.fill("charge", 0.0)


def run_circuit(runtime: Runtime, graph: CircuitGraph,
                steps: Optional[int] = None) -> np.ndarray:
    """Execute the simulation through the runtime; returns final voltages."""
    cfg = graph.config
    steps = cfg.steps if steps is None else steps
    domain = Domain.range(graph.n_pieces)
    runtime.begin_trace(1001)
    runtime.end_trace(1001)
    for _ in range(steps):
        runtime.begin_trace(1002)
        runtime.index_launch(
            calc_new_currents,
            domain,
            graph.wire_pieces,
            graph.node_reachable,
            args=(cfg.dt,),
        )
        runtime.index_launch(
            distribute_charge,
            domain,
            graph.wire_pieces,
            graph.node_reachable,
            args=(cfg.dt,),
        )
        runtime.index_launch(update_voltages, domain, graph.node_owned)
        runtime.end_trace(1002)
    return graph.nodes.storage("voltage").copy()


def reference_circuit(graph: CircuitGraph, steps: Optional[int] = None,
                      voltage: Optional[np.ndarray] = None) -> np.ndarray:
    """Serial numpy reference (no runtime, no partitions) for validation.

    Starts from the graph's build-time voltage snapshot by default, so the
    reference can be computed before or after :func:`run_circuit` mutates
    the regions.
    """
    cfg = graph.config
    steps = cfg.steps if steps is None else steps
    in_node = graph.wires.storage("in_node")
    out_node = graph.wires.storage("out_node")
    resistance = graph.wires.storage("resistance")
    capacitance = graph.nodes.storage("capacitance")
    leakage = graph.nodes.storage("leakage")
    v = (
        graph.initial_voltage.copy()
        if voltage is None
        else voltage.copy()
    )
    for _ in range(steps):
        current = (v[in_node] - v[out_node]) / resistance
        charge = np.zeros_like(v)
        np.add.at(charge, in_node, -current * cfg.dt)
        np.add.at(charge, out_node, current * cfg.dt)
        v = (v + charge / capacitance) * (1.0 - leakage)
    return v


# ----------------------------------------------------------------- workload

#: Calibrated GPU throughput for the wire kernel (wires/s on one P100-class
#: GPU across the three phases of a time step).  Sets single-node
#: performance; the scaling *shapes* come from the runtime cost model.
CIRCUIT_GPU_WIRES_PER_SEC = 5.0e6

#: Bytes exchanged per ghost node update (voltage + charge, 8 B each, plus
#: envelope).
_GHOST_BYTES_PER_NODE = 24.0


def circuit_iteration(
    n_nodes: int,
    wires_per_node: int = 200_000,
    overdecompose: int = 1,
    ghost_fraction: float = 0.05,
) -> IterationSpec:
    """Workload description of one circuit time step for the machine model.

    ``overdecompose`` multiplies the task count per node (Figure 6 uses 10x
    with the same total problem size).  Ghost traffic is proportional to the
    piece surface: ``ghost_fraction`` of each piece's nodes are shared.
    """
    n_tasks = n_nodes * overdecompose
    wires_per_task = wires_per_node / overdecompose
    nodes_per_task = wires_per_task / 4.0  # graph has ~4 wires per node
    task_seconds = wires_per_task / CIRCUIT_GPU_WIRES_PER_SEC
    ghost_bytes = ghost_fraction * nodes_per_task * _GHOST_BYTES_PER_NODE
    launches = [
        LaunchSpec(
            "calc_new_currents",
            n_tasks,
            task_seconds * 0.5,
            n_args=2,
            comm_bytes_per_task=ghost_bytes,
            comm_neighbors=2,
        ),
        LaunchSpec(
            "distribute_charge",
            n_tasks,
            task_seconds * 0.3,
            n_args=2,
            comm_bytes_per_task=ghost_bytes,
            comm_neighbors=2,
        ),
        LaunchSpec("update_voltages", n_tasks, task_seconds * 0.2, n_args=1),
    ]
    return IterationSpec(
        launches, work_units=float(wires_per_node * n_nodes), name="circuit"
    )
