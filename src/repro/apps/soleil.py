"""Mini Soleil-X: fluid + particles + DOM radiation [28] (Section 6.2.3).

Three physics modules over a 3-D grid of tiles:

* **Fluid** — explicit diffusion on a fine cell grid, tiled with 3-D halo
  partitions (identity functors, statically verified).
* **Particles** — per-tile particle ensembles that relax toward the local
  fluid temperature and deposit heat back via a ``reduces +`` coupling.
  The particle launches map a 1-D tile index to the 3-D fluid tile colors
  through an opaque delinearization functor — statically unanalyzable, so
  the hybrid analysis emits a dynamic self-check.
* **DOM radiation** — discrete-ordinates sweeps, one per octant.  Each
  wavefront is an index launch over a *diagonal slice* of the tile grid
  ``{(tx,ty,tz) : u(tx)+v(ty)+w(tz) = d}``, whose projection functors
  project the 3-D slice onto the 2-D exchange planes (xy / yz / xz faces).
  "This projection is safe only when the launch domain contains no
  duplicate (x,y), (y,z) or (x,z) pairs.  While it could be challenging for
  a static compiler to verify that no duplicate pairs exist, a dynamic
  check can verify this trivially." — exactly what this module exercises.

A serial numpy reference (:func:`reference_soleil`) validates the runtime
execution bit-for-bit, and :func:`soleil_iteration` emits the workload for
Figures 9 and 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.domain import Domain, Point
from repro.core.projection import CallableFunctor, PlaneProjectionFunctor
from repro.data.collection import Region
from repro.data.partition import Partition, block_partition, partition_by_field
from repro.machine.workload import IterationSpec, LaunchSpec
from repro.runtime.runtime import Runtime
from repro.runtime.task import task

__all__ = [
    "SoleilConfig",
    "SoleilState",
    "build_soleil",
    "run_soleil",
    "reference_soleil",
    "soleil_iteration",
    "sweep_wavefronts",
    "OCTANTS",
]

#: The eight sweep directions: sign of travel along each axis.
OCTANTS: Tuple[Tuple[int, int, int], ...] = tuple(
    (sx, sy, sz)
    for sx in (1, -1)
    for sy in (1, -1)
    for sz in (1, -1)
)


@dataclass(frozen=True)
class SoleilConfig:
    """Problem definition for one mini Soleil-X run."""

    tiles: Tuple[int, int, int] = (2, 2, 2)
    cells_per_tile: Tuple[int, int, int] = (4, 4, 4)
    particles_per_tile: int = 8
    steps: int = 2
    dt: float = 0.05
    alpha: float = 0.08          # fluid diffusivity
    sigma: float = 0.35          # radiation absorption per tile transit
    boundary_intensity: float = 1.0
    emission_coupling: float = 0.4
    radiation_heating: float = 0.02
    particle_coupling: float = 0.1
    seed: int = 7

    @property
    def n_tiles(self) -> int:
        return self.tiles[0] * self.tiles[1] * self.tiles[2]

    @property
    def grid_shape(self) -> Tuple[int, int, int]:
        return tuple(t * c for t, c in zip(self.tiles, self.cells_per_tile))


@dataclass
class SoleilState:
    """Regions and partitions of one instance."""

    config: SoleilConfig
    fluid: Region
    fluid_tiles: Partition
    fluid_halo: Partition
    particles: Region
    particle_tiles: Partition
    rad: Region            # tile-granularity radiation state
    rad_tiles: Partition
    faces_xy: Region       # flux crossing z-faces, indexed (tx, ty)
    faces_yz: Region       # flux crossing x-faces, indexed (ty, tz)
    faces_xz: Region       # flux crossing y-faces, indexed (tx, tz)
    fxy_part: Partition
    fyz_part: Partition
    fxz_part: Partition
    delinearize: CallableFunctor


def build_soleil(runtime: Runtime, config: SoleilConfig) -> SoleilState:
    """Create all regions/partitions and deterministic initial conditions."""
    ntx, nty, ntz = config.tiles
    rng = np.random.default_rng(config.seed)

    fluid = runtime.create_region(
        "soleil_fluid", config.grid_shape, {"temp": "f8", "temp_new": "f8"}
    )
    gx, gy, gz = config.grid_shape
    x = np.linspace(0, 1, gx)[:, None, None]
    y = np.linspace(0, 1, gy)[None, :, None]
    z = np.linspace(0, 1, gz)[None, None, :]
    fluid.field_nd("temp")[...] = (
        1.0 + 0.5 * np.sin(2 * np.pi * x) * np.cos(np.pi * y) + 0.25 * z
    )
    fluid_tiles = block_partition("fluid_tiles", fluid, config.tiles)
    fluid_halo = block_partition("fluid_halo", fluid, config.tiles, halo=1)

    n_parts = config.n_tiles * config.particles_per_tile
    particles = runtime.create_region(
        "soleil_particles", n_parts, {"temp": "f8", "weight": "f8", "tile": "i8"}
    )
    particles.storage("tile")[:] = np.repeat(
        np.arange(config.n_tiles), config.particles_per_tile
    )
    particles.storage("temp")[:] = rng.uniform(0.5, 1.5, n_parts)
    particles.storage("weight")[:] = rng.uniform(0.8, 1.2, n_parts)
    particle_tiles = partition_by_field(
        "particle_tiles", particles, "tile", config.n_tiles
    )

    rad = runtime.create_region(
        "soleil_rad", config.tiles, {"sigma": "f8", "emit": "f8", "energy": "f8"}
    )
    rad.fill("sigma", config.sigma)
    rad_tiles = block_partition("rad_tiles", rad, config.tiles)

    faces_xy = runtime.create_region("faces_xy", (ntx, nty), {"flux": "f8"})
    faces_yz = runtime.create_region("faces_yz", (nty, ntz), {"flux": "f8"})
    faces_xz = runtime.create_region("faces_xz", (ntx, ntz), {"flux": "f8"})
    fxy_part = block_partition("fxy", faces_xy, (ntx, nty))
    fyz_part = block_partition("fyz", faces_yz, (nty, ntz))
    fxz_part = block_partition("fxz", faces_xz, (ntx, ntz))

    def _delin(i: int) -> Tuple[int, int, int]:
        return (i // (nty * ntz), (i // ntz) % nty, i % ntz)

    delinearize = CallableFunctor(_delin, output_dim=3, name="tile_of")

    return SoleilState(
        config=config,
        fluid=fluid,
        fluid_tiles=fluid_tiles,
        fluid_halo=fluid_halo,
        particles=particles,
        particle_tiles=particle_tiles,
        rad=rad,
        rad_tiles=rad_tiles,
        faces_xy=faces_xy,
        faces_yz=faces_yz,
        faces_xz=faces_xz,
        fxy_part=fxy_part,
        fyz_part=fyz_part,
        fxz_part=fxz_part,
        delinearize=delinearize,
    )


def sweep_wavefronts(
    tiles: Tuple[int, int, int], octant: Tuple[int, int, int]
) -> List[List[Point]]:
    """The diagonal slices of one octant's sweep, in dependence order.

    For octant signs ``(sx, sy, sz)``, a tile's sweep coordinate along axis
    a is its index when the sign is +1, or the mirrored index otherwise;
    wavefront ``d`` contains the tiles whose coordinates sum to ``d``.
    """
    ntx, nty, ntz = tiles
    sx, sy, sz = octant
    fronts: List[List[Point]] = [
        [] for _ in range(ntx + nty + ntz - 2)
    ]
    for tx in range(ntx):
        for ty in range(nty):
            for tz in range(ntz):
                u = tx if sx > 0 else ntx - 1 - tx
                v = ty if sy > 0 else nty - 1 - ty
                w = tz if sz > 0 else ntz - 1 - tz
                fronts[u + v + w].append(Point(tx, ty, tz))
    return fronts


# --------------------------------------------------------------------- tasks

@task(
    privileges=["reads", "reads writes"],
    fields=[("temp",), ("temp_new",)],
    name="fluid_diffuse",
)
def fluid_diffuse(ctx, halo, tile, alpha, shape):
    """Explicit 6-neighbour diffusion on the tile's cells.

    Reads field ``temp`` through the aliased halo block (which contains the
    tile itself), writes field ``temp_new`` through the disjoint tile block
    — disjoint field sets, so the launch is non-interfering and verified
    statically despite both partitions covering the same region.
    """
    hin = halo.read_nd("temp")
    out = tile.read_nd("temp_new")
    trect = tile.bounds()
    hrect = halo.bounds()
    gx, gy, gz = shape
    # The tile's own temp, viewed through the halo block.
    ob = [trect.lo[d] - hrect.lo[d] for d in range(3)]
    ext = [trect.hi[d] - trect.lo[d] + 1 for d in range(3)]
    own = hin[ob[0] : ob[0] + ext[0], ob[1] : ob[1] + ext[1],
              ob[2] : ob[2] + ext[2]]
    out[...] = own  # boundary cells keep their value
    lo = [max(trect.lo[d], 1) for d in range(3)]
    hi = [min(trect.hi[d], s - 2) for d, s in enumerate((gx, gy, gz))]
    if any(l > h for l, h in zip(lo, hi)):
        return
    n = [h - l + 1 for l, h in zip(lo, hi)]
    o = [l - hrect.lo[d] for d, l in enumerate(lo)]  # window origin in halo
    center = hin[o[0] : o[0] + n[0], o[1] : o[1] + n[1], o[2] : o[2] + n[2]]
    lap = -6.0 * center
    for axis in range(3):
        for s in (-1, 1):
            sl = [slice(o[0], o[0] + n[0]), slice(o[1], o[1] + n[1]),
                  slice(o[2], o[2] + n[2])]
            sl[axis] = slice(o[axis] + s, o[axis] + s + n[axis])
            lap = lap + hin[tuple(sl)]
    b = [l - trect.lo[d] for d, l in enumerate(lo)]   # window origin in tile
    out[b[0] : b[0] + n[0], b[1] : b[1] + n[1], b[2] : b[2] + n[2]] = (
        center + alpha * lap
    )


@task(privileges=["reads writes"], name="fluid_flip")
def fluid_flip(ctx, tile):
    """Commit the diffusion step: temp <- temp_new."""
    tile.read_nd("temp")[...] = tile.read_nd("temp_new")


@task(
    privileges=["reads", "writes"],
    fields=[("temp",), ("emit",)],
    name="compute_emission",
)
def compute_emission(ctx, fluid_tile, rad_tile, coupling):
    """Tile emission source from the mean fluid temperature."""
    rad_tile.write("emit", [coupling * float(fluid_tile.read("temp").mean())])


@task(
    privileges=["reads writes", "reads"],
    fields=[("temp",), ("temp",)],
    name="particle_advance",
)
def particle_advance(ctx, parts, fluid_tile, dt):
    """Relax each particle's temperature toward the tile's mean."""
    mean = float(fluid_tile.read("temp").mean())
    temp = parts.read("temp")
    parts.write("temp", temp + dt * (mean - temp))


@task(
    privileges=["reads", "reduces +"],
    fields=[("temp", "weight"), ("temp",)],
    name="particle_deposit",
)
def particle_deposit(ctx, parts, fluid_tile, coupling):
    """Deposit the ensemble's excess heat uniformly over the tile's cells."""
    temp = parts.read("temp")
    weight = parts.read("weight")
    excess = float((weight * (temp - 1.0)).sum())
    ncells = fluid_tile.volume
    fluid_tile.reduce("temp", np.full(ncells, coupling * excess / ncells))


@task(
    privileges=["reads writes", "reads writes", "reads writes", "reads writes"],
    name="dom_sweep",
)
def dom_sweep(ctx, rad_tile, fxy, fyz, fxz, octant):
    """One tile of a DOM wavefront: absorb incoming flux, emit, pass on.

    The three face accessors hold this tile's exchange-plane entries; the
    wavefront ordering guarantees the upstream tile has already written its
    outgoing flux into the same entries.
    """
    sigma = float(rad_tile.read("sigma")[0])
    emit = float(rad_tile.read("emit")[0])
    transmit = math.exp(-sigma)
    source = emit * (1.0 - transmit)
    fin_x = float(fyz.read("flux")[0])
    fin_y = float(fxz.read("flux")[0])
    fin_z = float(fxy.read("flux")[0])
    total_in = fin_x + fin_y + fin_z
    absorbed = total_in * (1.0 - transmit)
    energy = float(rad_tile.read("energy")[0])
    rad_tile.write("energy", [energy + absorbed])
    fyz.write("flux", [fin_x * transmit + source])
    fxz.write("flux", [fin_y * transmit + source])
    fxy.write("flux", [fin_z * transmit + source])


@task(privileges=["writes"], name="init_faces")
def init_faces(ctx, faces, intensity):
    """Reset an exchange plane to the boundary intensity (sweep start)."""
    faces.fill("flux", intensity)


@task(
    privileges=["reads writes", "reads writes"],
    fields=[("temp",), ("energy",)],
    name="absorb_radiation",
)
def absorb_radiation(ctx, fluid_tile, rad_tile, heating):
    """Couple accumulated radiation energy back into the fluid; reset it."""
    energy = float(rad_tile.read("energy")[0])
    temp = fluid_tile.read("temp")
    fluid_tile.write("temp", temp + heating * energy / fluid_tile.volume)
    rad_tile.write("energy", [0.0])


# ------------------------------------------------------------------- driver

def run_soleil(
    runtime: Runtime,
    state: SoleilState,
    steps: Optional[int] = None,
    radiation: bool = True,
    particles: bool = True,
) -> Dict[str, np.ndarray]:
    """Execute the multi-physics loop; returns final fields for validation."""
    cfg = state.config
    steps = cfg.steps if steps is None else steps
    tile_domain = Domain.rect((0, 0, 0), tuple(t - 1 for t in cfg.tiles))
    part_domain = Domain.range(cfg.n_tiles)
    proj_xy = PlaneProjectionFunctor([0, 1])
    proj_yz = PlaneProjectionFunctor([1, 2])
    proj_xz = PlaneProjectionFunctor([0, 2])

    for _ in range(steps):
        runtime.begin_trace(3001)
        # --- fluid
        runtime.index_launch(
            fluid_diffuse,
            tile_domain,
            state.fluid_halo,
            state.fluid_tiles,
            args=(cfg.alpha, cfg.grid_shape),
        )
        runtime.index_launch(fluid_flip, tile_domain, state.fluid_tiles)

        # --- particles (1-D tile ids -> 3-D tile colors: opaque functor)
        if particles:
            runtime.index_launch(
                particle_advance,
                part_domain,
                state.particle_tiles,
                (state.fluid_tiles, state.delinearize),
                args=(cfg.dt,),
            )
            runtime.index_launch(
                particle_deposit,
                part_domain,
                state.particle_tiles,
                (state.fluid_tiles, state.delinearize),
                args=(cfg.particle_coupling,),
            )

        # --- radiation (DOM sweeps with non-trivial projection functors)
        if radiation:
            runtime.index_launch(
                compute_emission,
                tile_domain,
                state.fluid_tiles,
                state.rad_tiles,
                args=(cfg.emission_coupling,),
            )
            for octant in OCTANTS:
                runtime.execute_task(
                    init_faces, state.faces_xy, args=(cfg.boundary_intensity,)
                )
                runtime.execute_task(
                    init_faces, state.faces_yz, args=(cfg.boundary_intensity,)
                )
                runtime.execute_task(
                    init_faces, state.faces_xz, args=(cfg.boundary_intensity,)
                )
                for front in sweep_wavefronts(cfg.tiles, octant):
                    runtime.index_launch(
                        dom_sweep,
                        Domain.points(front),
                        state.rad_tiles,
                        (state.fxy_part, proj_xy),
                        (state.fyz_part, proj_yz),
                        (state.fxz_part, proj_xz),
                        args=(octant,),
                    )
            runtime.index_launch(
                absorb_radiation,
                tile_domain,
                state.fluid_tiles,
                state.rad_tiles,
                args=(cfg.radiation_heating,),
            )
        runtime.end_trace(3001)

    return {
        "temp": state.fluid.field_nd("temp").copy(),
        "particle_temp": state.particles.storage("temp").copy(),
        "rad_emit": state.rad.field_nd("emit").copy(),
    }


# ---------------------------------------------------------------- reference

def reference_soleil(
    config: SoleilConfig,
    steps: Optional[int] = None,
    radiation: bool = True,
    particles: bool = True,
) -> Dict[str, np.ndarray]:
    """Serial numpy implementation of the identical physics."""
    cfg = config
    steps = cfg.steps if steps is None else steps
    ntx, nty, ntz = cfg.tiles
    cx, cy, cz = cfg.cells_per_tile
    gx, gy, gz = cfg.grid_shape
    rng = np.random.default_rng(cfg.seed)

    x = np.linspace(0, 1, gx)[:, None, None]
    y = np.linspace(0, 1, gy)[None, :, None]
    z = np.linspace(0, 1, gz)[None, None, :]
    temp = 1.0 + 0.5 * np.sin(2 * np.pi * x) * np.cos(np.pi * y) + 0.25 * z

    n_parts = cfg.n_tiles * cfg.particles_per_tile
    p_tile = np.repeat(np.arange(cfg.n_tiles), cfg.particles_per_tile)
    p_temp = rng.uniform(0.5, 1.5, n_parts)
    p_weight = rng.uniform(0.8, 1.2, n_parts)

    emit = np.zeros(cfg.tiles)
    energy = np.zeros(cfg.tiles)

    def tile_slice(t):
        tx, ty, tz = t
        return (
            slice(tx * cx, (tx + 1) * cx),
            slice(ty * cy, (ty + 1) * cy),
            slice(tz * cz, (tz + 1) * cz),
        )

    for _ in range(steps):
        # fluid diffusion (interior only)
        new = temp.copy()
        lap = (
            temp[:-2, 1:-1, 1:-1] + temp[2:, 1:-1, 1:-1]
            + temp[1:-1, :-2, 1:-1] + temp[1:-1, 2:, 1:-1]
            + temp[1:-1, 1:-1, :-2] + temp[1:-1, 1:-1, 2:]
            - 6.0 * temp[1:-1, 1:-1, 1:-1]
        )
        new[1:-1, 1:-1, 1:-1] = temp[1:-1, 1:-1, 1:-1] + cfg.alpha * lap
        temp = new

        if particles:
            for t in range(cfg.n_tiles):
                tx, ty, tz = t // (nty * ntz), (t // ntz) % nty, t % ntz
                sl = tile_slice((tx, ty, tz))
                mean = temp[sl].mean()
                mask = p_tile == t
                p_temp[mask] += cfg.dt * (mean - p_temp[mask])
            for t in range(cfg.n_tiles):
                tx, ty, tz = t // (nty * ntz), (t // ntz) % nty, t % ntz
                sl = tile_slice((tx, ty, tz))
                mask = p_tile == t
                excess = (p_weight[mask] * (p_temp[mask] - 1.0)).sum()
                temp[sl] += cfg.particle_coupling * excess / (cx * cy * cz)

        if radiation:
            for tx in range(ntx):
                for ty in range(nty):
                    for tz in range(ntz):
                        sl = tile_slice((tx, ty, tz))
                        emit[tx, ty, tz] = cfg.emission_coupling * temp[sl].mean()
            transmit = math.exp(-cfg.sigma)
            for octant in OCTANTS:
                fxy = np.full((ntx, nty), cfg.boundary_intensity)
                fyz = np.full((nty, ntz), cfg.boundary_intensity)
                fxz = np.full((ntx, ntz), cfg.boundary_intensity)
                for front in sweep_wavefronts(cfg.tiles, octant):
                    for (tx, ty, tz) in front:
                        source = emit[tx, ty, tz] * (1.0 - transmit)
                        fin = fyz[ty, tz] + fxz[tx, tz] + fxy[tx, ty]
                        energy[tx, ty, tz] += fin * (1.0 - transmit)
                        fyz[ty, tz] = fyz[ty, tz] * transmit + source
                        fxz[tx, tz] = fxz[tx, tz] * transmit + source
                        fxy[tx, ty] = fxy[tx, ty] * transmit + source
            for tx in range(ntx):
                for ty in range(nty):
                    for tz in range(ntz):
                        sl = tile_slice((tx, ty, tz))
                        temp[sl] += (
                            cfg.radiation_heating
                            * energy[tx, ty, tz] / (cx * cy * cz)
                        )
                        energy[tx, ty, tz] = 0.0

    return {"temp": temp, "particle_temp": p_temp, "rad_emit": emit.copy()}


# ----------------------------------------------------------------- workload

#: Fluid cell updates per second on one P100-class GPU (all fluid phases).
SOLEIL_GPU_CELLS_PER_SEC = 2.4e8
#: Particle updates per second on one GPU.
SOLEIL_GPU_PARTICLES_PER_SEC = 5.0e7
#: DOM tile-sweep tasks per second on one GPU (per wavefront task).
SOLEIL_DOM_TASK_SECONDS = 4.5e-4


def _near_cubic_factors(n: int) -> Tuple[int, int, int]:
    """Factor ``n`` into three near-equal integers (a*b*c == n exactly)."""
    best = (n, 1, 1)
    best_spread = n - 1
    a = 1
    while a * a * a <= n:
        if n % a == 0:
            m = n // a
            b = a
            while b * b <= m:
                if m % b == 0:
                    c = m // b
                    spread = c - a
                    if spread < best_spread:
                        best_spread = spread
                        best = (c, b, a)
                b += 1
        a += 1
    return best


def _tile_node(point: Point, tiles: Tuple[int, int, int], n_nodes: int) -> int:
    ntx, nty, ntz = tiles
    linear = (point[0] * nty + point[1]) * ntz + point[2]
    total = ntx * nty * ntz
    return min(linear * n_nodes // total, n_nodes - 1)


def soleil_iteration(
    n_nodes: int,
    fluid_only: bool = False,
    cells_per_node: Optional[float] = None,
    particles_per_node: float = 2e5,
    checks: bool = True,
) -> IterationSpec:
    """Workload description of one Soleil-X time step (Figures 9 and 10).

    With ``fluid_only`` the step is forall-style throughout and weak-scales
    well; the full configuration adds particle coupling and the 8-octant DOM
    sweep, whose wavefront launches have limited parallelism and chained
    dependencies — the inherent scaling limit the paper notes.  DOM launches
    carry ``needs_dynamic_check`` so the cost model charges (or elides) the
    hybrid analysis's dynamic component.

    Per-node grids default to the sizes that calibrate single-node rates to
    the paper's axes (~3.2 iter/s fluid-only, ~10 iter/s full); Figures 9
    and 10 used different per-node problem sizes.
    """
    if cells_per_node is None:
        cells_per_node = 7.3e7 if fluid_only else 1.28e7
    launches: List[LaunchSpec] = []
    fluid_task_seconds = cells_per_node / SOLEIL_GPU_CELLS_PER_SEC
    face_bytes = (cells_per_node ** (2.0 / 3.0)) * 8.0
    # A Soleil-X time step runs many fluid kernels (RK substages, gradients,
    # fluxes, boundary conditions); model 12 foralls, four of which end in a
    # 3-D halo exchange with the six face neighbours.
    n_fluid_launches = 12
    for k in range(n_fluid_launches):
        exchanges = k % 3 == 2
        launches.append(
            LaunchSpec(
                f"fluid_{k}",
                n_nodes,
                fluid_task_seconds / n_fluid_launches,
                n_args=2,
                comm_bytes_per_task=face_bytes if exchanges else 0.0,
                comm_neighbors=6 if exchanges else 0,
            )
        )
    if not fluid_only:
        part_seconds = particles_per_node / SOLEIL_GPU_PARTICLES_PER_SEC
        launches.append(
            LaunchSpec(
                "particle_advance", n_nodes, part_seconds * 0.6, n_args=2,
                needs_dynamic_check=True, check_args=1,
            )
        )
        launches.append(
            LaunchSpec(
                "particle_deposit", n_nodes, part_seconds * 0.4, n_args=2,
                needs_dynamic_check=True, check_args=1,
            )
        )
        # DOM sweeps: tiles == nodes (one tile per node), 8 octants of
        # wavefront launches with chained dependencies.
        tiles = _near_cubic_factors(n_nodes)
        for octant in OCTANTS:
            for front in sweep_wavefronts(tiles, octant):
                if not front:
                    continue
                counts: Dict[int, int] = {}
                for p in front:
                    node = _tile_node(p, tiles, n_nodes)
                    counts[node] = counts.get(node, 0) + 1
                launches.append(
                    LaunchSpec(
                        f"dom_sweep_{octant}",
                        n_tasks=len(front),
                        task_seconds=SOLEIL_DOM_TASK_SECONDS,
                        n_args=4,
                        partition_size=tiles[0] * tiles[1] * tiles[2],
                        needs_dynamic_check=checks,
                        check_args=3,
                        comm_bytes_per_task=3 * 8.0,
                        comm_neighbors=3,
                        node_assignment=tuple(sorted(counts.items())),
                    )
                )
    return IterationSpec(launches, work_units=1.0, name="soleil")
