"""repro — a Python reproduction of "Index Launches: Scalable, Flexible
Representation of Parallel Task Groups" (Soi et al., SC '21).

Quick access to the common entry points::

    from repro import Runtime, RuntimeConfig, task, Domain
    from repro.data.partition import equal_partition

See README.md for the full tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from repro.core.domain import Domain, Point, Rect
from repro.core.projection import (
    AffineFunctor,
    CallableFunctor,
    ConstantFunctor,
    IdentityFunctor,
    ModularFunctor,
    PlaneProjectionFunctor,
)
from repro.runtime import Runtime, RuntimeConfig, task

__version__ = "1.0.0"

__all__ = [
    "Domain",
    "Point",
    "Rect",
    "AffineFunctor",
    "CallableFunctor",
    "ConstantFunctor",
    "IdentityFunctor",
    "ModularFunctor",
    "PlaneProjectionFunctor",
    "Runtime",
    "RuntimeConfig",
    "task",
    "__version__",
]
