"""Canonical definitions of the paper's figures (Section 6).

One function per figure, each returning a :class:`FigureSpec` holding the
computed series and presentation metadata.  Both the benchmark suite
(``benchmarks/test_fig*.py``) and the CLI (``python -m repro``) drive the
figures through these functions, so the experiment definitions live in
exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.apps.circuit import circuit_iteration
from repro.apps.soleil import soleil_iteration
from repro.apps.stencil import stencil_iteration
from repro.bench.harness import (
    ScalingResult,
    run_scaling,
    strong_scaling_nodes,
    weak_scaling_nodes,
)
from repro.machine.costmodel import CostModel

__all__ = ["FigureSpec", "FIGURES", "run_figure"]


@dataclass
class FigureSpec:
    """A computed figure: series plus how the paper presents them."""

    name: str
    title: str
    results: List[ScalingResult]
    metric: str
    unit_scale: float
    unit_label: str


def fig4(max_nodes: int = 512, cost: Optional[CostModel] = None) -> FigureSpec:
    """Circuit strong scaling: 5.1e6 wires total."""
    results = run_scaling(
        lambda n: circuit_iteration(n, wires_per_node=5_100_000 // n),
        strong_scaling_nodes(max_nodes),
        cost=cost,
    )
    return FigureSpec(
        "fig4_circuit_strong", "Figure 4: Circuit strong scaling",
        results, "throughput", 1e6, "10^6 wires/s",
    )


def fig5(max_nodes: int = 1024, cost: Optional[CostModel] = None) -> FigureSpec:
    """Circuit weak scaling: 2e5 wires per node."""
    results = run_scaling(
        lambda n: circuit_iteration(n, wires_per_node=200_000),
        weak_scaling_nodes(max_nodes),
        cost=cost,
    )
    return FigureSpec(
        "fig5_circuit_weak", "Figure 5: Circuit weak scaling",
        results, "throughput_per_node", 1e6, "10^6 wires/s per node",
    )


def fig6(max_nodes: int = 1024, cost: Optional[CostModel] = None) -> FigureSpec:
    """Circuit weak scaling, 10x overdecomposed, tracing disabled."""
    results = run_scaling(
        lambda n: circuit_iteration(n, wires_per_node=200_000,
                                    overdecompose=10),
        weak_scaling_nodes(max_nodes),
        tracing=False,
        cost=cost,
    )
    return FigureSpec(
        "fig6_circuit_weak_overdecomposed",
        "Figure 6: Circuit weak scaling, overdecomposed, no tracing",
        results, "throughput_per_node", 1e6, "10^6 wires/s per node",
    )


def fig7(max_nodes: int = 512, cost: Optional[CostModel] = None) -> FigureSpec:
    """Stencil strong scaling: 9e8 cells total."""
    results = run_scaling(
        lambda n: stencil_iteration(n, cells_per_node=9e8 / n),
        strong_scaling_nodes(max_nodes),
        cost=cost,
    )
    return FigureSpec(
        "fig7_stencil_strong", "Figure 7: Stencil strong scaling",
        results, "throughput", 1e9, "10^9 cells/s",
    )


def fig8(max_nodes: int = 1024, cost: Optional[CostModel] = None) -> FigureSpec:
    """Stencil weak scaling: 9e8 cells per node."""
    results = run_scaling(
        lambda n: stencil_iteration(n, cells_per_node=9e8),
        weak_scaling_nodes(max_nodes),
        cost=cost,
    )
    return FigureSpec(
        "fig8_stencil_weak", "Figure 8: Stencil weak scaling",
        results, "throughput_per_node", 1e9, "10^9 cells/s per node",
    )


def fig9(max_nodes: int = 512, cost: Optional[CostModel] = None) -> FigureSpec:
    """Soleil-X fluid-only weak scaling (DCR configurations only)."""
    results = run_scaling(
        lambda n: soleil_iteration(n, fluid_only=True),
        weak_scaling_nodes(max_nodes),
        configs=[(True, True), (True, False)],
        cost=cost,
    )
    return FigureSpec(
        "fig9_soleil_fluid_weak",
        "Figure 9: Soleil-X (fluid-only) weak scaling",
        results, "throughput", 1.0, "iter/s",
    )


def fig10(max_nodes: int = 32, cost: Optional[CostModel] = None) -> FigureSpec:
    """Soleil-X full weak scaling: check vs no-check vs No-IDX."""
    nodes = weak_scaling_nodes(max_nodes)
    with_check = run_scaling(
        lambda n: soleil_iteration(n), nodes,
        configs=[(True, True)], checks=True, cost=cost,
    )
    with_check[0].label = "DCR, IDX (dynamic check)"
    no_check = run_scaling(
        lambda n: soleil_iteration(n, checks=False), nodes,
        configs=[(True, True)], checks=False, cost=cost,
    )
    no_idx = run_scaling(
        lambda n: soleil_iteration(n), nodes, configs=[(True, False)],
        cost=cost,
    )
    return FigureSpec(
        "fig10_soleil_full_weak",
        "Figure 10: Soleil-X (fluid, particles, DOM) weak scaling",
        with_check + no_check + no_idx, "throughput", 1.0, "iter/s",
    )


FIGURES: Dict[str, Callable[..., FigureSpec]] = {
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
}


def run_figure(name: str, max_nodes: Optional[int] = None) -> FigureSpec:
    """Run one figure by name (``fig4`` .. ``fig10``)."""
    if name not in FIGURES:
        raise KeyError(f"unknown figure {name!r}; choose from {sorted(FIGURES)}")
    if max_nodes is None:
        return FIGURES[name]()
    return FIGURES[name](max_nodes=max_nodes)
