"""ASCII rendering of scaling figures (no plotting dependencies).

Renders the paper-style log-x scaling series as terminal plots so a
reproduction run can be inspected without matplotlib.  Supports linear and
log y axes (the paper's strong-scaling figures are log-log; the weak-
scaling ones are linear-y).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.bench.harness import ScalingResult

__all__ = ["ascii_plot"]

_MARKERS = "*o+x#@%&"


def _format_val(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000 or abs(v) < 0.01:
        return f"{v:.1e}"
    return f"{v:.2f}"


def ascii_plot(
    results: Sequence[ScalingResult],
    metric: str = "throughput",
    unit_scale: float = 1.0,
    title: str = "",
    width: int = 60,
    height: int = 18,
    logy: bool = False,
) -> str:
    """Render series as an ASCII chart with a log-2 x axis (node counts).

    Each series gets a marker; collisions show the later series' marker.
    Returns the chart as a string (caller prints/saves it).
    """
    if not results:
        raise ValueError("no series to plot")
    nodes = results[0].nodes
    for r in results:
        if r.nodes != nodes:
            raise ValueError("all series must share the node axis")
    series = [
        [getattr(r, metric)[i] / unit_scale for i in range(len(nodes))]
        for r in results
    ]
    flat = [v for s in series for v in s]
    lo, hi = min(flat), max(flat)
    if logy:
        if lo <= 0:
            raise ValueError("log y-axis requires positive values")
        lo, hi = math.log10(lo), math.log10(hi)
    if hi == lo:
        hi = lo + 1.0

    def ycoord(v: float) -> int:
        val = math.log10(v) if logy else v
        frac = (val - lo) / (hi - lo)
        return min(height - 1, max(0, round(frac * (height - 1))))

    def xcoord(i: int) -> int:
        if len(nodes) == 1:
            return 0
        return round(i * (width - 1) / (len(nodes) - 1))

    grid = [[" "] * width for _ in range(height)]
    for s_idx, values in enumerate(series):
        marker = _MARKERS[s_idx % len(_MARKERS)]
        for i, v in enumerate(values):
            grid[height - 1 - ycoord(v)][xcoord(i)] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top = 10 ** hi if logy else hi
    bottom = 10 ** lo if logy else lo
    label_w = max(len(_format_val(top)), len(_format_val(bottom)))
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            label = _format_val(top)
        elif row_idx == height - 1:
            label = _format_val(bottom)
        else:
            label = ""
        lines.append(label.rjust(label_w) + " |" + "".join(row))
    lines.append(" " * label_w + " +" + "-" * width)
    # X tick labels: first, middle, last node counts.
    ticks = " " * (label_w + 2)
    tick_line = list(ticks + " " * (width + 8))
    for i in (0, len(nodes) // 2, len(nodes) - 1):
        pos = label_w + 2 + xcoord(i)
        text = str(nodes[i])
        for j, ch in enumerate(text):
            if pos + j < len(tick_line):
                tick_line[pos + j] = ch
    lines.append("".join(tick_line).rstrip() + "   (nodes)")
    for s_idx, r in enumerate(results):
        lines.append(f"  {_MARKERS[s_idx % len(_MARKERS)]} {r.label}")
    return "\n".join(lines)
