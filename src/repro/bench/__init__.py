"""Benchmark harness: scaling sweeps and paper-style reporting.

:mod:`repro.bench.harness` drives the machine model over node counts and
configurations; :mod:`repro.bench.reporting` prints the same series/rows the
paper's figures and tables report, and writes machine-readable CSVs under
``results/``.
"""

from repro.bench.harness import (
    FOUR_CONFIGS,
    ScalingResult,
    run_scaling,
    strong_scaling_nodes,
    weak_scaling_nodes,
)
from repro.bench.plots import ascii_plot
from repro.bench.reporting import (
    format_series_table,
    parallel_efficiency,
    save_csv,
)

__all__ = [
    "FOUR_CONFIGS",
    "ScalingResult",
    "run_scaling",
    "strong_scaling_nodes",
    "weak_scaling_nodes",
    "ascii_plot",
    "format_series_table",
    "parallel_efficiency",
    "save_csv",
]
