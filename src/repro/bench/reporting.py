"""Paper-style output: figure series tables and CSV artifacts."""

from __future__ import annotations

import csv
import os
from typing import List, Optional, Sequence

from repro.bench.harness import ScalingResult

__all__ = ["format_series_table", "parallel_efficiency", "save_csv", "results_dir"]


def results_dir() -> str:
    """``results/`` next to the repository root (created on demand)."""
    root = os.environ.get("REPRO_RESULTS_DIR")
    if root is None:
        root = os.path.join(os.getcwd(), "results")
    os.makedirs(root, exist_ok=True)
    return root


def parallel_efficiency(result: ScalingResult, at_nodes: int,
                        baseline_nodes: int = 1) -> float:
    """Weak-scaling efficiency of one series at a node count."""
    base = result.throughput_per_node[result.nodes.index(baseline_nodes)]
    return result.at(at_nodes)["throughput_per_node"] / base


def format_series_table(
    results: Sequence[ScalingResult],
    metric: str = "throughput",
    unit_scale: float = 1.0,
    unit_label: str = "",
    title: str = "",
) -> str:
    """Render the figure's series as an aligned text table.

    ``metric`` is one of ``throughput``, ``throughput_per_node``,
    ``sec_per_iter``; values are divided by ``unit_scale`` (e.g. 1e6 for
    "10^6 wires/s").
    """
    nodes = results[0].nodes
    for r in results:
        if r.nodes != nodes:
            raise ValueError("all series must share the node axis")
    lines: List[str] = []
    if title:
        lines.append(title)
    header = ["Nodes"] + [r.label for r in results]
    widths = [max(7, len(h) + 2) for h in header]
    lines.append("".join(h.rjust(w) for h, w in zip(header, widths)))
    for i, n in enumerate(nodes):
        row = [str(n)]
        for r in results:
            value = getattr(r, metric)[i] / unit_scale
            row.append(f"{value:.3f}")
        lines.append("".join(v.rjust(w) for v, w in zip(row, widths)))
    if unit_label:
        lines.append(f"(values in {unit_label})")
    return "\n".join(lines)


def save_csv(results: Sequence[ScalingResult], filename: str,
             directory: Optional[str] = None) -> str:
    """Write all series to one CSV under ``results/``; returns the path."""
    directory = directory or results_dir()
    path = os.path.join(directory, filename)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["config", "nodes", "throughput", "throughput_per_node",
             "sec_per_iter"]
        )
        for r in results:
            for i, n in enumerate(r.nodes):
                writer.writerow(
                    [r.label, n, r.throughput[i], r.throughput_per_node[i],
                     r.sec_per_iter[i]]
                )
    return path
