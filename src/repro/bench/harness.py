"""Scaling-sweep driver for the figure reproductions.

Runs an application's workload generator over a list of node counts and
configurations through the machine model, producing the series the paper
plots.  Simulated runs are deterministic, so the paper's 5-run averaging is
unnecessary for the figures; Tables 2 and 3 (real wall-clock measurements of
the dynamic checks) do average 5 runs, in the benchmark files themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.machine.costmodel import CostModel
from repro.machine.perf import SimConfig, simulate_steady_state
from repro.machine.workload import IterationSpec

__all__ = [
    "FOUR_CONFIGS",
    "ScalingResult",
    "run_scaling",
    "weak_scaling_nodes",
    "strong_scaling_nodes",
]

#: The cartesian product of the paper's two optimizations, in legend order.
FOUR_CONFIGS: Tuple[Tuple[bool, bool], ...] = (
    (True, True),    # DCR, IDX
    (True, False),   # DCR, No IDX
    (False, True),   # No DCR, IDX
    (False, False),  # No DCR, No IDX
)


def weak_scaling_nodes(max_nodes: int = 1024) -> List[int]:
    """1, 2, 4, ..., max_nodes — the paper's weak-scaling x axis."""
    nodes = []
    n = 1
    while n <= max_nodes:
        nodes.append(n)
        n *= 2
    return nodes


def strong_scaling_nodes(max_nodes: int = 512) -> List[int]:
    """1, 2, 4, ..., max_nodes — the paper's strong-scaling x axis."""
    return weak_scaling_nodes(max_nodes)


@dataclass
class ScalingResult:
    """One configuration's series over node counts."""

    label: str
    nodes: List[int] = field(default_factory=list)
    throughput: List[float] = field(default_factory=list)
    throughput_per_node: List[float] = field(default_factory=list)
    sec_per_iter: List[float] = field(default_factory=list)

    def at(self, n: int) -> Dict[str, float]:
        i = self.nodes.index(n)
        return {
            "throughput": self.throughput[i],
            "throughput_per_node": self.throughput_per_node[i],
            "sec_per_iter": self.sec_per_iter[i],
        }

    def efficiency(self, baseline_nodes: int = 1) -> List[float]:
        """Weak-scaling parallel efficiency vs the smallest node count."""
        base = self.throughput_per_node[self.nodes.index(baseline_nodes)]
        return [t / base for t in self.throughput_per_node]


def run_scaling(
    workload: Callable[[int], IterationSpec],
    nodes: Sequence[int],
    configs: Sequence[Tuple[bool, bool]] = FOUR_CONFIGS,
    tracing: bool = True,
    checks: bool = True,
    cost: Optional[CostModel] = None,
) -> List[ScalingResult]:
    """Sweep ``workload(n_nodes)`` over ``nodes`` for each configuration.

    Args:
        workload: node count -> :class:`IterationSpec` (weak scaling keeps
            per-node work constant; strong scaling divides a fixed total).
        nodes: node counts to simulate.
        configs: (dcr, idx) pairs; default is the paper's four.
        tracing: Legion tracing enabled (Figure 6 disables it).
        checks: dynamic projection-functor checks enabled (Figure 10's
            "no check" series disables them).
        cost: optional cost-model override for ablations.
    """
    results: List[ScalingResult] = []
    for dcr, idx in configs:
        label = f"{'DCR' if dcr else 'No DCR'}, {'IDX' if idx else 'No IDX'}"
        if not checks and idx:
            label += " (no check)"
        res = ScalingResult(label=label)
        for n in nodes:
            cfg = SimConfig(
                n_nodes=n, dcr=dcr, idx=idx, tracing=tracing, checks=checks
            )
            metrics = simulate_steady_state(workload(n), cfg, cost)
            res.nodes.append(n)
            res.throughput.append(metrics["throughput"])
            res.throughput_per_node.append(metrics["throughput_per_node"])
            res.sec_per_iter.append(metrics["sec_per_iter"])
        results.append(res)
    return results
