"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figures [fig4 .. fig10] [--max-nodes N] [--plot/--no-plot]`` — run the
  paper's scaling figures on the machine model and print their series
  (and ASCII plots).
* ``validate`` — run all three applications through the runtime under
  every configuration and compare against the serial references.
* ``demo`` — a one-minute index-launch walkthrough (same content as
  ``examples/quickstart.py``'s summary).
* ``lint <file>... [--json]`` — run the whole-program static interference
  linter over mini-Regent sources (``.rg`` files, or python files with an
  embedded ``SOURCE = \"\"\"...\"\"\"`` program).  Exits 1 on a
  statically-proven race, 2 on a parse error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main"]


def _cmd_figures(args) -> int:
    from repro.bench.figures import FIGURES, run_figure
    from repro.bench.plots import ascii_plot
    from repro.bench.reporting import format_series_table

    names = args.names or sorted(FIGURES, key=lambda s: int(s[3:]))
    for name in names:
        if name not in FIGURES:
            print(f"unknown figure {name!r}; choose from {sorted(FIGURES)}",
                  file=sys.stderr)
            return 2
        spec = run_figure(name, max_nodes=args.max_nodes)
        print()
        print(format_series_table(
            spec.results, spec.metric, spec.unit_scale, spec.unit_label,
            title=spec.title,
        ))
        if args.plot:
            print()
            print(ascii_plot(
                spec.results, spec.metric, spec.unit_scale,
                title=spec.title, logy=(spec.metric == "throughput"),
            ))
    return 0


def _cmd_validate(args) -> int:
    from repro.apps.circuit import (
        CircuitConfig, build_circuit, reference_circuit, run_circuit,
    )
    from repro.apps.soleil import (
        SoleilConfig, build_soleil, reference_soleil, run_soleil,
    )
    from repro.apps.stencil import (
        StencilConfig, build_stencil, reference_stencil, run_stencil,
    )
    from repro.runtime import Runtime, RuntimeConfig

    failures = 0
    configs = [
        RuntimeConfig(n_nodes=2, dcr=dcr, index_launches=idx,
                      shuffle_intra_launch=True, seed=3)
        for dcr in (True, False)
        for idx in (True, False)
    ]
    for cfg in configs:
        label = cfg.label
        rt = Runtime(cfg)
        g = build_circuit(rt, CircuitConfig(n_pieces=4, nodes_per_piece=16,
                                            wires_per_piece=32, steps=5))
        ok = np.allclose(run_circuit(rt, g), reference_circuit(g))
        print(f"circuit  [{label:>14}]: {'ok' if ok else 'MISMATCH'}")
        failures += not ok

        rt = Runtime(cfg)
        sc = StencilConfig(n=32, blocks=(2, 2), radius=2, steps=4)
        ok = np.allclose(run_stencil(rt, build_stencil(rt, sc)),
                         reference_stencil(sc))
        print(f"stencil  [{label:>14}]: {'ok' if ok else 'MISMATCH'}")
        failures += not ok

        rt = Runtime(cfg)
        so = SoleilConfig(tiles=(2, 2, 2), cells_per_tile=(3, 3, 3), steps=2)
        res = run_soleil(rt, build_soleil(rt, so))
        ref = reference_soleil(so)
        ok = all(np.allclose(res[k], ref[k]) for k in res)
        print(f"soleil   [{label:>14}]: {'ok' if ok else 'MISMATCH'}")
        failures += not ok
    print()
    print("all configurations validated" if not failures
          else f"{failures} validation failures")
    return 1 if failures else 0


def _cmd_patterns(args) -> int:
    from repro.apps.patterns import PATTERNS, run_pattern
    from repro.runtime import Runtime, RuntimeConfig
    from repro.runtime.pipeline import Stage

    print(f"{'pattern':>13} {'launches':>9} {'tasks':>6} {'ratio':>7} "
          f"{'static':>7} {'dynamic':>8} {'correct':>8}")
    for name in sorted(PATTERNS):
        rt = Runtime(RuntimeConfig(index_launches=True))
        res = run_pattern(name, rt)
        ratio = res.tasks / res.launches
        print(f"{name:>13} {res.launches:>9} {res.tasks:>6} {ratio:>7.1f} "
              f"{rt.stats.launches_verified_static:>7} "
              f"{rt.stats.launches_verified_dynamic:>8} "
              f"{str(res.correct):>8}")
    return 0


def _cmd_demo(args) -> int:
    from repro.core.projection import ModularFunctor
    from repro.data.partition import equal_partition
    from repro.runtime import Runtime, RuntimeConfig, task

    @task(privileges=["reads writes"])
    def bump(ctx, block):
        block.write("v", block.read("v") + 1.0)

    rt = Runtime(RuntimeConfig(n_nodes=4))
    region = rt.create_region("demo", 32, {"v": "f8"})
    part = equal_partition("demo_part", region, 8)
    rt.index_launch(bump, 8, part)                        # static
    rt.index_launch(bump, 8, (part, ModularFunctor(8, 3)))  # dynamic, passes
    rt.index_launch(bump, 8, (part, ModularFunctor(3)))     # fails -> serial
    print("three launches issued over 8 blocks each:")
    print("  statically verified :", rt.stats.launches_verified_static)
    print("  dynamically verified:", rt.stats.launches_verified_dynamic)
    print("  serial fallbacks    :", rt.stats.launches_fallback_serial)
    print("  tasks executed      :", rt.stats.tasks_executed)
    print("region values:", region.storage("v")[:8], "...")
    return 0


def _extract_program(path: str) -> str:
    """Read a mini-Regent program from ``path``.

    ``.rg`` (or any non-python) files are taken verbatim; for ``.py``
    files the embedded ``SOURCE = \"\"\"...\"\"\"`` block(s) are linted,
    which keeps the example scripts checkable without executing them.
    """
    import re

    with open(path) as fh:
        text = fh.read()
    if not path.endswith(".py"):
        return text
    blocks = re.findall(
        r'^[A-Z_]*SOURCE\s*=\s*"""(.*?)"""', text, re.M | re.S
    )
    if not blocks:
        raise ValueError(
            f"{path}: no embedded SOURCE = \"\"\"...\"\"\" program found"
        )
    return "\n".join(blocks)


def _cmd_lint(args) -> int:
    import json

    from repro.compiler.lint import lint_source

    reports = []
    worst = 0
    for path in args.files:
        try:
            source = _extract_program(path)
        except (OSError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        report = lint_source(source, path)
        reports.append(report)
        worst = max(worst, report.exit_code)
    if args.json:
        payload = (reports[0].to_dict() if len(reports) == 1
                   else {"programs": [r.to_dict() for r in reports],
                         "exit_code": worst})
        print(json.dumps(payload, indent=2))
    else:
        print("\n\n".join(r.render() for r in reports))
    return worst


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Index launches (SC '21) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="run the paper's scaling figures")
    p_fig.add_argument("names", nargs="*", help="fig4 .. fig10 (default all)")
    p_fig.add_argument("--max-nodes", type=int, default=None,
                       help="cap the node axis (faster runs)")
    p_fig.add_argument("--plot", dest="plot", action="store_true",
                       default=True)
    p_fig.add_argument("--no-plot", dest="plot", action="store_false")
    p_fig.set_defaults(fn=_cmd_figures)

    p_val = sub.add_parser("validate",
                           help="check all apps against serial references")
    p_val.set_defaults(fn=_cmd_validate)

    p_pat = sub.add_parser(
        "patterns", help="run the Figure-1 task-graph patterns"
    )
    p_pat.set_defaults(fn=_cmd_patterns)

    p_demo = sub.add_parser("demo", help="one-minute index-launch demo")
    p_demo.set_defaults(fn=_cmd_demo)

    p_lint = sub.add_parser(
        "lint", help="static interference linter for mini-Regent programs"
    )
    p_lint.add_argument("files", nargs="+",
                        help=".rg sources (or .py files with an embedded "
                             "SOURCE block)")
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable output")
    p_lint.set_defaults(fn=_cmd_lint)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
