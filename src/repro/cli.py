"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figures [fig4 .. fig10] [--max-nodes N] [--plot/--no-plot]`` — run the
  paper's scaling figures on the machine model and print their series
  (and ASCII plots).
* ``validate`` — run all three applications through the runtime under
  every configuration and compare against the serial references.
* ``demo`` — a one-minute index-launch walkthrough (same content as
  ``examples/quickstart.py``'s summary).
* ``lint <file>... [--json]`` — run the whole-program static interference
  linter over mini-Regent sources (``.rg`` files, or python files with an
  embedded ``SOURCE = \"\"\"...\"\"\"`` program).  Exits 1 on a
  statically-proven race, 2 on a parse error.
* ``profile <app> [--out trace.json]`` — run one application with the
  pipeline profiler attached and export a Chrome-trace/Perfetto JSON (or
  JSONL / text summary).  See ``docs/observability.md``.
* ``faultsim <app> [--fault SPEC ...]`` — run an application twice, once
  fault-free and once under a deterministic fault plan, and compare every
  byte.  Exits 0 when all faults were recovered and the runs are
  identical, 1 on a mismatch (or a plan that never fired), 2 when the
  plan was unrecoverable (poisoned launches, reported as one line).  See
  ``docs/fault-tolerance.md``.
* ``check [--config WxSxF] [--mutate NAME] [--trace OUT.json]
  [--conform]`` — explicit-state model checking of the worker-generation
  commit protocol and the poison-propagation protocol.  Exits 0 when every
  invariant holds on every reachable state, 1 when a counterexample is
  found (``--mutate`` runs seeded-broken variants that *must* fail).  See
  ``docs/formal-verification.md``.
* ``serve [--port P] [--persist-dir DIR] ...`` — run the always-on
  session service: many concurrent client sessions multiplexed onto one
  shared worker pool, with bounded persistent analysis caches.  Shuts
  down cleanly (drains, persists, exits 0) on SIGTERM/SIGINT.  See
  ``docs/service.md``.
* ``loadgen --port P [--clients N] [--out REPORT.JSON]`` — drive a
  running service with synthetic concurrent clients and report sustained
  launches/sec plus issuance latency percentiles.

Operational errors (bad arguments, unwritable output paths) exit with
status 2 and a one-line message — never a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main"]


class CLIError(Exception):
    """A user-facing operational error: printed as one line, exit code 2."""


def _require_min(value, minimum: int, flag: str) -> None:
    """Shared numeric-option guard: ``None`` is fine (defaulted), anything
    below ``minimum`` is an operational error (exit 2, one line)."""
    if value is not None and value < minimum:
        raise CLIError(f"{flag} must be >= {minimum}")


def _write_file(path: str, writer) -> None:
    """Run ``writer(path)``, converting output-side OSErrors into the
    one-line exit-2 contract every subcommand shares."""
    try:
        writer(path)
    except OSError as exc:
        raise CLIError(f"cannot write {path}: {exc.strerror or exc}")


def _cmd_figures(args) -> int:
    from repro.bench.figures import FIGURES, run_figure
    from repro.bench.plots import ascii_plot
    from repro.bench.reporting import format_series_table

    names = args.names or sorted(FIGURES, key=lambda s: int(s[3:]))
    for name in names:
        if name not in FIGURES:
            print(f"unknown figure {name!r}; choose from {sorted(FIGURES)}",
                  file=sys.stderr)
            return 2
        spec = run_figure(name, max_nodes=args.max_nodes)
        print()
        print(format_series_table(
            spec.results, spec.metric, spec.unit_scale, spec.unit_label,
            title=spec.title,
        ))
        if args.plot:
            print()
            print(ascii_plot(
                spec.results, spec.metric, spec.unit_scale,
                title=spec.title, logy=(spec.metric == "throughput"),
            ))
    return 0


def _cmd_validate(args) -> int:
    from repro.apps.circuit import (
        CircuitConfig, build_circuit, reference_circuit, run_circuit,
    )
    from repro.apps.soleil import (
        SoleilConfig, build_soleil, reference_soleil, run_soleil,
    )
    from repro.apps.stencil import (
        StencilConfig, build_stencil, reference_stencil, run_stencil,
    )
    from repro.runtime import Runtime, RuntimeConfig

    _require_min(args.workers, 1, "--workers")
    failures = 0
    configs = [
        RuntimeConfig(n_nodes=2, dcr=dcr, index_launches=idx,
                      shuffle_intra_launch=True, seed=3,
                      workers=args.workers, transport=args.transport)
        for dcr in (True, False)
        for idx in (True, False)
    ]
    for cfg in configs:
        label = cfg.label
        rt = Runtime(cfg)
        g = build_circuit(rt, CircuitConfig(n_pieces=4, nodes_per_piece=16,
                                            wires_per_piece=32, steps=5))
        ok = np.allclose(run_circuit(rt, g), reference_circuit(g))
        print(f"circuit  [{label:>14}]: {'ok' if ok else 'MISMATCH'}")
        failures += not ok

        rt = Runtime(cfg)
        sc = StencilConfig(n=32, blocks=(2, 2), radius=2, steps=4)
        ok = np.allclose(run_stencil(rt, build_stencil(rt, sc)),
                         reference_stencil(sc))
        print(f"stencil  [{label:>14}]: {'ok' if ok else 'MISMATCH'}")
        failures += not ok

        rt = Runtime(cfg)
        so = SoleilConfig(tiles=(2, 2, 2), cells_per_tile=(3, 3, 3), steps=2)
        res = run_soleil(rt, build_soleil(rt, so))
        ref = reference_soleil(so)
        ok = all(np.allclose(res[k], ref[k]) for k in res)
        print(f"soleil   [{label:>14}]: {'ok' if ok else 'MISMATCH'}")
        failures += not ok
    print()
    print("all configurations validated" if not failures
          else f"{failures} validation failures")
    return 1 if failures else 0


def _cmd_patterns(args) -> int:
    from repro.apps.patterns import PATTERNS, run_pattern
    from repro.runtime import Runtime, RuntimeConfig
    from repro.runtime.pipeline import Stage

    print(f"{'pattern':>13} {'launches':>9} {'tasks':>6} {'ratio':>7} "
          f"{'static':>7} {'dynamic':>8} {'correct':>8}")
    for name in sorted(PATTERNS):
        rt = Runtime(RuntimeConfig(index_launches=True))
        res = run_pattern(name, rt)
        ratio = res.tasks / res.launches
        print(f"{name:>13} {res.launches:>9} {res.tasks:>6} {ratio:>7.1f} "
              f"{rt.stats.launches_verified_static:>7} "
              f"{rt.stats.launches_verified_dynamic:>8} "
              f"{str(res.correct):>8}")
    return 0


def _cmd_demo(args) -> int:
    from repro.core.projection import ModularFunctor
    from repro.data.partition import equal_partition
    from repro.runtime import Runtime, RuntimeConfig, task

    @task(privileges=["reads writes"])
    def bump(ctx, block):
        block.write("v", block.read("v") + 1.0)

    rt = Runtime(RuntimeConfig(n_nodes=4))
    region = rt.create_region("demo", 32, {"v": "f8"})
    part = equal_partition("demo_part", region, 8)
    rt.index_launch(bump, 8, part)                        # static
    rt.index_launch(bump, 8, (part, ModularFunctor(8, 3)))  # dynamic, passes
    rt.index_launch(bump, 8, (part, ModularFunctor(3)))     # fails -> serial
    print("three launches issued over 8 blocks each:")
    print("  statically verified :", rt.stats.launches_verified_static)
    print("  dynamically verified:", rt.stats.launches_verified_dynamic)
    print("  serial fallbacks    :", rt.stats.launches_fallback_serial)
    print("  tasks executed      :", rt.stats.tasks_executed)
    print("region values:", region.storage("v")[:8], "...")
    return 0


def _extract_program(path: str) -> str:
    """Read a mini-Regent program from ``path``.

    ``.rg`` (or any non-python) files are taken verbatim; for ``.py``
    files the embedded ``SOURCE = \"\"\"...\"\"\"`` block(s) are linted,
    which keeps the example scripts checkable without executing them.
    """
    import re

    with open(path) as fh:
        text = fh.read()
    if not path.endswith(".py"):
        return text
    blocks = re.findall(
        r'^[A-Z_]*SOURCE\s*=\s*"""(.*?)"""', text, re.M | re.S
    )
    if not blocks:
        raise ValueError(
            f"{path}: no embedded SOURCE = \"\"\"...\"\"\" program found"
        )
    return "\n".join(blocks)


def _cmd_lint(args) -> int:
    import json

    from repro.compiler.lint import lint_source

    reports = []
    worst = 0
    for path in args.files:
        try:
            source = _extract_program(path)
        except (OSError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        report = lint_source(source, path)
        reports.append(report)
        worst = max(worst, report.exit_code)
    if args.json:
        payload = (reports[0].to_dict() if len(reports) == 1
                   else {"programs": [r.to_dict() for r in reports],
                         "exit_code": worst})
        print(json.dumps(payload, indent=2))
    else:
        print("\n\n".join(r.render() for r in reports))
    return worst


_PROFILE_APPS = ("circuit", "stencil", "soleil")


def _cmd_profile(args) -> int:
    from repro.machine.costmodel import CostModel
    from repro.machine.perf import SimConfig, simulate_iteration
    from repro.obs import (
        Profiler, text_summary, validate_chrome_trace_file,
        write_chrome_trace, write_jsonl,
    )
    from repro.runtime import Runtime, RuntimeConfig

    _require_min(args.nodes, 1, "--nodes")
    _require_min(args.steps, 1, "--steps")
    _require_min(args.workers, 1, "--workers")
    cost = CostModel()
    prof = Profiler(costmodel=cost)
    cfg = RuntimeConfig(
        n_nodes=args.nodes,
        dcr=not args.no_dcr,
        index_launches=not args.no_idx,
        workers=args.workers,
        transport=args.transport,
        profiler=prof,
    )
    rt = Runtime(cfg)
    if args.app == "circuit":
        from repro.apps.circuit import (
            CircuitConfig, build_circuit, circuit_iteration, run_circuit,
        )
        graph = build_circuit(rt, CircuitConfig(
            n_pieces=max(2 * args.nodes, 4), steps=args.steps))
        run_circuit(rt, graph)
        spec = circuit_iteration(args.nodes)
    elif args.app == "stencil":
        from repro.apps.stencil import (
            StencilConfig, build_stencil, run_stencil, stencil_iteration,
        )
        grid = build_stencil(rt, StencilConfig(
            n=32, blocks=(2, 2), radius=2, steps=args.steps))
        run_stencil(rt, grid)
        spec = stencil_iteration(args.nodes)
    else:
        from repro.apps.soleil import (
            SoleilConfig, build_soleil, run_soleil, soleil_iteration,
        )
        state = build_soleil(rt, SoleilConfig(
            tiles=(2, 2, 2), cells_per_tile=(3, 3, 3),
            steps=min(args.steps, 3)))
        run_soleil(rt, state)
        spec = soleil_iteration(args.nodes)

    # Machine-model pass: the same workload through the simulator, emitting
    # simulated-time tracks alongside the wall-clock pipeline spans.
    simulate_iteration(
        spec,
        SimConfig(n_nodes=args.nodes, dcr=cfg.dcr, idx=cfg.index_launches),
        cost,
        profiler=prof,
    )

    wrote = False
    if args.out:
        _write_file(args.out,
                    lambda p: write_chrome_trace(p, prof, stats=rt.stats))
        problems = validate_chrome_trace_file(args.out)
        if problems:
            raise CLIError(f"{args.out}: emitted trace failed validation: "
                           f"{problems[0]}")
        print(f"wrote {args.out} "
              f"({len(prof.wall_spans())} wall spans, "
              f"{len(prof.sim_spans())} simulated activities); "
              f"open in https://ui.perfetto.dev")
        wrote = True
    if args.jsonl:
        _write_file(args.jsonl, lambda p: write_jsonl(p, prof))
        print(f"wrote {args.jsonl}")
        wrote = True
    if args.summary or not wrote:
        print(text_summary(prof, stats=rt.stats))
    if args.bench_summary:
        print(_bench_summary_table(rt))
    return 0


def _bench_summary_table(rt) -> str:
    """The hot-path engine's counter table (see docs/hot-path.md).

    Collects the three layers' counters — shared-memory transport, batched
    physical commit, precompiled check/dependence kernels — from wherever
    they live (runtime, backend, pool arena) into one aligned block.
    """
    from repro.runtime.kernels import GLOBAL_CHECK_KERNELS

    rows = [
        ("dependence kernel replays", rt.physical.kernel_replays),
        ("check kernel hits", GLOBAL_CHECK_KERNELS.hits),
        ("check kernel misses", GLOBAL_CHECK_KERNELS.misses),
        ("check kernel affine constants", GLOBAL_CHECK_KERNELS.affine_constants),
    ]
    bstats = getattr(rt.backend, "stats", None)
    if bstats is not None and hasattr(bstats, "batched_commit_ops"):
        rows += [
            ("batched commit ops", bstats.batched_commit_ops),
            ("batched commit tasks", bstats.batched_commit_tasks),
        ]
    pool = getattr(rt.backend, "_pool", None)
    if pool is not None:
        for name, value in pool.arena.stats.as_dict().items():
            rows.append((f"shm {name.replace('_', ' ')}", value))
    width = max(len(label) for label, _ in rows)
    lines = ["hot-path engine counters"]
    lines += [f"  {label.ljust(width)}  {value}" for label, value in rows]
    return "\n".join(lines)


def _cmd_faultsim(args) -> int:
    from repro.fault import FaultPlan, RetryPolicy, parse_fault
    from repro.fault.sim import run_faultsim

    if args.workers < 2:
        raise CLIError("--workers must be >= 2 (faults target the worker "
                       "pool; the serial path has no workers to lose)")
    _require_min(args.steps, 1, "--steps")
    if args.fault:
        try:
            specs = tuple(parse_fault(text) for text in args.fault)
        except ValueError as exc:
            raise CLIError(str(exc))
        plan = FaultPlan(specs=specs, seed=args.seed)
    else:
        plan = FaultPlan.random(args.seed, n_faults=1, workers=args.workers,
                                shards=2)
    retry = None
    if args.timeout is not None:
        if args.timeout <= 0:
            raise CLIError("--timeout must be > 0 seconds")
        retry = RetryPolicy(shard_timeout_s=args.timeout)
    report = run_faultsim(
        args.app, plan, workers=args.workers, steps=args.steps,
        retry=retry, transport=args.transport,
    )
    if report.exit_code == 2:
        print(report.summary_line())
    else:
        print(report.render())
    return report.exit_code


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve.service import ReproService, ServiceConfig

    _require_min(args.workers, 1, "--workers")
    _require_min(args.queue_limit, 1, "--queue-limit")
    _require_min(args.cache_entries, 1, "--cache-entries")
    _require_min(args.cache_bytes, 1, "--cache-bytes")
    service = ReproService(ServiceConfig(
        host=args.host,
        port=args.port,
        token=args.token,
        workers=args.workers,
        transport=args.transport,
        queue_limit=args.queue_limit,
        persist_dir=args.persist_dir,
        cache_entry_budget=args.cache_entries,
        cache_byte_budget=args.cache_bytes,
    ))

    async def _run():
        await service.start()
        service.install_signal_handlers()
        # The port line is the startup contract: smoke scripts parse it.
        print(f"repro serve listening on {service.config.host}:"
              f"{service.port}", flush=True)
        while not service._stopped.is_set():
            await asyncio.sleep(0.05)

    asyncio.run(_run())
    print("repro serve: shut down cleanly", flush=True)
    return 0


def _cmd_loadgen(args) -> int:
    import json

    from repro.serve.loadgen import run_loadgen

    _require_min(args.clients, 1, "--clients")
    _require_min(args.launches, 2, "--launches")
    report = run_loadgen(
        args.host, args.port, token=args.token,
        clients=args.clients, launches=args.launches,
        tenants=args.tenants,
    )
    if args.out:
        def _dump(path):
            with open(path, "w") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
                fh.write("\n")

        _write_file(args.out, _dump)
        print(f"wrote {args.out}")
    print(f"{report['total_launches']} launches over "
          f"{report['clients_completed']}/{report['clients']} clients: "
          f"{report['launches_per_s']:.0f} launches/s, "
          f"p50 {report['issue_p50_us']:.0f} us, "
          f"p99 {report['issue_p99_us']:.0f} us")
    for line in report["errors"]:
        print(f"error: {line}", file=sys.stderr)
    if report["errors"] or not report["all_correct"]:
        return 1
    return 0


def _cmd_check(args) -> int:
    import json

    from repro.formal import (
        MUTATIONS, CommitConfig, CommitModel, PoisonConfig, PoisonModel,
        build_mutant, check_payload, explore,
    )
    from repro.obs.metrics import MetricsRegistry

    if args.list_mutations:
        width = max(len(name) for name in MUTATIONS)
        for name in sorted(MUTATIONS):
            kind, desc = MUTATIONS[name]
            print(f"{name:<{width}}  [{kind}]  {desc}")
        return 0

    try:
        commit_cfg = (CommitConfig.parse(args.config)
                      if args.config else CommitConfig())
    except ValueError as exc:
        raise CLIError(str(exc))
    poison_cfg = PoisonConfig()
    _require_min(args.max_states, 1, "--max-states")

    if args.mutate:
        if args.mutate not in MUTATIONS:
            raise CLIError(f"unknown mutation {args.mutate!r}; see "
                           f"'repro check --list-mutations'")
        kind, desc = MUTATIONS[args.mutate]
        models = [build_mutant(args.mutate, commit_config=commit_cfg,
                               poison_config=poison_cfg)]
        print(f"mutation {args.mutate} [{kind}]: {desc}")
    else:
        models = []
        if args.model in ("commit", "all"):
            models.append(CommitModel(commit_cfg))
        if args.model in ("poison", "all"):
            models.append(PoisonModel(poison_cfg))

    metrics = MetricsRegistry()
    payloads = []
    bad = 0
    for model in models:
        label = (model.cfg.describe()
                 if hasattr(model.cfg, "describe") else "")
        result = explore(model, max_states=args.max_states, metrics=metrics)
        name = type(model).__name__
        print(f"{name}{f' ({label})' if label else ''}: {result.summary()}")
        for violation in result.violations:
            print(f"  {violation.headline()}")
        payloads.append(check_payload(model, result))
        bad += not result.ok

    print(f"checked {int(metrics.total('check.states'))} states, "
          f"{int(metrics.total('check.transitions'))} transitions, "
          f"{int(metrics.total('check.violations'))} violation(s) total")

    if args.trace:
        payload = payloads[0] if len(payloads) == 1 else {"models": payloads}

        def _dump(path):
            with open(path, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")

        _write_file(args.trace, _dump)
        print(f"wrote {args.trace}")

    if args.conform:
        from repro.formal.conform import run_conformance

        print()
        print("conformance: replaying checker traces through the real "
              "parallel backend")
        results = run_conformance()
        for res in results:
            print(f"  {res.summary()}")
        bad += sum(not res.ok for res in results)

    return 1 if bad else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Index launches (SC '21) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="run the paper's scaling figures")
    p_fig.add_argument("names", nargs="*", help="fig4 .. fig10 (default all)")
    p_fig.add_argument("--max-nodes", type=int, default=None,
                       help="cap the node axis (faster runs)")
    p_fig.add_argument("--plot", dest="plot", action="store_true",
                       default=True)
    p_fig.add_argument("--no-plot", dest="plot", action="store_false")
    p_fig.set_defaults(fn=_cmd_figures)

    p_val = sub.add_parser("validate",
                           help="check all apps against serial references")
    p_val.add_argument("--workers", type=int, default=None,
                       help="pipeline worker processes per run (default: "
                            "env REPRO_WORKERS, else 1 = serial)")
    p_val.add_argument("--transport", choices=("local", "pipe", "socket"),
                       default=None,
                       help="worker transport (default: env "
                            "REPRO_TRANSPORT, else local)")
    p_val.set_defaults(fn=_cmd_validate)

    p_pat = sub.add_parser(
        "patterns", help="run the Figure-1 task-graph patterns"
    )
    p_pat.set_defaults(fn=_cmd_patterns)

    p_demo = sub.add_parser("demo", help="one-minute index-launch demo")
    p_demo.set_defaults(fn=_cmd_demo)

    p_lint = sub.add_parser(
        "lint", help="static interference linter for mini-Regent programs"
    )
    p_lint.add_argument("files", nargs="+",
                        help=".rg sources (or .py files with an embedded "
                             "SOURCE block)")
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable output")
    p_lint.set_defaults(fn=_cmd_lint)

    p_prof = sub.add_parser(
        "profile",
        help="run an app with the pipeline profiler; export a Chrome trace",
    )
    p_prof.add_argument("app", choices=_PROFILE_APPS,
                        help="application to profile")
    p_prof.add_argument("--out", default=None, metavar="TRACE.JSON",
                        help="write a Chrome-trace/Perfetto JSON here")
    p_prof.add_argument("--jsonl", default=None, metavar="EVENTS.JSONL",
                        help="write the flat JSONL event log here")
    p_prof.add_argument("--summary", action="store_true",
                        help="print the text summary even when exporting")
    p_prof.add_argument("--nodes", type=int, default=4,
                        help="simulated node count (default 4)")
    p_prof.add_argument("--workers", type=int, default=None,
                        help="pipeline worker processes per run (default: "
                             "env REPRO_WORKERS, else 1 = serial)")
    p_prof.add_argument("--transport", choices=("local", "pipe", "socket"),
                        default=None,
                        help="worker transport (default: env "
                             "REPRO_TRANSPORT, else local)")
    p_prof.add_argument("--steps", type=int, default=5,
                        help="application time steps (default 5)")
    p_prof.add_argument("--no-dcr", action="store_true",
                        help="disable dynamic control replication")
    p_prof.add_argument("--no-idx", action="store_true",
                        help="disable index launches")
    p_prof.add_argument("--bench-summary", action="store_true",
                        help="print the hot-path engine counter table "
                             "(shm transport, batched commit, kernels)")
    p_prof.set_defaults(fn=_cmd_profile)

    p_fault = sub.add_parser(
        "faultsim",
        help="inject deterministic faults, recover, compare bytes",
    )
    p_fault.add_argument("app", choices=("circuit", "stencil"),
                         help="application to run under fault injection")
    p_fault.add_argument("--fault", action="append", default=[],
                         metavar="KIND:SCOPE:TARGET[:PHASE[:TIMES]]",
                         help="fault spec, repeatable (e.g. kill:worker:0, "
                              "hang:shard:1:execution, "
                              "kill:point:0:execution:-1); default: one "
                              "random fault from --seed")
    p_fault.add_argument("--workers", type=int, default=2,
                         help="worker pool size (default 2)")
    p_fault.add_argument("--transport", choices=("local", "pipe", "socket"),
                         default=None,
                         help="worker transport (default: env "
                              "REPRO_TRANSPORT, else local)")
    p_fault.add_argument("--steps", type=int, default=None,
                         help="application time steps (default: app's)")
    p_fault.add_argument("--seed", type=int, default=0,
                         help="seed for randomly generated plans (default 0)")
    p_fault.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-shard result timeout (hang detector)")
    p_fault.set_defaults(fn=_cmd_faultsim)

    p_serve = sub.add_parser(
        "serve",
        help="run the always-on session service (see docs/service.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (default 0 = ephemeral; the bound "
                              "port is printed on startup)")
    p_serve.add_argument("--token", default="repro",
                         help="shared handshake token clients must present")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="shared worker-pool size (default: env "
                              "REPRO_WORKERS, else 1)")
    p_serve.add_argument("--transport", choices=("local", "pipe", "socket"),
                         default=None,
                         help="worker transport (default: env "
                              "REPRO_TRANSPORT, else local)")
    p_serve.add_argument("--queue-limit", type=int, default=8,
                         help="per-session admitted-command bound; beyond "
                              "it calls get BUSY (default 8)")
    p_serve.add_argument("--persist-dir", default=None, metavar="DIR",
                         help="persist per-tenant analysis caches here "
                              "across restarts")
    p_serve.add_argument("--cache-entries", type=int, default=None,
                         help="LRU entry budget for the per-session replay "
                              "caches and tenant check memos")
    p_serve.add_argument("--cache-bytes", type=int, default=None,
                         help="LRU byte budget for the same caches")
    p_serve.set_defaults(fn=_cmd_serve)

    p_load = sub.add_parser(
        "loadgen",
        help="drive a running service with synthetic concurrent clients",
    )
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, required=True,
                        help="port of the running 'repro serve'")
    p_load.add_argument("--token", default="repro")
    p_load.add_argument("--clients", type=int, default=8,
                        help="concurrent synthetic clients (default 8)")
    p_load.add_argument("--launches", type=int, default=40,
                        help="index launches per client (default 40)")
    p_load.add_argument("--tenants", type=int, default=None,
                        help="spread clients over this many tenants "
                             "(default: one per client)")
    p_load.add_argument("--out", default=None, metavar="REPORT.JSON",
                        help="write the full report as JSON")
    p_load.set_defaults(fn=_cmd_loadgen)

    p_check = sub.add_parser(
        "check",
        help="model-check the commit and poison protocols",
    )
    p_check.add_argument("--model", choices=("commit", "poison", "all"),
                         default="all",
                         help="which protocol model(s) to check (default all)")
    p_check.add_argument("--config", default=None, metavar="WxSxF",
                         help="commit-model bound: workers x shards x fault "
                              "budget (default 2x3x4)")
    p_check.add_argument("--max-states", type=int, default=2_000_000,
                         help="visited-set cap; exploration marked truncated "
                              "beyond it")
    p_check.add_argument("--mutate", default=None, metavar="NAME",
                         help="check a seeded-broken protocol variant "
                              "instead (must find a counterexample)")
    p_check.add_argument("--list-mutations", action="store_true",
                         help="list the available mutations and exit")
    p_check.add_argument("--trace", default=None, metavar="OUT.JSON",
                         help="write the check report (counterexample traces "
                              "included) as JSON")
    p_check.add_argument("--conform", action="store_true",
                         help="also replay checker traces through the real "
                              "parallel backend")
    p_check.set_defaults(fn=_cmd_check)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        # Unwritable --out, unreadable input, etc.: one line, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        # Whatever happened above — success, CLIError, bad config — no
        # worker process may outlive the command.
        from repro.exec.pool import shutdown_pools

        shutdown_pools()


if __name__ == "__main__":
    raise SystemExit(main())
