"""Chrome-trace JSON schema validation (used by tests and the CI smoke).

Not a full JSON-Schema implementation — a purpose-built checker for the
subset of the Trace Event Format this repo emits:

* top level: an object with a ``traceEvents`` list;
* every event: ``name``/``ph``/``ts``/``pid``/``tid`` fields, ``ph`` one of
  ``M`` (metadata), ``X`` (complete, requires ``dur >= 0``), ``i``
  (instant);
* per (pid, tid) track: non-metadata timestamps non-decreasing, so
  Perfetto's importer never has to reorder.

Run standalone: ``python -m repro.obs.schema trace.json`` exits 0 when the
file validates, 1 with one line per problem otherwise.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List

__all__ = ["validate_chrome_trace", "validate_chrome_trace_file"]

_REQUIRED = ("name", "ph", "ts", "pid", "tid")
_PHASES = {"M", "X", "i"}


def validate_chrome_trace(obj: Any) -> List[str]:
    """Validate a parsed trace dict; returns a list of problems (empty = ok)."""
    problems: List[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    last_ts: Dict[tuple, float] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        missing = [k for k in _REQUIRED if k not in ev]
        if missing:
            problems.append(f"event {i}: missing fields {missing}")
            continue
        ph = ev["ph"]
        if ph not in _PHASES:
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if not isinstance(ev["ts"], (int, float)):
            problems.append(f"event {i}: non-numeric ts")
            continue
        if ph == "M":
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: 'X' event needs dur >= 0")
        track = (ev["pid"], ev["tid"])
        prev = last_ts.get(track)
        if prev is not None and ev["ts"] < prev:
            problems.append(
                f"event {i}: track {track} timestamps not monotone "
                f"({ev['ts']} < {prev})"
            )
        last_ts[track] = ev["ts"]
    return problems


def validate_chrome_trace_file(path: str) -> List[str]:
    """Load ``path`` and validate; JSON errors are reported, not raised."""
    try:
        with open(path) as fh:
            obj = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: {exc}"]
    return validate_chrome_trace(obj)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.schema <trace.json>...",
              file=sys.stderr)
        return 2
    failures = 0
    for path in argv:
        problems = validate_chrome_trace_file(path)
        if problems:
            failures += 1
            for p in problems:
                print(f"{path}: {p}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
