"""Metrics registry: labeled counters and histograms for the pipeline.

The registry is the numeric half of the observability layer (the spans of
:mod:`repro.obs.profiler` are the temporal half).  Two instrument kinds:

* **Counters** — monotonically-increasing floats, addressed by a metric
  name plus a label set (``stage=...``, ``node=...``, ``verdict=...``).
* **Histograms** — distribution summaries (count/sum/min/max plus
  power-of-two buckets) for quantities like span durations.

Labels are free-form keyword arguments; a label set is stored as a sorted
``(key, value)`` tuple so lookup is deterministic and serialization is
trivial.  The registry subsumes the ad-hoc
:class:`~repro.runtime.pipeline.PipelineStats` increments: calling
``stats.to_metrics(registry)`` loads every stats field — representation
units labeled by stage/node, verdict counts labeled by verdict, and the
scalar work counters — without changing their values (see the test suite's
subsumption checks).

The module is dependency-free on purpose: the runtime never imports it on
the hot path, and exporters consume it duck-typed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["Histogram", "MetricsRegistry", "label_key"]

LabelKey = Tuple[Tuple[str, Any], ...]


def label_key(labels: Dict[str, Any]) -> LabelKey:
    """Canonical, hashable form of a label set."""
    return tuple(sorted(labels.items()))


@dataclass
class Histogram:
    """A streaming distribution summary with power-of-two bucket counts.

    ``buckets[i]`` counts observations with ``2**(i-1) <= value < 2**i``
    scaled by ``bucket_unit`` (so the default unit of 1e-6 buckets spans in
    microseconds); values below ``bucket_unit`` land in bucket 0.
    """

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    bucket_unit: float = 1e-6
    buckets: Dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        scaled = value / self.bucket_unit
        idx = 0 if scaled < 1.0 else int(scaled).bit_length()
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": dict(sorted(self.buckets.items())),
        }


class MetricsRegistry:
    """Process-local store of labeled counters and histograms."""

    def __init__(self):
        self._counters: Dict[str, Dict[LabelKey, float]] = {}
        self._histograms: Dict[str, Dict[LabelKey, Histogram]] = {}

    # ------------------------------------------------------------- counters
    # Positional parameters are underscore-prefixed so callers can use
    # labels literally named ``name`` or ``value`` (e.g. span phase names).
    def inc(self, _name: str, _value: float = 1.0, **labels: Any) -> None:
        """Add ``_value`` to the counter ``_name{labels}``."""
        series = self._counters.setdefault(_name, {})
        key = label_key(labels)
        series[key] = series.get(key, 0.0) + _value

    def value(self, _name: str, **labels: Any) -> float:
        """Current value of one counter series (0.0 when never incremented)."""
        return self._counters.get(_name, {}).get(label_key(labels), 0.0)

    def total(self, _name: str) -> float:
        """Sum of one counter across all of its label sets."""
        return sum(self._counters.get(_name, {}).values())

    # ----------------------------------------------------------- histograms
    def observe(self, _name: str, _value: float, **labels: Any) -> None:
        """Record one observation into the histogram ``_name{labels}``."""
        series = self._histograms.setdefault(_name, {})
        key = label_key(labels)
        hist = series.get(key)
        if hist is None:
            hist = series[key] = Histogram()
        hist.observe(_value)

    def histogram(self, _name: str, **labels: Any) -> Optional[Histogram]:
        return self._histograms.get(_name, {}).get(label_key(labels))

    # -------------------------------------------------------------- queries
    def counters(self) -> Iterator[Tuple[str, LabelKey, float]]:
        for name in sorted(self._counters):
            for key in sorted(self._counters[name], key=repr):
                yield name, key, self._counters[name][key]

    def histograms(self) -> Iterator[Tuple[str, LabelKey, Histogram]]:
        for name in sorted(self._histograms):
            for key in sorted(self._histograms[name], key=repr):
                yield name, key, self._histograms[name][key]

    def counter_names(self) -> List[str]:
        return sorted(self._counters)

    def __len__(self) -> int:
        return len(self._counters) + len(self._histograms)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of everything in the registry."""
        return {
            "counters": [
                {"name": name, "labels": dict(key), "value": value}
                for name, key, value in self.counters()
            ],
            "histograms": [
                {"name": name, "labels": dict(key), **hist.as_dict()}
                for name, key, hist in self.histograms()
            ],
        }
