"""Pipeline observability: spans, metrics, and trace exporters.

The paper's argument is made through pipeline-stage measurements (§5, §6);
this package makes the reproduction's pipeline observable the same way.
Attach a :class:`Profiler` via ``RuntimeConfig(profiler=...)`` and every
operation's five phases — issuance, logical, distribution, physical,
execution — emit structured spans with cache-hit/replay/fallback
annotations; the machine model emits simulated-time spans of its scheduled
activities.  Export with :func:`write_chrome_trace` (open in
https://ui.perfetto.dev), :func:`write_jsonl`, or :func:`text_summary`, or
drive it all from the CLI: ``python -m repro profile circuit --out
trace.json``.  See ``docs/observability.md``.
"""

from repro.obs.export import (
    chrome_trace,
    jsonl_records,
    text_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.profiler import NULL_PROFILER, Profiler, Span
from repro.obs.schema import validate_chrome_trace, validate_chrome_trace_file

__all__ = [
    "Profiler",
    "Span",
    "NULL_PROFILER",
    "MetricsRegistry",
    "Histogram",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_records",
    "write_jsonl",
    "text_summary",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
]
