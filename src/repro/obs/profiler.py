"""Structured spans for every pipeline phase of every operation.

A :class:`Span` is one named interval on one simulated node's timeline —
"the logical analysis of op 12 on node 3" — with free-form attributes
(cache-hit/replay/fallback annotations, representation counts, the machine
model's modeled cost for the phase).  Two clocks coexist:

* **wall** spans measure the Python implementation itself
  (``time.perf_counter``); the runtime emits one per pipeline phase per
  participating node.
* **simulated** spans come from the machine model
  (:class:`~repro.machine.simulator.MachineSimulator`): each scheduled
  activity becomes a span whose start/duration are simulated seconds, so
  the exported trace shows the *modeled* schedule on per-resource tracks.

The profiler must be zero-overhead when off: every entry point
early-returns on ``enabled`` (and the hot-path helpers :meth:`mark` /
:meth:`phase` return/accept ``None`` so instrumented code pays one
attribute test per phase and nothing else).  ``NULL_PROFILER`` is the
shared disabled instance the runtime uses when no profiler is configured.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["Span", "Profiler", "NULL_PROFILER"]


@dataclass
class Span:
    """One closed interval on one node's timeline."""

    name: str
    stage: str              # pipeline stage or component category
    node: int
    start: float            # seconds; wall clock unless ``sim``
    end: float
    sim: bool = False       # True: simulated-time span from the machine model
    track: Optional[str] = None  # sub-track (machine resource kind)
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Instant:
    """A point annotation (cache hit, replay, fallback, trace verdict)."""

    name: str
    stage: str
    node: int
    ts: float
    args: Dict[str, Any] = field(default_factory=dict)


class Profiler:
    """Collects spans, instants, and metrics from an instrumented run.

    Args:
        enabled: master switch; a disabled profiler records nothing and its
            methods are safe to call unconditionally.
        costmodel: optional :class:`~repro.machine.costmodel.CostModel`;
            when present, instrumented phases attach their *modeled* cost
            (``sim_cost_s``) as a span attribute, linking the functional
            run to the machine model's accounting.
        clock: wall-clock source (injectable for deterministic tests).
    """

    def __init__(self, enabled: bool = True, costmodel=None, clock=None):
        self.enabled = enabled
        self.costmodel = costmodel
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self.metrics = MetricsRegistry()
        self._clock = clock if clock is not None else time.perf_counter

    # ------------------------------------------------------- wall-clock API
    def now(self) -> float:
        return self._clock()

    def mark(self) -> Optional[float]:
        """Phase start marker; ``None`` when disabled (making the matching
        :meth:`phase` call a single-test no-op)."""
        return self._clock() if self.enabled else None

    def phase(
        self,
        name: str,
        stage: str,
        start: Optional[float],
        node: int = 0,
        nodes: Optional[Iterable[int]] = None,
        **args: Any,
    ) -> None:
        """Close the phase opened at ``start`` (a :meth:`mark` value).

        One span is recorded per entry of ``nodes`` (default: just
        ``node``) — replicated control work (DCR issuance, logical
        analysis) appears on every issuing node's track, like the real
        runtime's replicated control programs.
        """
        if start is None or not self.enabled:
            return
        end = self._clock()
        targets = tuple(nodes) if nodes is not None else (node,)
        for n in targets:
            self.spans.append(Span(name, stage, int(n), start, end, args=dict(args)))
        dur = end - start
        self.metrics.inc("spans", float(len(targets)), stage=stage, name=name)
        self.metrics.observe("span_seconds", dur, stage=stage, name=name)

    @contextmanager
    def span(self, name: str, stage: str, node: int = 0, **args: Any):
        """Context-manager form of :meth:`mark`/:meth:`phase` for callers
        that do not need multi-node fan-out.  Yields the mutable attribute
        dict so the body can annotate the span."""
        if not self.enabled:
            yield None
            return
        start = self._clock()
        attrs = dict(args)
        try:
            yield attrs
        finally:
            end = self._clock()
            self.spans.append(Span(name, stage, node, start, end, args=attrs))
            self.metrics.inc("spans", 1.0, stage=stage, name=name)
            self.metrics.observe("span_seconds", end - start, stage=stage, name=name)

    def ingest_span(
        self,
        name: str,
        stage: str,
        node: int,
        start: float,
        end: float,
        **args: Any,
    ) -> None:
        """Record a span measured on *another* clock (a worker process).

        The caller rebases ``start``/``end`` onto this profiler's timeline
        (worker stamp + submit-mark offset); metrics are bumped exactly as
        :meth:`phase` would, so span accounting is backend-independent.
        """
        if not self.enabled:
            return
        self.spans.append(Span(name, stage, int(node), start, end, args=dict(args)))
        self.metrics.inc("spans", 1.0, stage=stage, name=name)
        self.metrics.observe("span_seconds", end - start, stage=stage, name=name)

    def instant(self, name: str, stage: str, node: int = 0, **args: Any) -> None:
        """Record a point annotation and bump its counter."""
        if not self.enabled:
            return
        self.instants.append(Instant(name, stage, node, self._clock(), dict(args)))
        self.metrics.inc(name, 1.0, stage=stage)

    def count(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Guarded counter increment (no-op when disabled)."""
        if self.enabled:
            self.metrics.inc(name, value, **labels)

    # --------------------------------------------------- simulated-time API
    def add_simulated(
        self,
        node: int,
        kind: str,
        label: str,
        start: float,
        duration: float,
        **args: Any,
    ) -> None:
        """Record one machine-model activity as a simulated-time span.

        ``start``/``duration`` are simulated seconds; ``kind`` is the
        resource ("control", "gpu", "nic_out", ...) and becomes the span's
        sub-track so the Perfetto view shows per-resource rows per node.
        """
        if not self.enabled:
            return
        self.spans.append(
            Span(
                label or kind,
                "simulated",
                node,
                start,
                start + duration,
                sim=True,
                track=kind,
                args=dict(args),
            )
        )
        self.metrics.inc("sim_activities", 1.0, kind=kind, node=node)
        self.metrics.observe("sim_activity_seconds", duration, kind=kind)

    # -------------------------------------------------------------- queries
    def wall_spans(self) -> List[Span]:
        return [s for s in self.spans if not s.sim]

    def sim_spans(self) -> List[Span]:
        return [s for s in self.spans if s.sim]

    def clear(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self.metrics = MetricsRegistry()


#: Shared disabled profiler: the runtime's default, so instrumentation can
#: call through it unconditionally.  Never enable this instance — create a
#: fresh ``Profiler()`` instead.
NULL_PROFILER = Profiler(enabled=False)
