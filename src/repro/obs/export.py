"""Exporters: Chrome-trace/Perfetto JSON, flat JSONL, and text summaries.

The Chrome trace uses the ``traceEvents`` array format understood by both
Perfetto (https://ui.perfetto.dev) and chrome://tracing:

* pid 1 — "runtime (wall)": the functional runtime's measured pipeline
  phases, one thread row per simulated node (tid = node id).
* pid 2 — "machine model (sim)": the simulator's scheduled activities on
  simulated time, one thread row per (node, resource) pair, so the modeled
  schedule reads like a Gantt chart.

Wall timestamps are normalized so the first span starts at ts=0; simulated
timestamps are simulated seconds converted to microseconds.  Events within
one track are sorted by start time (ties broken longest-first so enclosing
spans precede their children), which the schema validator
(:mod:`repro.obs.schema`) relies on.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.profiler import Profiler

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_records",
    "write_jsonl",
    "text_summary",
]

_WALL_PID = 1
_SIM_PID = 2
#: Fixed resource-kind ordering for simulated thread ids (per node).
_SIM_KINDS = ("control", "gpu", "nic_out", "nic_in", "sink")


def _sim_tid(node: int, kind: str) -> int:
    try:
        k = _SIM_KINDS.index(kind)
    except ValueError:
        k = len(_SIM_KINDS)
    return node * (len(_SIM_KINDS) + 1) + k


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _safe_args(args: Dict[str, Any]) -> Dict[str, Any]:
    return {k: _json_safe(v) for k, v in args.items()}


def chrome_trace(
    profiler: Profiler, stats: Optional[Any] = None
) -> Dict[str, Any]:
    """Build the Chrome-trace dict (``{"traceEvents": [...], ...}``).

    ``stats`` (a :class:`~repro.runtime.pipeline.PipelineStats`) is
    optional; when given, its counters are embedded under ``otherData`` so
    a trace file is a self-contained record of the run.
    """
    events: List[Dict[str, Any]] = []
    wall = profiler.wall_spans()
    sim = profiler.sim_spans()
    t0 = min(
        [s.start for s in wall] + [i.ts for i in profiler.instants], default=0.0
    )

    meta: List[Dict[str, Any]] = []
    if wall or profiler.instants:
        meta.append(_meta_event("process_name", _WALL_PID, 0,
                                {"name": "runtime (wall)"}))
    wall_nodes = sorted(
        {s.node for s in wall} | {i.node for i in profiler.instants}
    )
    for node in wall_nodes:
        meta.append(_meta_event("thread_name", _WALL_PID, node,
                                {"name": f"node {node}"}))
        meta.append(_meta_event("thread_sort_index", _WALL_PID, node,
                                {"sort_index": node}))
    if sim:
        meta.append(_meta_event("process_name", _SIM_PID, 0,
                                {"name": "machine model (sim)"}))
        for node, kind in sorted({(s.node, s.track or "control") for s in sim}):
            tid = _sim_tid(node, kind)
            meta.append(_meta_event("thread_name", _SIM_PID, tid,
                                    {"name": f"node {node} {kind}"}))
            meta.append(_meta_event("thread_sort_index", _SIM_PID, tid,
                                    {"sort_index": tid}))

    for s in wall:
        events.append({
            "name": s.name,
            "cat": s.stage,
            "ph": "X",
            "ts": (s.start - t0) * 1e6,
            "dur": max(s.duration, 0.0) * 1e6,
            "pid": _WALL_PID,
            "tid": s.node,
            "args": _safe_args(s.args),
        })
    for i in profiler.instants:
        events.append({
            "name": i.name,
            "cat": i.stage,
            "ph": "i",
            "s": "t",
            "ts": (i.ts - t0) * 1e6,
            "pid": _WALL_PID,
            "tid": i.node,
            "args": _safe_args(i.args),
        })
    for s in sim:
        events.append({
            "name": s.name,
            "cat": "sim:" + (s.track or "control"),
            "ph": "X",
            "ts": s.start * 1e6,
            "dur": max(s.duration, 0.0) * 1e6,
            "pid": _SIM_PID,
            "tid": _sim_tid(s.node, s.track or "control"),
            "args": _safe_args(s.args),
        })

    # Per-track ordering: by start, enclosing spans before enclosed ones.
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"], -e.get("dur", 0.0)))

    other: Dict[str, Any] = {"metrics": profiler.metrics.as_dict()}
    if stats is not None:
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        stats.to_metrics(reg)
        other["pipeline_stats"] = reg.as_dict()
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def _meta_event(name: str, pid: int, tid: int, args: Dict[str, Any]) -> Dict[str, Any]:
    return {"name": name, "ph": "M", "ts": 0.0, "pid": pid, "tid": tid,
            "args": args}


def write_chrome_trace(
    path: str, profiler: Profiler, stats: Optional[Any] = None
) -> None:
    """Serialize :func:`chrome_trace` to ``path`` (Perfetto-loadable)."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(profiler, stats), fh, indent=1)
        fh.write("\n")


def jsonl_records(profiler: Profiler) -> List[Dict[str, Any]]:
    """The flat event log: one dict per span/instant, then the metrics."""
    records: List[Dict[str, Any]] = []
    for s in profiler.spans:
        records.append({
            "type": "span",
            "name": s.name,
            "stage": s.stage,
            "node": s.node,
            "clock": "sim" if s.sim else "wall",
            "track": s.track,
            "start_s": s.start,
            "duration_s": s.duration,
            "args": _safe_args(s.args),
        })
    for i in profiler.instants:
        records.append({
            "type": "instant",
            "name": i.name,
            "stage": i.stage,
            "node": i.node,
            "ts_s": i.ts,
            "args": _safe_args(i.args),
        })
    for name, key, value in profiler.metrics.counters():
        records.append({
            "type": "counter",
            "name": name,
            "labels": {k: _json_safe(v) for k, v in key},
            "value": value,
        })
    return records


def write_jsonl(path: str, profiler: Profiler) -> None:
    with open(path, "w") as fh:
        for record in jsonl_records(profiler):
            fh.write(json.dumps(record))
            fh.write("\n")


def text_summary(profiler: Profiler, stats: Optional[Any] = None) -> str:
    """Human-readable digest: per-phase span totals, annotations, stats."""
    lines: List[str] = []
    reg = profiler.metrics
    rows = []
    for name, key, hist in reg.histograms():
        if name != "span_seconds":
            continue
        labels = dict(key)
        rows.append((labels.get("stage", "?"), labels.get("name", "?"), hist))
    if rows:
        lines.append(f"{'stage':>14} {'phase':>16} {'spans':>7} "
                     f"{'total ms':>10} {'mean us':>9} {'max us':>9}")
        for stage, phase, hist in sorted(rows):
            lines.append(
                f"{stage:>14} {phase:>16} {hist.count:>7} "
                f"{hist.total * 1e3:>10.3f} {hist.mean * 1e6:>9.1f} "
                f"{hist.max * 1e6:>9.1f}"
            )
    else:
        lines.append("no spans recorded (profiler disabled?)")

    annotations = [
        (name, dict(key), value)
        for name, key, value in reg.counters()
        if name.startswith(("cache.", "trace.", "safety.", "physical.",
                            "fault.", "recovery.", "pool."))
    ]
    if annotations:
        lines.append("")
        lines.append("annotations:")
        for name, labels, value in annotations:
            extra = "".join(
                f" {k}={v}" for k, v in labels.items() if k != "stage"
            )
            lines.append(f"  {name}{extra}: {value:g}")

    sim = profiler.sim_spans()
    if sim:
        lines.append("")
        makespan = max(s.end for s in sim)
        lines.append(f"machine model: {len(sim)} activities, "
                     f"makespan {makespan * 1e3:.3f} ms (simulated)")

    if stats is not None:
        from repro.obs.metrics import MetricsRegistry

        sreg = MetricsRegistry()
        stats.to_metrics(sreg)
        lines.append("")
        lines.append("pipeline stats:")
        for name, key, value in sreg.counters():
            if name == "pipeline.representation_units":
                continue  # summarized below
            labels = dict(key)
            extra = "".join(f" {k}={v}" for k, v in labels.items())
            lines.append(f"  {name}{extra}: {value:g}")
        table = stats.as_table()
        if table:
            lines.append("  representation units (stage, node, units):")
            for stage, node, units in table:
                lines.append(f"    {stage:>13} {node:>4} {units:>8}")
    return "\n".join(lines)
