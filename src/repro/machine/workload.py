"""Abstract workload descriptions consumed by the performance model.

An application iteration is a sequence of :class:`LaunchSpec` records — one
per forall in the main loop — each describing the launch's degree of
parallelism, per-task compute time, argument count, and communication.  The
app modules (:mod:`repro.apps`) generate these from problem sizes; the
performance model (:mod:`repro.machine.perf`) lowers them to activity
graphs under a given {DCR, IDX, tracing, checks} configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["LaunchSpec", "IterationSpec"]


@dataclass(frozen=True)
class LaunchSpec:
    """One forall of an application's time step.

    Attributes:
        name: label (diagnostics).
        n_tasks: |D|, the launch's degree of parallelism.
        task_seconds: GPU compute time of one task instance.
        n_args: number of region requirements (drives analysis costs).
        partition_size: |P| (defaults to ``n_tasks``).
        needs_dynamic_check: True when the static analysis cannot verify
            the launch's projection functors (the DOM case) — the hybrid
            analysis then pays the Listing-3 check cost when checks are on.
        check_args: how many arguments participate in the dynamic check.
        comm_bytes_per_task: bytes exchanged with each neighbour after the
            launch completes (halo/ghost traffic).
        comm_neighbors: neighbours per node exchanging that data.
        node_assignment: optional explicit map node -> number of local
            tasks.  Default: block distribution of ``n_tasks`` over nodes.
        depends_on_previous: index-launch-level dataflow — this launch's
            tasks consume the previous launch's output (the common case in
            a time step); False lets launches overlap (e.g. independent
            physics modules).
    """

    name: str
    n_tasks: int
    task_seconds: float
    n_args: int = 2
    partition_size: Optional[int] = None
    needs_dynamic_check: bool = False
    check_args: int = 1
    comm_bytes_per_task: float = 0.0
    comm_neighbors: int = 0
    node_assignment: Optional[Tuple[Tuple[int, int], ...]] = None
    depends_on_previous: bool = True

    @property
    def colors(self) -> int:
        return self.partition_size if self.partition_size is not None else self.n_tasks

    def local_tasks(self, n_nodes: int) -> Dict[int, int]:
        """Tasks per node under the (default block) distribution."""
        if self.node_assignment is not None:
            return {node: count for node, count in self.node_assignment if count > 0}
        out: Dict[int, int] = {}
        base, extra = divmod(self.n_tasks, n_nodes)
        for node in range(n_nodes):
            count = base + (1 if node < extra else 0)
            if count:
                out[node] = count
        return out


@dataclass
class IterationSpec:
    """One application time step: an ordered list of launches plus metadata.

    ``work_units`` is the figure's throughput numerator for one iteration
    (wires for Circuit, cells for Stencil, 1 for Soleil's iter/s).
    """

    launches: List[LaunchSpec]
    work_units: float
    name: str = "iteration"

    @property
    def total_tasks(self) -> int:
        return sum(l.n_tasks for l in self.launches)
