"""Deterministic activity-graph scheduler: the simulation engine.

The machine is a set of *resources* — per node: a control (runtime analysis)
processor, GPUs, and send/receive NIC halves.  A simulation run is a DAG of
:class:`Activity` records, each bound to one resource with a duration and a
set of precedence edges.  Resources are non-preemptive and FIFO in activity
insertion order, so the schedule is computed with a single linear pass:

    start(a)  = max(resource_free[res(a)], max(finish(d) for d in deps(a)))
    finish(a) = start(a) + duration(a)

This is exact for FIFO resources when activities are inserted in a
topological, per-resource priority order — which the workload builders
guarantee by emitting activities in pipeline order.  The engine is O(V + E),
deterministic, and has no wall-clock dependence, so simulated results are
bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Resource", "Activity", "MachineSimulator"]


@dataclass(frozen=True)
class Resource:
    """A serially-shared execution resource on one node."""

    node: int
    kind: str  # "control" | "gpu" | "nic_out" | "nic_in"

    def __repr__(self) -> str:
        return f"{self.kind}@{self.node}"


@dataclass
class Activity:
    """One scheduled unit of work."""

    aid: int
    resource: Resource
    duration: float
    deps: Tuple[int, ...]
    label: str = ""
    start: float = -1.0
    finish: float = -1.0


class MachineSimulator:
    """Builds and schedules an activity graph over a simulated cluster."""

    def __init__(self, n_nodes: int, profiler=None):
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.n_nodes = n_nodes
        self._activities: List[Activity] = []
        self._scheduled = False
        self._profiler = profiler

    # ------------------------------------------------------------- building
    def add(
        self,
        node: int,
        kind: str,
        duration: float,
        deps: Iterable[int] = (),
        label: str = "",
    ) -> int:
        """Append an activity; returns its id.  Dependencies must be ids of
        previously-added activities (enforced), keeping the graph acyclic."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        if duration < 0:
            raise ValueError("duration must be non-negative")
        aid = len(self._activities)
        dep_tuple = tuple(deps)
        for d in dep_tuple:
            if not 0 <= d < aid:
                raise ValueError(f"dependency {d} must precede activity {aid}")
        self._activities.append(
            Activity(aid, Resource(node, kind), float(duration), dep_tuple, label)
        )
        self._scheduled = False
        return aid

    def barrier(self, ids: Sequence[int], node: int = 0) -> int:
        """A zero-cost activity joining many predecessors (sync point).

        Lives on a dedicated ``sink`` resource so it observes completion
        times without occupying any real resource — in particular it must
        not block the control processor, which in Legion's deferred
        execution model runs ahead of compute.
        """
        return self.add(node, "sink", 0.0, deps=ids, label="barrier")

    # ----------------------------------------------------------- scheduling
    def run(self) -> float:
        """Schedule all activities; returns the makespan (seconds)."""
        free: Dict[Resource, float] = {}
        makespan = 0.0
        acts = self._activities
        for act in acts:
            ready = 0.0
            for d in act.deps:
                f = acts[d].finish
                if f > ready:
                    ready = f
            avail = free.get(act.resource, 0.0)
            act.start = ready if ready > avail else avail
            act.finish = act.start + act.duration
            free[act.resource] = act.finish
            if act.finish > makespan:
                makespan = act.finish
        self._scheduled = True
        prof = self._profiler
        if prof is not None and prof.enabled:
            # Re-emit the schedule as simulated-time spans, one track per
            # (node, resource kind).  Sinks are zero-width bookkeeping.
            for act in acts:
                if act.resource.kind == "sink":
                    continue
                prof.add_simulated(
                    act.resource.node,
                    act.resource.kind,
                    act.label or f"activity:{act.aid}",
                    act.start,
                    act.duration,
                    aid=act.aid,
                )
            prof.count("sim.makespan_runs", 1.0)
        return makespan

    # -------------------------------------------------------------- queries
    @property
    def n_activities(self) -> int:
        return len(self._activities)

    def activity(self, aid: int) -> Activity:
        return self._activities[aid]

    def finish_time(self, aid: int) -> float:
        if not self._scheduled:
            raise RuntimeError("run() first")
        return self._activities[aid].finish

    def resource_busy_time(self, node: int, kind: str) -> float:
        """Total busy time of one resource (utilization analysis)."""
        res = Resource(node, kind)
        return sum(a.duration for a in self._activities if a.resource == res)

    def critical_path(self) -> List[Activity]:
        """The chain of activities realizing the makespan (diagnostics)."""
        if not self._scheduled:
            raise RuntimeError("run() first")
        if not self._activities:
            return []
        acts = self._activities
        current = max(acts, key=lambda a: a.finish)
        path = [current]
        while True:
            blocker: Optional[Activity] = None
            # Either a dependency or the previous activity on the resource
            # determined our start time.
            for d in current.deps:
                if abs(acts[d].finish - current.start) < 1e-15:
                    blocker = acts[d]
                    break
            if blocker is None:
                prev_on_res = [
                    a
                    for a in acts
                    if a.resource == current.resource
                    and a.aid < current.aid
                    and abs(a.finish - current.start) < 1e-15
                ]
                if prev_on_res:
                    blocker = prev_on_res[-1]
            if blocker is None or blocker.start <= 0 and blocker.aid == 0:
                if blocker is not None:
                    path.append(blocker)
                break
            path.append(blocker)
            current = blocker
        path.reverse()
        return path
