"""Simulated distributed machine (the Piz Daint stand-in).

The scaling experiments of Section 6 ran on up to 1024 XC50 nodes; here the
same runtime pipeline is replayed against a deterministic machine model: a
cluster of nodes, each with a control (runtime) processor, a GPU, and NIC
resources, connected by a latency+bandwidth network.  Per-stage costs come
from a calibrated :class:`~repro.machine.costmodel.CostModel`; activity
graphs are scheduled with a deterministic list scheduler
(:class:`~repro.machine.simulator.MachineSimulator`), and throughput is read
off the critical path.

Absolute times are not comparable to the paper's hardware; the *shapes* —
which configuration wins, where weak scaling rolls off, how overheads grow
with node count — follow from the same asymptotics the paper derives.
"""

from repro.machine.costmodel import CostModel
from repro.machine.simulator import Activity, MachineSimulator, Resource
from repro.machine.workload import LaunchSpec, IterationSpec
from repro.machine.perf import SimConfig, simulate_iteration, simulate_steady_state

__all__ = [
    "CostModel",
    "Activity",
    "MachineSimulator",
    "Resource",
    "LaunchSpec",
    "IterationSpec",
    "SimConfig",
    "simulate_iteration",
    "simulate_steady_state",
]
