"""Lowering application iterations to activity graphs per configuration.

This module encodes how each {DCR, No DCR} x {IDX, No IDX} configuration
pays for the four pipeline stages (Section 5), matching the complexity
claims of the paper:

* **DCR, IDX** — every node issues the O(1) launch, does whole-partition
  logical analysis, evaluates the sharding functor for its O(|D|_local)
  points, and performs distributed physical analysis in
  O(|D|_local log |P|).  No communication on the control path.
* **DCR, No IDX** — the replicated control program enumerates *all* |D|
  tasks on *every* node: per-node control cost O(|D|) per launch, which is
  what bends the No-IDX weak-scaling curves downward.
* **No DCR, IDX** (tracing off) — node 0 issues O(1), whole-partition
  logical analysis, then scatters fixed-size slices down a broadcast tree
  of depth O(log |D|); destinations expand and analyze locally.
* **No DCR, IDX** (tracing on) — Legion's tracing works at individual-task
  granularity and forces expansion *before* distribution (Section 6.2.1):
  node 0 degrades to per-task processing plus a per-task expansion cost,
  landing slightly *below* plain No-IDX — the Figure 5 interference.
* **No DCR, No IDX** — node 0 issues, analyzes, and sends every task
  point-to-point: O(|D|) on one node's control and NIC.

Tracing (when on) amortizes logical/physical analysis to a small per-task
replay cost after the first iteration; the simulation runs several
iterations so the steady-state rate emerges from resource saturation —
control runs ahead of compute exactly as in Legion's deferred-execution
model, so iteration time is governed by the *slower* of the control path
and the compute path, not their sum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.machine.costmodel import CostModel
from repro.machine.simulator import MachineSimulator
from repro.machine.workload import IterationSpec, LaunchSpec

__all__ = ["SimConfig", "simulate_iteration", "simulate_steady_state"]


@dataclass(frozen=True)
class SimConfig:
    """The evaluation's configuration axes for a simulated run.

    ``runahead_iters`` bounds how far the control path may run ahead of
    compute, mirroring Legion's bounded out-of-order window (unbounded
    run-ahead would hide *any* analysis cost behind compute, which neither
    Legion nor the paper's measurements exhibit).  The default of 1 means an
    iteration's analysis overlaps the previous iteration's execution."""

    n_nodes: int
    dcr: bool = True
    idx: bool = True
    tracing: bool = True
    bulk_tracing: bool = False
    checks: bool = True
    runahead_iters: int = 1

    @property
    def label(self) -> str:
        return f"{'DCR' if self.dcr else 'No DCR'}, {'IDX' if self.idx else 'No IDX'}"


def _check_time(
    cost: CostModel, spec: LaunchSpec, cfg: SimConfig, first: bool = True
) -> float:
    """Dynamic projection-functor check cost for one launch issuance.

    Safety verdicts (and the Listing-3 results they embed) are memoized by
    the launch-replay cache, so only the *first* issuance of a launch pays
    the check; reissues serve the cached verdict.
    """
    if not first:
        return 0.0
    if not (cfg.idx and cfg.checks and spec.needs_dynamic_check):
        return 0.0
    return cost.dynamic_check_time(spec.n_tasks, spec.check_args, spec.colors)


def _control_time_dcr_idx(
    cost: CostModel, spec: LaunchSpec, local: int, replay: bool
) -> float:
    t = cost.t_issue_launch
    t += cost.t_logical_launch_arg * spec.n_args
    if replay:
        # Launch-replay cache: sharding assignment and expansion are served
        # from one memo lookup; physical analysis re-stamps the recorded
        # dependence template at trace-replay cost.
        t += cost.t_replay_cache_hit
        t += cost.t_trace_replay_task * local
    else:
        t += cost.t_shard_point * local
        t += cost.physical_task_time(spec.colors) * local
        t += cost.t_trace_record_task * local
    return t


def _control_time_dcr_noidx(
    cost: CostModel, spec: LaunchSpec, local: int, replay: bool
) -> float:
    # The replicated control program touches every task on every node.
    if replay:
        t = spec.n_tasks * (cost.t_issue_task + cost.t_trace_replay_task)
    else:
        t = spec.n_tasks * (
            cost.t_issue_task + cost.t_logical_task + cost.t_trace_record_task
        )
        t += cost.physical_task_time(spec.colors) * local
    return t


def simulate_iteration(
    iteration: IterationSpec,
    cfg: SimConfig,
    cost: Optional[CostModel] = None,
    n_iterations: int = 4,
    profiler=None,
) -> float:
    """Simulate ``n_iterations`` repetitions; return steady-state sec/iter.

    The first iteration runs untraced (recording when tracing is enabled);
    later iterations replay.  The reported rate is the spacing between the
    completion of consecutive warmed-up iterations, capturing the overlap of
    control and compute.  With ``profiler`` attached, the scheduled
    activities appear as simulated-time spans (one track per node/resource).
    """
    cost = cost or CostModel()
    n = cfg.n_nodes
    sim = MachineSimulator(n, profiler=profiler)

    # Per-node rolling state across launches/iterations:
    last_gpu: Dict[int, int] = {}      # node -> last compute activity id
    last_comm: Dict[int, int] = {}     # node -> last halo send activity id
    prev_gpu_barrier: Optional[int] = None   # previous launch's completion
    prev_launch_nodes: set = set()           # nodes the previous launch used
    iter_final_ids: List[int] = []

    for it in range(n_iterations):
        replay = cfg.tracing and it > 0
        # Bounded run-ahead: this iteration's analysis may not start before
        # iteration (it - runahead_iters) has fully completed.
        gate: Tuple[int, ...] = ()
        if cfg.runahead_iters >= 1 and it >= cfg.runahead_iters:
            gate = (iter_final_ids[it - cfg.runahead_iters],)
        iter_ids: List[int] = []
        for spec in iteration.launches:
            local_map = spec.local_tasks(n)
            # The verdict memo is signature-keyed, not trace-gated: any
            # reissue (it > 0) serves the cached verdict.
            check = _check_time(cost, spec, cfg, first=(it == 0))
            control_ids: Dict[int, int] = {}

            if cfg.dcr:
                issuers = range(n)
                for node in issuers:
                    local = local_map.get(node, 0)
                    if cfg.idx:
                        dur = check + _control_time_dcr_idx(cost, spec, local, replay)
                    else:
                        dur = _control_time_dcr_noidx(cost, spec, local, replay)
                    control_ids[node] = sim.add(
                        node, "control", dur, deps=gate, label=f"ctl:{spec.name}"
                    )
            else:
                if cfg.idx and (not cfg.tracing or cfg.bulk_tracing):
                    # Broadcast-tree distribution of O(1) slices.  On a
                    # bulk-traced replay the slicing is served from the
                    # launch-replay cache (the hops below still occur: the
                    # memo saves computing the slices, not delivering them).
                    root_slice_cost = (
                        cost.t_replay_cache_hit
                        if cfg.bulk_tracing and replay
                        else 2 * cost.t_slice_process
                    )
                    t0 = (
                        cost.t_issue_launch
                        + check
                        + cost.t_logical_launch_arg * spec.n_args
                        + root_slice_cost
                    )
                    root = sim.add(0, "control", t0, deps=gate,
                                   label=f"ctl0:{spec.name}")
                    depth = math.ceil(math.log2(n)) if n > 1 else 0
                    hop = cost.net_latency + cost.t_slice_process
                    for node, local in local_map.items():
                        arrive = depth * hop if node != 0 else 0.0
                        if cfg.bulk_tracing and replay:
                            per_task = cost.t_trace_replay_task
                        else:
                            per_task = (
                                cost.t_idx_expand_task
                                + cost.physical_task_time(spec.colors)
                            )
                        dur = arrive + local * per_task
                        control_ids[node] = sim.add(
                            node, "control", dur, deps=(root,),
                            label=f"ctl:{spec.name}",
                        )
                else:
                    # Centralized per-task processing on node 0 — either
                    # plain No-IDX, or IDX degraded by tracing's
                    # pre-distribution expansion (Section 6.2.1).
                    per_task = (
                        cost.t_trace_replay_task if replay else
                        cost.t_logical_task + cost.t_trace_record_task
                        if cfg.tracing else cost.t_logical_task
                    )
                    d = spec.n_tasks
                    t0 = d * (cost.t_issue_task + per_task)
                    if cfg.idx:
                        # One bulk issuance instead of |D| calls, but a
                        # per-task expansion before tracing/distribution.
                        t0 += cost.t_issue_launch + check
                        t0 += d * cost.t_idx_expand_task
                        t0 -= d * cost.t_issue_task
                    root = sim.add(0, "control", t0, deps=gate,
                                   label=f"ctl0:{spec.name}")
                    remote_tasks = sum(
                        c for node, c in local_map.items() if node != 0
                    )
                    send = sim.add(
                        0,
                        "nic_out",
                        remote_tasks
                        * (cost.t_single_send + cost.net_latency),
                        deps=(root,),
                        label=f"send:{spec.name}",
                    )
                    for node, local in local_map.items():
                        dep = (send,) if node != 0 else (root,)
                        dur = local * (
                            cost.t_trace_replay_task
                            if replay
                            else cost.physical_task_time(spec.colors)
                        )
                        control_ids[node] = sim.add(
                            node, "control", dur, deps=dep,
                            label=f"ctl:{spec.name}",
                        )

            # ----- compute + halo exchange
            launch_gpu_ids: List[int] = []
            for node, local in local_map.items():
                gpu_slots = max(cost.gpus_per_node, 1)
                compute = math.ceil(local / gpu_slots) * spec.task_seconds
                deps = [control_ids[node]]
                if spec.depends_on_previous:
                    if node in prev_launch_nodes and node in last_gpu:
                        # Same-node producer: stay pipelined.
                        deps.append(last_gpu[node])
                    elif prev_gpu_barrier is not None:
                        # The producer ran elsewhere (e.g. the upstream DOM
                        # wavefront): wait for the previous launch.
                        deps.append(prev_gpu_barrier)
                    # Consume the previous launch's halo data from neighbours.
                    for nb in (node - 1, node + 1):
                        if nb in last_comm:
                            deps.append(last_comm[nb])
                gid = sim.add(node, "gpu", compute, deps=deps,
                              label=f"gpu:{spec.name}")
                last_gpu[node] = gid
                launch_gpu_ids.append(gid)
                iter_ids.append(gid)
            if launch_gpu_ids:
                prev_gpu_barrier = sim.barrier(launch_gpu_ids)
                prev_launch_nodes = set(local_map)
            if spec.comm_bytes_per_task > 0 and n > 1:
                new_comm: Dict[int, int] = {}
                for node, local in local_map.items():
                    nbytes = spec.comm_bytes_per_task * local
                    dur = (
                        spec.comm_neighbors * cost.message_time(nbytes)
                        + cost.contention_time(n, nbytes)
                    )
                    cid = sim.add(
                        node, "nic_out", dur, deps=(last_gpu[node],),
                        label=f"halo:{spec.name}",
                    )
                    new_comm[node] = cid
                    iter_ids.append(cid)
                last_comm = new_comm

        end = sim.barrier(iter_ids) if iter_ids else sim.add(0, "control", 0.0)
        iter_final_ids.append(end)

    sim.run()
    finishes = [sim.finish_time(a) for a in iter_final_ids]
    if n_iterations >= 3:
        # Steady state: spacing of the last iterations (first is warm-up).
        return finishes[-1] - finishes[-2]
    return finishes[-1] / n_iterations


def simulate_steady_state(
    iteration: IterationSpec,
    cfg: SimConfig,
    cost: Optional[CostModel] = None,
    profiler=None,
) -> Dict[str, float]:
    """Simulate and report throughput metrics for one configuration.

    Returns a dict with ``sec_per_iter``, ``throughput`` (work units/s),
    and ``throughput_per_node``.
    """
    sec = simulate_iteration(iteration, cfg, cost, profiler=profiler)
    thr = iteration.work_units / sec if sec > 0 else float("inf")
    return {
        "sec_per_iter": sec,
        "throughput": thr,
        "throughput_per_node": thr / cfg.n_nodes,
    }
