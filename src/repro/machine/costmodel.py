"""Calibrated per-operation costs for the machine model.

Constants are loosely calibrated against published Legion overheads (a few
microseconds per task for traced replay, tens of microseconds for untraced
dynamic analysis) and the paper's own measurements (Tables 2-3 put the
dynamic check at ~1.3 ns/point in optimized C; "approximately the same as
the overhead of launching a task in Regent/Legion at these scales" for a
3 ms check at |D| = 1e6).

Everything is a plain field so ablation benchmarks can perturb individual
costs and observe the effect on scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Per-unit costs, in seconds, of runtime pipeline work.

    Grouped by pipeline stage.  ``*_task`` costs are paid once per
    individual task; ``*_launch`` costs once per index launch.
    """

    # --- task issuance -----------------------------------------------------
    t_issue_launch: float = 30e-6   # one index-launch descriptor (O(1))
    t_issue_task: float = 7e-6      # one individual task launch

    # --- logical analysis ---------------------------------------------------
    t_logical_launch_arg: float = 15e-6  # whole-partition reasoning per region arg
    t_logical_task: float = 18e-6        # per-task region-tree analysis (untraced)

    # --- tracing [20] -------------------------------------------------------
    t_trace_replay_task: float = 8.0e-6  # per-task cost of replaying a trace
    t_trace_record_task: float = 8e-6    # extra per-task cost while recording
    t_idx_expand_task: float = 10e-6     # expanding one point task from a launch
    # Launch-replay cache: one signature lookup + validation per launch
    # replay, replacing the memoized per-point work (sharding/slicing eval,
    # point-task expansion, safety re-verification).
    t_replay_cache_hit: float = 1.5e-6

    # --- distribution -------------------------------------------------------
    t_shard_point: float = 0.4e-6    # sharding functor eval per local point
    t_slice_process: float = 8e-6    # handle/forward one slice descriptor
    t_single_send: float = 45e-6     # map/serialize one individual remote task

    # --- physical analysis --------------------------------------------------
    t_physical_task: float = 10e-6       # per-task base cost
    t_physical_log_factor: float = 1.2e-6  # * log2(|P|) per task (BVH descent)

    # --- dynamic projection-functor checks (Section 4) ----------------------
    t_check_per_point: float = 2.5e-9  # per (domain point x argument) bitmask op
    t_check_bitmask_init: float = 0.4e-9  # per partition color (bitmask init)

    # --- host worker pool (wall-clock only; see repro.exec) -----------------
    # Overheads of the shard-parallel execution backend's process pool.
    # These describe the *host* running the reproduction, not the modeled
    # machine: they annotate profiler spans for dispatch accounting but are
    # NEVER charged to simulated time (never passed to ``add_simulated``) —
    # backends must not perturb the paper's timing model.
    t_worker_dispatch: float = 120e-6  # pickle + submit one shard plan
    t_worker_result: float = 90e-6     # receive + unpickle one shard result
    t_worker_respawn: float = 8e-3     # replace one dead worker process
    t_retry_backoff: float = 1e-3      # nominal pause before a resubmission

    # --- network (Aries-like) ----------------------------------------------
    net_latency: float = 1.8e-6     # per message
    net_bandwidth: float = 9.0e9    # bytes/s
    # Large exchanges see growing interference at scale (adaptive routing,
    # shared links): an additive term of net_contention_log * log2(N),
    # scaled down proportionally for messages below contention_ref_bytes so
    # tiny control-sized payloads (e.g. DOM face fluxes) are unaffected.
    net_contention_log: float = 0.35e-3
    contention_ref_bytes: float = 2.0e3

    # --- node --------------------------------------------------------------
    gpus_per_node: int = 1

    def with_overrides(self, **kwargs) -> "CostModel":
        """A copy with selected fields replaced (ablation hook)."""
        return replace(self, **kwargs)

    def message_time(self, n_bytes: float) -> float:
        """Latency + serialization time for one message."""
        return self.net_latency + n_bytes / self.net_bandwidth

    def contention_time(self, n_nodes: int, n_bytes: float) -> float:
        """Scale-dependent interference for one exchange (see class doc)."""
        import math

        if n_nodes <= 1:
            return 0.0
        scale = min(1.0, n_bytes / self.contention_ref_bytes)
        return self.net_contention_log * math.log2(n_nodes) * scale

    def dynamic_check_time(self, n_points: int, n_args: int,
                           partition_size: int) -> float:
        """Cost of the Listing-3 check: O(n_args * |D| + |P|)."""
        return (
            n_args * n_points * self.t_check_per_point
            + partition_size * self.t_check_bitmask_init
        )

    def physical_task_time(self, partition_size: int) -> float:
        """Per-task physical analysis: O(log |P|) via the BVH."""
        import math

        log_p = math.log2(max(partition_size, 2))
        return self.t_physical_task + self.t_physical_log_factor * log_p
