"""Trace-to-runtime conformance: replay checker traces on the real backend.

The model checker proves properties of an *abstraction*; this module
closes the loop by replaying checker traces against the real executor and
asserting both reach the same terminal classification.  A witness trace
from :class:`~repro.formal.commit_model.CommitModel` (or
:class:`~repro.formal.poison_model.PoisonModel`) is compiled into a
:class:`~repro.fault.FaultSchedule` — every ``fault.*`` action becomes a
:class:`~repro.fault.ScheduledFault` pinned to the same shard and attempt
ordinal the model faulted — and run through a real ``Runtime`` with the
matching worker count, shard count, and retry caps.  The real run must
then land in the model-predicted terminal class:

* ``committed`` — no fallbacks, no poison, byte-identical to fault-free;
* ``serial-fallback`` — fallbacks, no poison, still byte-identical;
* ``poisoned`` — at least one poisoned launch, origins matching.

``run_conformance()`` executes the four stock scenarios (one per terminal
class plus a poison-propagation chain) and is what ``repro check
--conform`` and ``tests/formal/test_conformance.py`` drive.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.data.partition import equal_partition
from repro.fault import FaultSchedule, RetryPolicy, ScheduledFault
from repro.formal.commit_model import CommitConfig, CommitModel
from repro.formal.kernel import find_trace
from repro.formal.poison_model import PoisonConfig, PoisonModel, _Launch
from repro.runtime import Runtime, RuntimeConfig, task
from repro.runtime.futures import TaskPoisonedError

__all__ = [
    "ConformResult",
    "run_conformance",
    "schedule_from_trace",
    "SCENARIOS",
]

#: Hang faults must outlive the parent-side timeout that the model assumes
#: converts them into respawns.
_HANG_S = 1.2
_HANG_TIMEOUT_S = 0.3

_FAULT_RE = re.compile(
    r"fault\.(?P<kind>kill|corrupt|hang) w(?P<worker>\d+) "
    r"shard(?P<shard>\d+) attempt(?P<attempt>\d+)"
    r"(?: phase=(?P<phase>\w+))?(?: pord=(?P<pord>\d+))?"
)


# ----------------------------------------------------------- real programs
@task(privileges=["reads writes"])
def _bump(ctx, r):
    r.write("x", r.read("x") + 1.0)


@task(privileges=["reads", "writes"])
def _derive(ctx, src, dst):
    dst.write("x", src.read("x") * 2.0 + 1.0)


def schedule_from_trace(trace, launch: int = 0) -> FaultSchedule:
    """Compile a commit-model trace's fault actions into a schedule.

    Worker-side actions map directly: the model faults shard ``s`` on its
    ``a``-th submission, the schedule arms the same fault on arm ordinal
    ``a`` of node ``s``.  A ``serial.fault`` action becomes an inline
    entry that fires on the serial fallback path.
    """
    entries: List[ScheduledFault] = []
    for action, _state in trace:
        m = _FAULT_RE.match(action)
        if m:
            phase = m.group("phase")
            if phase is None and m.group("pord") is not None:
                # Phase-ordinal stamp alone is enough to compile: the
                # ordinal indexes the model's PHASES tuple.
                from repro.formal.commit_model import PHASES

                phase = PHASES[int(m.group("pord"))]
            entries.append(ScheduledFault(
                node=int(m.group("shard")),
                attempt=int(m.group("attempt")),
                kind=m.group("kind"),
                phase=phase or "execution",
                hang_s=_HANG_S,
                via="worker",
                launch=launch,
            ))
        elif action == "serial.fault":
            entries.append(ScheduledFault(
                node=-1,
                attempt=0,
                kind="kill",
                via="inline",
                launch=launch,
            ))
    return FaultSchedule(tuple(entries))


def _policy_for(cfg: CommitConfig, schedule: FaultSchedule) -> RetryPolicy:
    has_hang = any(e.kind == "hang" for e in schedule.entries)
    return RetryPolicy(
        same_worker_retries=cfg.same_worker_retries,
        respawns=cfg.respawns,
        backoff_base_s=1e-4,
        backoff_cap_s=1e-3,
        shard_timeout_s=_HANG_TIMEOUT_S if has_hang else 30.0,
    )


def _stats_dict(rt) -> dict:
    out = {}
    for f in dataclasses.fields(rt.stats):
        value = getattr(rt.stats, f.name)
        out[f.name] = dict(value) if isinstance(value, dict) else value
    return out


def _run_commit_program(shards: int, workers: int,
                        schedule: Optional[FaultSchedule] = None,
                        policy: Optional[RetryPolicy] = None):
    """Two ``_bump`` launches over ``shards`` single-point shards.

    The second launch is the commit-correctness probe: if launch 0 merged
    a stale cache shipment, launch 1 ships a wrong delta and bails."""
    rt = Runtime(RuntimeConfig(
        workers=workers, n_nodes=shards,
        fault_schedule=schedule, retry=policy,
    ))
    r = rt.create_region("cr", 4 * shards, {"x": "f8"})
    r.storage("x")[:] = np.arange(4.0 * shards)
    p = equal_partition(f"cp{r.uid}", r, shards)
    for _ in range(2):
        rt.index_launch(_bump, shards, p)
    return rt, r.storage("x").tobytes()


def _classify_run(rt) -> str:
    if rt.stats.launches_poisoned > 0:
        return "poisoned"
    if rt.backend.stats.fallbacks > 0:
        return "serial-fallback"
    return "committed"


@dataclass
class ConformResult:
    scenario: str
    predicted: str                    # model terminal classification
    actual: str                       # real-run classification
    ok: bool
    byte_identical: Optional[bool] = None   # None where not applicable
    detail: str = ""
    trace_actions: List[str] = field(default_factory=list)

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        byte = (
            "" if self.byte_identical is None
            else f", byte-identical={self.byte_identical}"
        )
        return (
            f"{status} {self.scenario}: model={self.predicted} "
            f"real={self.actual}{byte} ({self.detail})"
        )


class _ReplayableFaults:
    """Witness-search wrapper keeping only replay-deterministic faults.

    A witness schedule is safe to assert a terminal class on only when
    every fault in it surfaces in the real backend exactly where the model
    discovers it (at the victim shard's collect):

    * **corrupt** faults damage exactly one result blob and nothing else —
      always interleaving-robust;
    * **kills** are kept only when (a) the phase-ordinal stamp says
      execution phase (``pord=1``: the worker at least ran the victim's
      shard body before dying), and (b) the victim is the *last* shard in
      the worker's queue.  A kill on a worker with further queued shards
      can beat the parent's remaining submits to that worker — the death
      then surfaces as a BrokenProcessPool at a sibling's *submit*
      (uncapped submit-path respawn) instead of at collect (capped
      ladder), and the two interleavings reach different terminal
      classes.  With no submits left to race, the death always waits at
      the victim's collect, matching the model's discovery point.

    Dropped entirely: install-phase kills (``pord=0``, immediate death,
    maximal submit race) and hangs (discovery depends on timeout tuning).
    Before the phase-ordinal stamp, kills could not be told apart at all
    and witness search was corrupt-only; the stamp un-skips kill coverage.

    ``kills_only=True`` additionally drops corrupts, forcing the witness
    to exercise the kill→respawn rungs of the ladder.
    """

    _KILL = re.compile(r"fault\.kill w(?P<worker>\d+)")

    def __init__(self, model, kills_only: bool = False):
        self.model = model
        self.kills_only = kills_only
        self.TERMINALS = model.TERMINALS

    def initial_state(self):
        return self.model.initial_state()

    def actions(self, s):
        acts = []
        for a, t in self.model.actions(s):
            if a.startswith("fault.hang"):
                continue
            m = self._KILL.match(a)
            if m and (
                " pord=1" not in a
                or len(s.queues[int(m.group("worker"))]) != 1
            ):
                continue
            if self.kills_only and a.startswith("fault.corrupt"):
                continue
            acts.append((a, t))
        return acts

    def classify(self, s):
        return self.model.classify(s)

    def invariants(self):
        return self.model.invariants()


# ------------------------------------------------------ commit-model cases
def _commit_scenario(name: str, cfg: CommitConfig, predicate,
                     predicted: str, faults: Optional[str] = None
                     ) -> ConformResult:
    """``faults``: None searches the unrestricted model; ``"replayable"``
    keeps corrupts + execution-phase kills; ``"kills"`` keeps only
    execution-phase kills."""
    model = CommitModel(cfg)
    if faults == "replayable":
        searched = _ReplayableFaults(model)
    elif faults == "kills":
        searched = _ReplayableFaults(model, kills_only=True)
    else:
        searched = model
    trace = find_trace(searched, predicate)
    if trace is None:
        return ConformResult(name, predicted, "no-witness", ok=False,
                             detail="model produced no witness trace")
    schedule = schedule_from_trace(trace)
    policy = _policy_for(cfg, schedule)

    ref_rt, ref_bytes = _run_commit_program(cfg.shards, cfg.workers)
    rt, out_bytes = _run_commit_program(cfg.shards, cfg.workers,
                                        schedule, policy)
    actual = _classify_run(rt)
    identical = None
    detail = (
        f"{len(schedule.entries)} scheduled fault(s), "
        f"retries={rt.backend.stats.shard_retries}, "
        f"respawns={rt.backend.stats.worker_respawns}, "
        f"fallbacks={rt.backend.stats.fallbacks}, "
        f"poisoned={rt.stats.launches_poisoned}"
    )
    ok = actual == predicted
    if predicted in ("committed", "serial-fallback"):
        # Recovered and fallback runs promise byte-identity to fault-free.
        identical = (
            out_bytes == ref_bytes
            and _stats_dict(rt) == _stats_dict(ref_rt)
        )
        ok = ok and identical
        if rt.fault_injector is not None:
            ok = ok and rt.fault_injector.fired_count >= len(
                schedule.entries
            )
    return ConformResult(name, predicted, actual, ok=ok,
                         byte_identical=identical, detail=detail,
                         trace_actions=[a for a, _ in trace])


def _scenario_committed_with_recovery() -> ConformResult:
    cfg = CommitConfig(workers=2, shards=3, faults=1,
                       same_worker_retries=1, respawns=2)
    return _commit_scenario(
        "committed-with-recovery", cfg,
        lambda s: s.outcome == "committed" and any(g > 0 for g in s.gens),
        "committed",
    )


def _scenario_serial_fallback() -> ConformResult:
    cfg = CommitConfig(workers=2, shards=3, faults=3,
                       same_worker_retries=1, respawns=1)
    return _commit_scenario(
        "serial-fallback", cfg,
        lambda s: s.outcome == "serial",
        "serial-fallback",
        faults="replayable",
    )


def _scenario_serial_fallback_via_kill() -> ConformResult:
    """The scenario the corrupt-only restriction used to skip: a witness
    built purely from kills, climbing respawn rungs to the fallback."""
    cfg = CommitConfig(workers=2, shards=3, faults=3,
                       same_worker_retries=1, respawns=1)
    return _commit_scenario(
        "serial-fallback-via-kill", cfg,
        lambda s: s.outcome == "serial",
        "serial-fallback",
        faults="kills",
    )


def _scenario_poisoned() -> ConformResult:
    cfg = CommitConfig(workers=2, shards=3, faults=4,
                       same_worker_retries=1, respawns=1)
    return _commit_scenario(
        "poisoned", cfg,
        lambda s: s.outcome == "poisoned",
        "poisoned",
        faults="replayable",
    )


# ------------------------------------------------------ poison-model case
#: Mirror of the real program below: regions A..E are 0..4.
_CONFORM_PROGRAM = (
    _Launch("L0", (0,), (0,)),     # bump A
    _Launch("L1", (1,), (1,)),     # bump B
    _Launch("L2", (0,), (1,)),     # derive A -> B
    _Launch("L3", (1,), (2,)),     # derive B -> C
    _Launch("L4", (2,), (3,)),     # derive C -> D
    _Launch("L5", (4,), (4,)),     # bump E (independent)
)


def _run_poison_program(schedule: Optional[FaultSchedule] = None):
    """The real twin of ``_CONFORM_PROGRAM``, on the serial backend where
    scheduled inline faults fire directly."""
    rt = Runtime(RuntimeConfig(workers=1, n_nodes=2,
                               fault_schedule=schedule))
    regions = []
    parts = []
    for name in "abcde":
        r = rt.create_region(f"pz_{name}", 8, {"x": "f8"})
        r.storage("x")[:] = np.arange(8.0)
        regions.append(r)
        parts.append(equal_partition(f"pzp{r.uid}", r, 4))
    a, b, c, d, e = parts
    fmaps = [
        rt.index_launch(_bump, 4, a),
        rt.index_launch(_bump, 4, b),
        rt.index_launch(_derive, 4, a, b),
        rt.index_launch(_derive, 4, b, c),
        rt.index_launch(_derive, 4, c, d),
        rt.index_launch(_bump, 4, e),
    ]
    statuses = []
    for fm in fmaps:
        try:
            fm.get((0,))
            statuses.append(("committed", None))
        except TaskPoisonedError as err:
            statuses.append(("poisoned", err))
    return rt, regions, statuses


def _scenario_poison_propagation() -> ConformResult:
    name = "poison-propagation"
    model = PoisonModel(PoisonConfig(program=_CONFORM_PROGRAM, faults=1))
    trace = find_trace(
        model,
        lambda s: (
            model.classify(s) == "poisoned"
            and isinstance(s.statuses[0], tuple)
            and sum(1 for st in s.statuses if st == "committed") >= 2
        ),
    )
    if trace is None:
        return ConformResult(name, "poisoned", "no-witness", ok=False,
                             detail="model produced no witness trace")
    final = trace[-1][1]
    predicted_poisoned = [
        i for i, st in enumerate(final.statuses) if isinstance(st, tuple)
    ]
    # The model faulted launch 0 directly; replay that inline.
    schedule = FaultSchedule((
        ScheduledFault(node=-1, attempt=0, kind="kill", via="inline",
                       launch=0),
    ))
    ref_rt, ref_regions, _ = _run_poison_program()
    rt, regions, statuses = _run_poison_program(schedule)

    actual_poisoned = [
        i for i, (st, _) in enumerate(statuses) if st == "poisoned"
    ]
    actual = "poisoned" if actual_poisoned else "clean"
    ok = actual == "poisoned" and actual_poisoned == predicted_poisoned
    # Origin chaining: every poison names the directly-faulted launch.
    root_err = statuses[0][1]
    if ok:
        for i in actual_poisoned:
            err = statuses[i][1]
            if err.launch != root_err.launch:
                ok = False
        # The independent launch must be untouched, byte for byte.
        last = len(statuses) - 1
        if statuses[last][0] != "committed" or (
            regions[4].storage("x").tobytes()
            != ref_regions[4].storage("x").tobytes()
        ):
            ok = False
    return ConformResult(
        name, "poisoned", actual, ok=ok,
        detail=(
            f"model poisons {predicted_poisoned}, "
            f"real poisons {actual_poisoned}, "
            f"origin={getattr(root_err, 'launch', None)!r}"
        ),
        trace_actions=[a for a, _ in trace],
    )


SCENARIOS = (
    _scenario_committed_with_recovery,
    _scenario_serial_fallback,
    _scenario_serial_fallback_via_kill,
    _scenario_poisoned,
    _scenario_poison_propagation,
)


def run_conformance() -> List[ConformResult]:
    """Run every stock scenario; callers check ``all(r.ok for r in ...)``."""
    return [build() for build in SCENARIOS]
