"""A small explicit-state model checker: BFS over hashable states.

The kernel knows nothing about workers or poison — it explores any *model*
that duck-types four methods:

* ``initial_state() -> state`` — any hashable value.
* ``actions(state) -> [(label, successor), ...]`` — every enabled
  nondeterministic transition; an empty list marks a terminal state.
* ``invariants() -> [(name, predicate), ...]`` — safety properties checked
  on every reachable state.
* ``classify(state) -> Optional[str]`` — the terminal classification of a
  state (``None`` for non-terminal states); terminals must classify as one
  of the model's ``TERMINALS``.

Optionally ``state_json(state) -> dict`` renders a state for trace export.

:func:`explore` runs breadth-first search with a visited set, evaluating
every invariant on every state it dequeues.  Violations are reported with
a **counterexample trace**: the action-labeled path from the initial state,
reconstructed through parent pointers (BFS guarantees it is a shortest
path).  Four violation kinds:

* ``invariant`` — a reachable state falsifies a safety predicate.
* ``deadlock`` — a state with no enabled actions that ``classify`` does
  not recognize as terminal.
* ``classification`` — a terminal state whose classification is not one of
  the model's declared ``TERMINALS``.
* ``nontermination`` — a reachable state from which **no** terminal state
  is reachable (a livelock cycle); detected by reverse reachability from
  the terminal set over the recorded predecessor relation, so it is exact
  on the explored (bounded) graph.

Bounded-termination ("every reachable state reaches exactly one of the
terminal outcomes") is the conjunction of no-deadlock, classification
totality, and no-nontermination — all three are checked by default.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "CheckResult",
    "Violation",
    "explore",
    "find_trace",
    "trace_json",
    "check_payload",
    "dump_violations",
]

#: One step of a counterexample/witness trace: (action label, state).
TraceStep = Tuple[str, Any]


@dataclass
class Violation:
    """One property failure with its shortest counterexample trace."""

    kind: str                   # invariant | deadlock | classification |
    #                           # nontermination
    name: str                   # which invariant (or the terminal label)
    trace: List[TraceStep]      # [(action, state), ...]; action of step 0
    #                           # is "<init>"

    def headline(self) -> str:
        return (
            f"{self.kind} violation [{self.name}]: "
            f"{len(self.trace) - 1} step(s) from initial state"
        )


@dataclass
class CheckResult:
    """Everything :func:`explore` learned about one model."""

    ok: bool
    states: int                 # distinct states visited
    transitions: int            # edges traversed
    max_depth: int              # longest shortest-path from the initial state
    terminals: Dict[str, int]   # classification -> count
    violations: List[Violation] = field(default_factory=list)
    truncated: bool = False     # hit max_states before the frontier drained
    elapsed_s: float = 0.0

    def summary(self) -> str:
        status = "OK" if self.ok else "FAIL"
        if self.truncated:
            status += " (truncated)"
        terms = ", ".join(
            f"{k}={v}" for k, v in sorted(self.terminals.items())
        ) or "none"
        return (
            f"{status}: {self.states} states, {self.transitions} "
            f"transitions, depth {self.max_depth}, terminals [{terms}], "
            f"{len(self.violations)} violation(s) in {self.elapsed_s:.2f}s"
        )


def _rebuild_trace(state, parents) -> List[TraceStep]:
    """Walk parent pointers back to the initial state."""
    steps: List[TraceStep] = []
    cursor = state
    while cursor is not None:
        parent, action = parents[cursor]
        steps.append((action, cursor))
        cursor = parent
    steps.reverse()
    return steps


def explore(
    model,
    max_states: int = 2_000_000,
    metrics=None,
    check_termination: bool = True,
    stop_at_first: bool = False,
) -> CheckResult:
    """Exhaustively explore ``model`` breadth-first, checking invariants.

    ``max_states`` bounds the visited set (the result is marked
    ``truncated`` if hit — invariants were still checked on everything
    visited, but absence of violations is then not a proof).  ``metrics``
    is an optional :class:`~repro.obs.metrics.MetricsRegistry`; the checker
    counts ``check.states`` / ``check.transitions`` / ``check.violations``
    labeled by model name.  ``stop_at_first`` returns after the first
    violation instead of collecting all of them.
    """
    start = time.perf_counter()
    model_name = type(model).__name__
    invariants = list(model.invariants())
    terminals_declared = set(getattr(model, "TERMINALS", ()))

    init = model.initial_state()
    #: state -> (parent state | None, action label)
    parents: Dict[Any, Tuple[Any, str]] = {init: (None, "<init>")}
    #: state -> depth (doubles as the visited set beyond ``parents``)
    depth: Dict[Any, int] = {init: 0}
    #: predecessor multimap for the reverse-reachability livelock check.
    preds: Dict[Any, List[Any]] = {}
    terminal_states: List[Any] = []
    terminals: Dict[str, int] = {}
    violations: List[Violation] = []
    transitions = 0
    max_depth = 0
    truncated = False

    def record(kind: str, name: str, state) -> None:
        violations.append(Violation(kind, name, _rebuild_trace(state, parents)))
        if metrics is not None:
            metrics.inc("check.violations", 1.0, model=model_name, kind=kind)

    stop = False
    frontier: List[Any] = [init]
    while frontier and not stop:
        next_frontier: List[Any] = []
        for state in frontier:
            max_depth = max(max_depth, depth[state])
            for name, predicate in invariants:
                if not predicate(state):
                    record("invariant", name, state)
                    stop = stop or stop_at_first
            if stop:
                break
            successors = model.actions(state)
            transitions += len(successors)
            if not successors:
                label = model.classify(state)
                if label is None:
                    record("deadlock", "no-enabled-action", state)
                    stop = stop or stop_at_first
                elif label not in terminals_declared:
                    record("classification", label, state)
                    stop = stop or stop_at_first
                else:
                    terminals[label] = terminals.get(label, 0) + 1
                    terminal_states.append(state)
                if stop:
                    break
                continue
            for action, succ in successors:
                preds.setdefault(succ, []).append(state)
                if succ in depth:
                    continue
                if len(depth) >= max_states:
                    truncated = True
                    continue
                depth[succ] = depth[state] + 1
                parents[succ] = (state, action)
                next_frontier.append(succ)
        frontier = next_frontier

    # Livelock detection: every visited state must reach *some* terminal.
    # Reverse BFS from the terminal set over the predecessor relation; any
    # visited state left unmarked can loop forever without terminating.
    # Only exact on a complete exploration, so skip when truncated.
    if check_termination and not truncated and not (
        stop_at_first and violations
    ):
        reaches: set = set(terminal_states)
        stack = list(terminal_states)
        while stack:
            state = stack.pop()
            for pred in preds.get(state, ()):
                if pred not in reaches:
                    reaches.add(pred)
                    stack.append(pred)
        for state in depth:
            if state not in reaches:
                record("nontermination", "cannot-reach-terminal", state)
                if stop_at_first:
                    break

    if metrics is not None:
        metrics.inc("check.states", float(len(depth)), model=model_name)
        metrics.inc("check.transitions", float(transitions), model=model_name)

    return CheckResult(
        ok=not violations,
        states=len(depth),
        transitions=transitions,
        max_depth=max_depth,
        terminals=terminals,
        violations=violations,
        truncated=truncated,
        elapsed_s=time.perf_counter() - start,
    )


def find_trace(
    model,
    predicate: Callable[[Any], bool],
    max_states: int = 2_000_000,
) -> Optional[List[TraceStep]]:
    """Shortest action path to a state satisfying ``predicate``.

    Used to extract *witness* traces (e.g. "a run that commits after a
    respawn") for the conformance harness; returns ``None`` if no
    reachable state matches within the bound.
    """
    init = model.initial_state()
    parents: Dict[Any, Tuple[Any, str]] = {init: (None, "<init>")}
    frontier = [init]
    if predicate(init):
        return _rebuild_trace(init, parents)
    while frontier:
        next_frontier: List[Any] = []
        for state in frontier:
            for action, succ in model.actions(state):
                if succ in parents:
                    continue
                parents[succ] = (state, action)
                if predicate(succ):
                    return _rebuild_trace(succ, parents)
                if len(parents) < max_states:
                    next_frontier.append(succ)
        frontier = next_frontier
    return None


def trace_json(model, trace: List[TraceStep]) -> List[dict]:
    """Render a trace for export, via the model's ``state_json`` if any."""
    render = getattr(model, "state_json", None)
    out = []
    for i, (action, state) in enumerate(trace):
        entry = {"step": i, "action": action}
        if render is not None:
            entry["state"] = render(state)
        else:
            entry["state"] = repr(state)
        out.append(entry)
    return out


def check_payload(model, result: CheckResult) -> dict:
    """JSON-serializable report of one model's check, traces included."""
    return {
        "model": type(model).__name__,
        "summary": result.summary(),
        "ok": result.ok,
        "states": result.states,
        "transitions": result.transitions,
        "terminals": result.terminals,
        "violations": [
            {
                "kind": v.kind,
                "name": v.name,
                "headline": v.headline(),
                "trace": trace_json(model, v.trace),
            }
            for v in result.violations
        ],
    }


def dump_violations(model, result: CheckResult, path: str) -> None:
    """Write every violation (or the summary if none) as JSON to ``path``."""
    with open(path, "w") as fh:
        json.dump(check_payload(model, result), fh, indent=2, sort_keys=True)
        fh.write("\n")
