"""Model of poisoned-future propagation through region taint.

Abstraction of the runtime's poison protocol (``src/repro/runtime/
runtime.py`` + ``futures.py`` + ``physical.py``): a fixed program of index
launches, each reading and writing a set of regions, runs in issue order.
A bounded fault budget lets any launch fail *directly* (an injected fault
survives the whole recovery ladder); a directly-poisoned launch taints the
regions it writes.  Every later launch that touches a tainted region must
be poisoned by *propagation* — before it runs (``poison_for`` at issue
time) — carrying the **origin**: the launch whose direct fault started the
chain, however many hops away.  Taint is first-writer-wins: once a region
carries an origin, later poisoned writers must not overwrite it, or the
diagnosis a user reads from a ``TaskPoisonedError`` would drift away from
the root cause.

Invariants:

* **poison-completeness** — a committed launch touched no region that was
  tainted before it ran (nothing escapes the taint).
* **origin-chaining** — every poisoned launch's origin is a launch that
  was *directly* poisoned (the chain bottoms out at a real fault).
* **no-overtaint** — a propagated poison can point back to some tainted
  region the launch actually touched (nothing is poisoned spuriously).
* **first-writer-wins** — taint origins are never overwritten.

Mutations seed real bug patterns: ``skip-read-taint`` checks only write
sets at issue time (a launch *reading* poisoned data commits), and
``taint-overwrite`` lets later writers replace a region's origin.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

__all__ = ["PoisonConfig", "PoisonModel", "PoisonState", "MUTATIONS"]

MUTATIONS = {
    "skip-read-taint": (
        "issue-time poison check consults only write sets, so a launch "
        "reading a tainted region commits on poisoned data"
    ),
    "taint-overwrite": (
        "a poisoned writer overwrites an existing region taint, losing "
        "the original fault origin"
    ),
}


class _Launch(NamedTuple):
    name: str
    reads: Tuple[int, ...]
    writes: Tuple[int, ...]


#: The default program: a diamond of dependences over regions A..E
#: (0..4).  L5 is independent of every taintable region, so every faulty
#: schedule must still commit it — propagation may not over-approximate.
DEFAULT_PROGRAM = (
    _Launch("L0", (), (0,)),        # writes A
    _Launch("L1", (), (1,)),        # writes B
    _Launch("L2", (0,), (1,)),      # reads A, writes B
    _Launch("L3", (1,), (2,)),      # reads B, writes C
    _Launch("L4", (0, 2), (3,)),    # reads A and C, writes D
    _Launch("L5", (), (4,)),        # independent: writes E
)


class PoisonConfig(NamedTuple):
    program: Tuple[_Launch, ...] = DEFAULT_PROGRAM
    faults: int = 2

    def describe(self) -> str:
        regions = {
            r for l in self.program for r in l.reads + l.writes
        }
        return (
            f"{len(self.program)} launch(es) over {len(regions)} "
            f"region(s), {self.faults} fault(s)"
        )


class PoisonState(NamedTuple):
    idx: int                       # next launch to issue
    #: per launch: 'pending' | 'committed' | ('poisoned', origin,
    #: propagated)
    statuses: tuple
    #: per region: None | (origin launch index, tainter launch index)
    taints: tuple
    budget: int
    flags: frozenset


class PoisonModel:
    """Poison propagation as a checkable transition system."""

    TERMINALS = ("clean", "poisoned")

    def __init__(self, config: PoisonConfig = PoisonConfig(),
                 mutation: Optional[str] = None):
        if mutation is not None and mutation not in MUTATIONS:
            raise ValueError(f"unknown mutation {mutation!r}")
        self.cfg = config
        self.mutation = mutation
        self.n_regions = 1 + max(
            (r for l in config.program for r in l.reads + l.writes),
            default=-1,
        )

    def initial_state(self) -> PoisonState:
        return PoisonState(
            idx=0,
            statuses=("pending",) * len(self.cfg.program),
            taints=(None,) * self.n_regions,
            budget=self.cfg.faults,
            flags=frozenset(),
        )

    # ------------------------------------------------------------ invariants
    def _touched(self, i: int) -> Tuple[int, ...]:
        launch = self.cfg.program[i]
        return tuple(launch.reads) + tuple(launch.writes)

    def invariants(self):
        def poison_completeness(s: PoisonState) -> bool:
            for i, status in enumerate(s.statuses):
                if status != "committed":
                    continue
                for r in self._touched(i):
                    taint = s.taints[r]
                    if taint is not None and taint[1] < i:
                        return False  # ran over pre-existing taint
            return True

        def origin_chaining(s: PoisonState) -> bool:
            for status in s.statuses:
                if isinstance(status, tuple):
                    _, origin, _ = status
                    root = s.statuses[origin]
                    if not (isinstance(root, tuple) and not root[2]):
                        return False  # origin is not directly poisoned
            return True

        def no_overtaint(s: PoisonState) -> bool:
            for i, status in enumerate(s.statuses):
                if isinstance(status, tuple) and status[2]:
                    if not any(
                        s.taints[r] is not None and s.taints[r][1] < i
                        for r in self._touched(i)
                    ):
                        return False  # propagated from nowhere
            return True

        def first_writer_wins(s: PoisonState) -> bool:
            return "taint_overwritten" not in s.flags

        return [
            ("poison-completeness", poison_completeness),
            ("origin-chaining", origin_chaining),
            ("no-overtaint", no_overtaint),
            ("first-writer-wins", first_writer_wins),
        ]

    def classify(self, s: PoisonState) -> Optional[str]:
        if s.idx < len(self.cfg.program):
            return None
        if any(isinstance(st, tuple) for st in s.statuses):
            return "poisoned"
        return "clean"

    # --------------------------------------------------------------- actions
    def _taint_writes(self, taints: tuple, i: int, origin: int,
                      flags: frozenset) -> Tuple[tuple, frozenset]:
        out = list(taints)
        for r in self.cfg.program[i].writes:
            if out[r] is None:
                out[r] = (origin, i)
            elif self.mutation == "taint-overwrite":
                if out[r][0] != origin:
                    flags = flags | {"taint_overwritten"}
                out[r] = (origin, i)
            # else: first writer wins, taint kept
        return tuple(out), flags

    def actions(self, s: PoisonState) -> List[Tuple[str, PoisonState]]:
        if s.idx >= len(self.cfg.program):
            return []
        i = s.idx
        launch = self.cfg.program[i]
        checked = (
            launch.writes if self.mutation == "skip-read-taint"
            else self._touched(i)
        )
        tainted = [r for r in checked if s.taints[r] is not None]
        if tainted:
            # Issue-time poison_for pre-check: the launch is poisoned by
            # propagation before it runs, carrying the first-found origin.
            origin = s.taints[min(tainted)][0]
            taints, flags = self._taint_writes(
                s.taints, i, origin, s.flags
            )
            return [(
                f"issue.propagate {launch.name} origin=L{origin}",
                s._replace(
                    idx=i + 1,
                    statuses=s.statuses[:i]
                    + (("poisoned", origin, True),)
                    + s.statuses[i + 1:],
                    taints=taints,
                    flags=flags,
                ),
            )]
        acts = [(
            f"issue.commit {launch.name}",
            s._replace(
                idx=i + 1,
                statuses=s.statuses[:i] + ("committed",)
                + s.statuses[i + 1:],
            ),
        )]
        if s.budget > 0:
            taints, flags = self._taint_writes(s.taints, i, i, s.flags)
            acts.append((
                f"issue.fault {launch.name}",
                s._replace(
                    idx=i + 1,
                    statuses=s.statuses[:i]
                    + (("poisoned", i, False),)
                    + s.statuses[i + 1:],
                    taints=taints,
                    budget=s.budget - 1,
                    flags=flags,
                ),
            ))
        return acts

    # ------------------------------------------------------------ rendering
    def state_json(self, s: PoisonState) -> dict:
        def fmt(status):
            if isinstance(status, tuple):
                _, origin, propagated = status
                how = "propagated" if propagated else "direct"
                return f"poisoned(origin=L{origin}, {how})"
            return status

        return {
            "next_launch": s.idx,
            "budget": s.budget,
            "launches": [
                {"name": self.cfg.program[i].name, "status": fmt(st)}
                for i, st in enumerate(s.statuses)
            ],
            "taints": [
                {"region": r, "origin": f"L{t[0]}", "tainter": f"L{t[1]}"}
                for r, t in enumerate(s.taints)
                if t is not None
            ],
            "flags": sorted(s.flags),
        }
