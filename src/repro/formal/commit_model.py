"""Model of the shard-commit protocol: generations, shipments, recovery.

This is an abstraction of one ``ParallelBackend`` dispatch (see
``src/repro/exec/parallel.py``): ``S`` shards submitted to ``W``
single-process workers with deterministic affinity (shard ``i`` to worker
``i % W``), collected strictly in shard order, with a bounded fault budget
driving nondeterministic kill / hang / corrupt actions against whichever
shard a worker is currently running.  The model mirrors the real recovery
ladder transition for transition:

* tier 1 — same-worker retry (corrupt result, cancelled future, or any
  failure whose submission generation is stale: the worker was already
  replaced by a sibling shard's recovery, so the fresh process gets the
  resubmission and the retry is not charged when stale);
* tier 2 — respawn (dead or wedged process; bumps the worker generation,
  wipes both the worker's actual state and the parent's belief);
* tier 3 — serial fallback (ladder exhausted: every worker is reset and
  the launch re-runs serially);
* tier 4 — poison (a fault fired on the serial path too).

The protocol-critical state the model tracks and the real code must get
right:

* ``actual[k]`` — what worker ``k``'s process really holds (grows when a
  shard's install phase runs, vanishes on respawn);
* ``belief[k]`` — what the parent *thinks* it holds (``pool.caches``:
  grows only at commit, vanishes on respawn);
* ``shipments`` — ``(worker, generation, shard)`` cache-delta claims,
  stamped with the generation **at submit time**, filtered against the
  worker's current generation at commit.

The central safety invariant is **cache coherence**: ``belief[k] ⊆
actual[k]`` always — the parent must never believe a worker holds state it
does not, or the next launch ships a delta the worker cannot apply.  The
``collect-time-gen-stamp`` mutation reproduces a real bug this model
found in the pre-PR-6 backend: stamping shipments with the generation at
*collect* time launders state banked by an already-respawned process past
the commit-side generation filter.

Abstractions (deliberate): faults target only the shard a worker is
currently running (killing an idle worker is invisible until the next
submit, which the real backend already handles with a bounded
submit-path respawn); ``hang`` wedges the worker until the parent's
timeout converts it into a respawn; the items a shard installs are
identified with the shard id itself.
"""

from __future__ import annotations

from typing import FrozenSet, List, NamedTuple, Optional, Tuple

__all__ = ["CommitConfig", "CommitModel", "CommitState", "MUTATIONS",
           "PHASES"]

#: Shard-pipeline phases, in pipeline order — the index of a phase in this
#: tuple is the ``pord`` ordinal stamped on fault actions.
PHASES = ("install", "execution")

#: Mutation name -> one-line description of the seeded protocol bug.
MUTATIONS = {
    "skip-commit-gen-check": (
        "commit merges every shipment without checking the worker's "
        "current generation against the shipment's stamp"
    ),
    "collect-time-gen-stamp": (
        "shipments are stamped with the generation at collect time "
        "instead of submit time (the real pre-PR-6 bug)"
    ),
    "respawn-despite-stale": (
        "the ladder respawns on broken/timeout even when the failure's "
        "generation is stale, double-killing an already-fresh worker"
    ),
}


class CommitConfig(NamedTuple):
    #: The default bound covers all three terminal outcomes (a budget of 4
    #: is the smallest that exhausts one shard's full ladder into serial
    #: fallback, and the leftover firing then reaches poisoned) while
    #: exploring in well under a second.
    workers: int = 2
    shards: int = 3
    faults: int = 4
    same_worker_retries: int = 1
    respawns: int = 2

    @staticmethod
    def parse(text: str) -> "CommitConfig":
        """``WxSxF`` (e.g. ``2x3x2``) -> workers, shards, fault budget."""
        parts = text.lower().split("x")
        if len(parts) != 3:
            raise ValueError(f"bad config {text!r}: want WxSxF, e.g. 2x3x2")
        try:
            w, s, f = (int(p) for p in parts)
        except ValueError:
            raise ValueError(f"bad config {text!r}: want integers WxSxF")
        if w < 1 or s < 1 or f < 0:
            raise ValueError(f"bad config {text!r}: need W>=1, S>=1, F>=0")
        return CommitConfig(workers=w, shards=s, faults=f)

    def describe(self) -> str:
        return (
            f"{self.workers} worker(s) x {self.shards} shard(s) x "
            f"{self.faults} fault(s), retries<={self.same_worker_retries}, "
            f"respawns<={self.respawns}"
        )


class _Shard(NamedTuple):
    status: str      # inflight | ok | corrupt | dead | cancelled | collected
    worker: int
    gen: int         # worker generation stamped at submit time
    retries: int
    respawns: int


class CommitState(NamedTuple):
    cursor: int                                  # next shard to collect
    shards: Tuple[_Shard, ...]
    queues: Tuple[Tuple[int, ...], ...]          # per worker, head runs first
    gens: Tuple[int, ...]                        # per worker generation
    alive: Tuple[bool, ...]
    wedged: Tuple[bool, ...]                     # hung (until respawn)
    actual: Tuple[FrozenSet[int], ...]           # worker really holds
    belief: Tuple[FrozenSet[int], ...]           # parent thinks it holds
    shipments: Tuple[Tuple[int, int, int], ...]  # (worker, gen, shard)
    budget: int                                  # faults left to inject
    outcome: str   # '' | serial_pending | committed | serial | poisoned
    flags: FrozenSet[str]                        # mutation-tripped markers

_FAILURE_KIND = {
    "corrupt": "corrupt",
    "dead": "broken",
    "cancelled": "cancelled",
}

_CLASSIFY = {
    "committed": "committed",
    "serial": "serial-fallback",
    "poisoned": "poisoned",
}


class CommitModel:
    """The commit/recovery protocol as a checkable transition system."""

    TERMINALS = ("committed", "serial-fallback", "poisoned")

    def __init__(self, config: CommitConfig = CommitConfig(),
                 mutation: Optional[str] = None):
        if mutation is not None and mutation not in MUTATIONS:
            raise ValueError(f"unknown mutation {mutation!r}")
        self.cfg = config
        self.mutation = mutation

    # -------------------------------------------------------------- protocol
    def initial_state(self) -> CommitState:
        cfg = self.cfg
        empty = frozenset()
        return CommitState(
            cursor=0,
            shards=tuple(
                _Shard("inflight", i % cfg.workers, 0, 0, 0)
                for i in range(cfg.shards)
            ),
            queues=tuple(
                tuple(i for i in range(cfg.shards) if i % cfg.workers == k)
                for k in range(cfg.workers)
            ),
            gens=(0,) * cfg.workers,
            alive=(True,) * cfg.workers,
            wedged=(False,) * cfg.workers,
            actual=(empty,) * cfg.workers,
            belief=(empty,) * cfg.workers,
            shipments=(),
            budget=cfg.faults,
            outcome="",
            flags=frozenset(),
        )

    def invariants(self):
        def cache_coherence(s: CommitState) -> bool:
            return all(b <= a for b, a in zip(s.belief, s.actual))

        def no_stale_commit(s: CommitState) -> bool:
            return "stale_commit" not in s.flags

        def no_double_respawn(s: CommitState) -> bool:
            return "double_respawn" not in s.flags

        return [
            ("cache-coherence", cache_coherence),
            ("no-stale-commit", no_stale_commit),
            ("no-double-respawn", no_double_respawn),
        ]

    def classify(self, s: CommitState) -> Optional[str]:
        return _CLASSIFY.get(s.outcome)

    # --------------------------------------------------------------- actions
    def actions(self, s: CommitState) -> List[Tuple[str, CommitState]]:
        if s.outcome in _CLASSIFY:
            return []
        if s.outcome == "serial_pending":
            acts = [("serial.complete", s._replace(outcome="serial"))]
            if s.budget > 0:
                acts.append((
                    "serial.fault",
                    s._replace(outcome="poisoned", budget=s.budget - 1),
                ))
            return acts

        acts: List[Tuple[str, CommitState]] = []
        for k in range(self.cfg.workers):
            if not (s.alive[k] and not s.wedged[k] and s.queues[k]):
                continue
            head = s.queues[k][0]
            acts.append((
                f"work.complete w{k} shard{head}", self._complete(s, k)
            ))
            if s.budget > 0:
                att = s.shards[head].retries + s.shards[head].respawns
                for pord, phase in enumerate(PHASES):
                    # ``pord`` stamps the shard-pipeline phase ordinal so
                    # trace consumers can tell collect-deterministic
                    # execution-phase faults (pord=1: the worker dies only
                    # after every sibling submit has long completed) from
                    # install-phase ones (pord=0: the death can race the
                    # parent's remaining submits).
                    acts.append((
                        f"fault.kill w{k} shard{head} attempt{att} "
                        f"phase={phase} pord={pord}",
                        self._kill(s, k, phase),
                    ))
                    acts.append((
                        f"fault.corrupt w{k} shard{head} attempt{att} "
                        f"phase={phase} pord={pord}",
                        self._corrupt(s, k, phase),
                    ))
                acts.append((
                    f"fault.hang w{k} shard{head} attempt{att}",
                    self._hang(s, k),
                ))
        if s.cursor < self.cfg.shards:
            collect = self._collect(s)
            if collect is not None:
                acts.append(collect)
        elif s.outcome == "":
            acts.append(("commit", self._commit(s)))
        return acts

    # ------------------------------------------------------- worker actions
    @staticmethod
    def _tup(t, i, v):
        return t[:i] + (v,) + t[i + 1:]

    def _complete(self, s: CommitState, k: int) -> CommitState:
        head = s.queues[k][0]
        return s._replace(
            shards=self._tup(s.shards, head,
                             s.shards[head]._replace(status="ok")),
            actual=self._tup(s.actual, k, s.actual[k] | {head}),
            queues=self._tup(s.queues, k, s.queues[k][1:]),
        )

    def _kill(self, s: CommitState, k: int, phase: str) -> CommitState:
        head = s.queues[k][0]
        shards = list(s.shards)
        for q in s.queues[k]:
            shards[q] = shards[q]._replace(status="dead")
        actual = s.actual[k]
        if phase != "install":
            actual = actual | {head}
        return s._replace(
            shards=tuple(shards),
            queues=self._tup(s.queues, k, ()),
            alive=self._tup(s.alive, k, False),
            actual=self._tup(s.actual, k, actual),
            budget=s.budget - 1,
        )

    def _corrupt(self, s: CommitState, k: int, phase: str) -> CommitState:
        head = s.queues[k][0]
        actual = s.actual[k]
        if phase != "install":
            actual = actual | {head}
        return s._replace(
            shards=self._tup(s.shards, head,
                             s.shards[head]._replace(status="corrupt")),
            queues=self._tup(s.queues, k, s.queues[k][1:]),
            actual=self._tup(s.actual, k, actual),
            budget=s.budget - 1,
        )

    def _hang(self, s: CommitState, k: int) -> CommitState:
        return s._replace(
            wedged=self._tup(s.wedged, k, True),
            budget=s.budget - 1,
        )

    # ------------------------------------------------------- parent actions
    def _collect(self, s: CommitState):
        """The collect step for the cursor shard, or ``None`` if the
        parent is still blocked on an undecided future."""
        i = s.cursor
        sh = s.shards[i]
        k = sh.worker
        if sh.status == "ok":
            stamp = (
                s.gens[k] if self.mutation == "collect-time-gen-stamp"
                else sh.gen
            )
            return (
                f"collect.ok shard{i}",
                s._replace(
                    cursor=i + 1,
                    shards=self._tup(s.shards, i,
                                     sh._replace(status="collected")),
                    shipments=s.shipments + ((k, stamp, i),),
                ),
            )
        if sh.status in _FAILURE_KIND:
            kind = _FAILURE_KIND[sh.status]
        elif sh.status == "inflight" and s.wedged[k]:
            kind = "timeout"
        else:
            return None  # future not done: parent blocks

        cfg = self.cfg
        stale = s.gens[k] != sh.gen
        need_respawn = kind in ("broken", "timeout") and (
            not stale or self.mutation == "respawn-despite-stale"
        )
        if need_respawn:
            if sh.respawns >= cfg.respawns:
                return self._bail(s, i, kind)
            return self._respawn(s, i, kind)
        if sh.retries < cfg.same_worker_retries or stale:
            return self._retry(s, i, kind)
        if sh.respawns < cfg.respawns:
            return self._respawn(s, i, kind)
        return self._bail(s, i, kind)

    def _respawn(self, s: CommitState, i: int, kind: str):
        sh = s.shards[i]
        k = sh.worker
        flags = s.flags
        if s.gens[k] != sh.gen:
            # Only reachable under respawn-despite-stale: the failure came
            # from a generation that was already replaced, and the ladder
            # is about to kill the fresh process for its ancestor's crime.
            flags = flags | {"double_respawn"}
        gen = s.gens[k] + 1
        shards = list(s.shards)
        # cancel_futures on the retired executor: queued siblings die.
        for q in s.queues[k]:
            if q != i:
                shards[q] = shards[q]._replace(status="cancelled")
        shards[i] = sh._replace(status="inflight", gen=gen,
                                respawns=sh.respawns + 1)
        return (
            f"collect.respawn shard{i} kind={kind}",
            s._replace(
                shards=tuple(shards),
                queues=self._tup(s.queues, k, (i,)),
                gens=self._tup(s.gens, k, gen),
                alive=self._tup(s.alive, k, True),
                wedged=self._tup(s.wedged, k, False),
                actual=self._tup(s.actual, k, frozenset()),
                belief=self._tup(s.belief, k, frozenset()),
                flags=flags,
            ),
        )

    def _retry(self, s: CommitState, i: int, kind: str):
        sh = s.shards[i]
        k = sh.worker
        gens, alive, actual, belief = s.gens, s.alive, s.actual, s.belief
        if not s.alive[k]:
            # Submitting to a dead executor surfaces BrokenProcessPool at
            # submit time; the real backend revives it out-of-ladder
            # (bounded submit-path respawn) and resubmits.
            gens = self._tup(gens, k, s.gens[k] + 1)
            alive = self._tup(alive, k, True)
            actual = self._tup(actual, k, frozenset())
            belief = self._tup(belief, k, frozenset())
        return (
            f"collect.retry shard{i} kind={kind}",
            s._replace(
                shards=self._tup(
                    s.shards, i,
                    sh._replace(status="inflight", gen=gens[k],
                                retries=sh.retries + 1),
                ),
                queues=self._tup(s.queues, k, s.queues[k] + (i,)),
                gens=gens,
                alive=alive,
                actual=actual,
                belief=belief,
            ),
        )

    def _bail(self, s: CommitState, i: int, kind: str):
        # Tier 3: every worker reset, dispatch abandoned.  Normalize the
        # now-irrelevant dispatch state so all bail paths converge.
        cfg = self.cfg
        empty = frozenset()
        return (
            f"collect.bail shard{i} kind={kind}",
            s._replace(
                cursor=cfg.shards,
                shards=(),
                queues=((),) * cfg.workers,
                gens=(0,) * cfg.workers,
                alive=(True,) * cfg.workers,
                wedged=(False,) * cfg.workers,
                actual=(empty,) * cfg.workers,
                belief=(empty,) * cfg.workers,
                shipments=(),
                outcome="serial_pending",
            ),
        )

    def _commit(self, s: CommitState) -> CommitState:
        belief = list(s.belief)
        flags = s.flags
        for k, gen, shard_id in s.shipments:
            if self.mutation == "skip-commit-gen-check":
                if s.gens[k] != gen:
                    flags = flags | {"stale_commit"}
                belief[k] = belief[k] | {shard_id}
            elif s.gens[k] == gen:
                belief[k] = belief[k] | {shard_id}
            # else: stale shipment dropped (the correct protocol)
        return s._replace(
            outcome="committed", belief=tuple(belief), flags=flags
        )

    # ------------------------------------------------------------ rendering
    def state_json(self, s: CommitState) -> dict:
        return {
            "cursor": s.cursor,
            "outcome": s.outcome or "dispatching",
            "budget": s.budget,
            "shards": [
                {
                    "shard": i,
                    "status": sh.status,
                    "worker": sh.worker,
                    "gen": sh.gen,
                    "retries": sh.retries,
                    "respawns": sh.respawns,
                }
                for i, sh in enumerate(s.shards)
            ],
            "workers": [
                {
                    "worker": k,
                    "gen": s.gens[k],
                    "alive": s.alive[k],
                    "wedged": s.wedged[k],
                    "queue": list(s.queues[k]),
                    "actual": sorted(s.actual[k]),
                    "belief": sorted(s.belief[k]),
                }
                for k in range(len(s.gens))
            ],
            "shipments": [
                {"worker": k, "gen": g, "shard": sid}
                for k, g, sid in s.shipments
            ],
            "flags": sorted(s.flags),
        }
