"""Formal verification of the executor's concurrency protocols.

A pure-Python explicit-state model checker (:mod:`repro.formal.kernel`)
plus two protocol models abstracted from the real executor:

* :class:`~repro.formal.commit_model.CommitModel` — worker generations,
  staged cache shipments, and the four-tier recovery ladder of the
  shard-parallel backend;
* :class:`~repro.formal.poison_model.PoisonModel` — poisoned-future
  propagation through region taint with origin chaining.

Both ship *mutations* — seeded, intentionally-broken protocol variants
that must yield counterexamples, proving the checker has teeth — and a
conformance harness (:mod:`repro.formal.conform`) that replays checker
traces through the real ``ParallelBackend`` via schedule-driven fault
injection.  ``repro check`` is the CLI entry point; see
``docs/formal-verification.md``.
"""

from repro.formal.commit_model import CommitConfig, CommitModel
from repro.formal.commit_model import MUTATIONS as COMMIT_MUTATIONS
from repro.formal.kernel import (
    CheckResult,
    Violation,
    check_payload,
    dump_violations,
    explore,
    find_trace,
    trace_json,
)
from repro.formal.poison_model import MUTATIONS as POISON_MUTATIONS
from repro.formal.poison_model import PoisonConfig, PoisonModel

__all__ = [
    "CheckResult",
    "Violation",
    "explore",
    "find_trace",
    "trace_json",
    "check_payload",
    "dump_violations",
    "CommitConfig",
    "CommitModel",
    "PoisonConfig",
    "PoisonModel",
    "MUTATIONS",
    "build_mutant",
]

#: Every shipped mutation: name -> (model kind, description).  Model
#: construction goes through :func:`build_mutant` so the CLI and CI can
#: enumerate and run them uniformly.
MUTATIONS = {
    **{name: ("commit", desc) for name, desc in COMMIT_MUTATIONS.items()},
    **{name: ("poison", desc) for name, desc in POISON_MUTATIONS.items()},
}


def build_mutant(name: str, commit_config=None, poison_config=None):
    """The mutated model for ``name`` (see :data:`MUTATIONS`)."""
    if name not in MUTATIONS:
        raise ValueError(
            f"unknown mutation {name!r}; known: {', '.join(sorted(MUTATIONS))}"
        )
    kind, _ = MUTATIONS[name]
    if kind == "commit":
        return CommitModel(commit_config or CommitConfig(), mutation=name)
    return PoisonModel(poison_config or PoisonConfig(), mutation=name)
