"""Persistence for the analysis caches a warm restart can reuse.

Only the :class:`~repro.runtime.replay.DynamicCheckMemo` is persisted.
Its keys — ``(domain, ((functor description, mode), ...), color bounds,
use_numpy)`` — are *content-addressed*: pure values with structural
equality, naming nothing tied to a live process (no region uids, no
storage views).  The other replay layers (safety verdicts, expansion and
physical templates) hold references into a session's live region tree
and are deliberately rebuilt; they are cheap relative to the dynamic
check sweep the memo captures, which is the first-issue cost the paper's
§6 measures.

Format: one pickle per tenant, ``{"magic", "version", "entries"}``, with
``entries`` the memo's ``export_entries()`` list (oldest first, so
recency order survives the round trip).  Writes are atomic (temp file +
``os.replace``) so a crash mid-save leaves the previous snapshot intact.

Invalidation rule: any mismatch — magic, format version, unreadable or
truncated pickle — silently yields a *cold* cache.  A version bump is
therefore always safe: old snapshots are ignored, never misread.
"""

from __future__ import annotations

import os
import pickle
import re
import tempfile
from typing import Optional

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CACHE_MAGIC",
    "tenant_cache_path",
    "save_tenant_memo",
    "load_tenant_memo",
]

CACHE_MAGIC = "repro-check-memo"
#: Bump on any incompatible change to memo keys or CheckResult layout;
#: loaders treat a mismatched snapshot as absent (cold start).
CACHE_FORMAT_VERSION = 1


def tenant_cache_path(persist_dir: str, tenant: str) -> str:
    """The snapshot path for one tenant (name sanitized for the fs)."""
    safe = re.sub(r"[^A-Za-z0-9._-]", "_", tenant) or "default"
    return os.path.join(persist_dir, f"tenant-{safe}.pkl")


def save_tenant_memo(persist_dir: str, tenant: str, memo) -> Optional[str]:
    """Atomically snapshot ``memo`` for ``tenant``; returns the path, or
    ``None`` when the memo has nothing worth persisting."""
    entries = memo.export_entries()
    if not entries:
        return None
    os.makedirs(persist_dir, exist_ok=True)
    path = tenant_cache_path(persist_dir, tenant)
    payload = {
        "magic": CACHE_MAGIC,
        "version": CACHE_FORMAT_VERSION,
        "entries": entries,
    }
    fd, tmp = tempfile.mkstemp(
        dir=persist_dir, prefix=".tenant-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_tenant_memo(persist_dir: str, tenant: str, memo) -> int:
    """Ingest a persisted snapshot into ``memo``; returns entries
    installed (0 on any mismatch or missing/corrupt snapshot — cold)."""
    path = tenant_cache_path(persist_dir, tenant)
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError):
        return 0
    if not isinstance(payload, dict):
        return 0
    if payload.get("magic") != CACHE_MAGIC:
        return 0
    if payload.get("version") != CACHE_FORMAT_VERSION:
        return 0
    entries = payload.get("entries")
    if not isinstance(entries, list):
        return 0
    try:
        return memo.ingest_entries(entries)
    except (TypeError, ValueError):
        return 0
