"""The ``repro serve`` session service.

Architecture (see ``docs/service.md``):

* an asyncio front-end accepts many concurrent client connections over
  the framed wire protocol (``exec/wire.py``) with the same
  HELLO/WELCOME token handshake the socket workers use, extended with a
  ``tenant`` field;
* each accepted connection is a **session** owning a private
  :class:`~repro.runtime.runtime.Runtime` (its own regions, partitions,
  replay cache) — sessions of the same *tenant* additionally share one
  :class:`~repro.runtime.replay.DynamicCheckMemo`, the portable,
  persistable slice of first-issue analysis;
* all sessions multiplex onto **one** shared
  :class:`~repro.exec.pool.WorkerPool` (the module-level ``get_pool``
  registry already interns pools by ``(workers, transport)``, so the
  per-session runtimes dispatch onto the same warm workers);
* commands execute strictly one at a time on a single dedicated runtime
  thread — the runtimes, arenas and transports are not thread-safe —
  drained from per-session queues in **round-robin** order so one chatty
  session cannot starve the rest;
* **admission control**: a session whose command queue is full gets an
  immediate BUSY frame (echoing the rejected seq) instead of unbounded
  buffering; in-flight *launches* inside each session are already
  bounded by the runtime's ``pipeline_depth``.

Shutdown (SIGTERM/SIGINT or :meth:`ReproService.shutdown`) drains every
session's pipelined launches, retires the shared pool's shm arenas and
transports, and snapshots each tenant's check memo to the persist
directory — the long-running-process bugfix sweep this PR hardens.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import signal
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.exec import wire
from repro.exec.plan import dumps, loads
from repro.obs.metrics import MetricsRegistry

__all__ = ["ServiceConfig", "ReproService", "TenantState", "Session"]


@dataclass
class ServiceConfig:
    """Knobs for one :class:`ReproService` instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is ``service.port``
    token: str = "repro"
    workers: Optional[int] = None  # None = env REPRO_WORKERS, else 1
    transport: Optional[str] = None
    #: simulated node count for each session runtime's mapper; > 1 so
    #: multi-shard launches shard across nodes and take the parallel path.
    n_nodes: int = 4
    #: per-session command-queue bound; a CALL arriving while the queue
    #: holds this many undispatched commands is answered with BUSY.
    queue_limit: int = 8
    #: persisted-cache directory (None = no persistence).
    persist_dir: Optional[str] = None
    #: cache budgets applied to every session runtime + tenant memo.
    cache_entry_budget: Optional[int] = None
    cache_byte_budget: Optional[int] = None
    pipeline_depth: Optional[int] = None


@dataclass
class TenantState:
    """Per-tenant shared state: the portable analysis cache + counters."""

    name: str
    memo: Any  # DynamicCheckMemo shared by the tenant's sessions
    sessions: int = 0
    restored_entries: int = 0


@dataclass
class Session:
    """One connected client: a private runtime plus its command queue."""

    sid: int
    tenant: TenantState
    writer: asyncio.StreamWriter
    rt: Any = None
    queue: "List[Tuple[int, str, dict]]" = field(default_factory=list)
    closed: bool = False
    #: region/partition/task handles are small server-assigned ints so
    #: clients never hold (or forge) references into another session.
    handles: Dict[int, Any] = field(default_factory=dict)
    _next_handle: Any = None

    def new_handle(self, obj) -> int:
        h = next(self._next_handle)
        self.handles[h] = obj
        return h

    def resolve(self, h) -> Any:
        try:
            return self.handles[h]
        except (KeyError, TypeError):
            raise ValueError(f"unknown handle {h!r}") from None


class ReproService:
    """Accept sessions, execute their commands, keep the pool warm."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.metrics = MetricsRegistry()
        self.tenants: Dict[str, TenantState] = {}
        self.sessions: Dict[int, Session] = {}
        self._sid = itertools.count(1)
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # All runtime work happens on this one thread: runtimes, worker
        # transports and shm arenas are single-threaded by design.
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-rt"
        )
        self._dispatch_wakeup: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._stopping = False
        self._stopped = threading.Event()
        self.port: Optional[int] = None

    # ------------------------------------------------------------- tenants
    def _tenant(self, name: str) -> TenantState:
        state = self.tenants.get(name)
        if state is None:
            from repro.runtime.replay import DynamicCheckMemo

            memo = DynamicCheckMemo(
                entry_budget=self.config.cache_entry_budget,
                byte_budget=self.config.cache_byte_budget,
            )
            state = TenantState(name=name, memo=memo)
            if self.config.persist_dir:
                from repro.serve.persist import load_tenant_memo

                state.restored_entries = load_tenant_memo(
                    self.config.persist_dir, name, memo
                )
                if state.restored_entries:
                    self.metrics.inc(
                        "serve.cache_restored",
                        state.restored_entries,
                        tenant=name,
                    )
            self.tenants[name] = state
        return state

    def _make_runtime(self, session: Session):
        """Build the session's runtime (runs on the runtime thread)."""
        from repro.runtime.runtime import Runtime, RuntimeConfig

        cfg_kwargs: Dict[str, Any] = dict(
            validate_safety=True,
            n_nodes=self.config.n_nodes,
            workers=self.config.workers,
            transport=self.config.transport,
            cache_entry_budget=self.config.cache_entry_budget,
            cache_byte_budget=self.config.cache_byte_budget,
        )
        if self.config.pipeline_depth is not None:
            cfg_kwargs["pipeline_depth"] = self.config.pipeline_depth
        rt = Runtime(RuntimeConfig(**cfg_kwargs))
        # Swap in the tenant's shared check memo, re-applying the hooks
        # Runtime.__init__ put on the private one (kernels delegation,
        # worker-pool batch evaluation).
        private = rt.replay_cache.check_memo
        memo = session.tenant.memo
        memo.kernels = private.kernels or memo.kernels
        if private.batch_evaluator is not None:
            memo.batch_evaluator = private.batch_evaluator
        rt.replay_cache.check_memo = memo
        session.rt = rt
        return rt

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._dispatch_wakeup = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful shutdown (main thread only)."""
        if threading.current_thread() is not threading.main_thread():
            return
        loop = self._loop
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self.shutdown())
                )
            except (NotImplementedError, RuntimeError):
                pass

    async def serve_until_stopped(self) -> None:
        await self.start()
        self.install_signal_handlers()
        while not self._stopping:
            await asyncio.sleep(0.05)

    async def shutdown(self) -> None:
        """Drain everything, persist caches, release the pool — exactly
        the teardown a batch run gets from ``atexit``, made explicit."""
        if self._stopping:
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._dispatcher is not None:
            self._dispatch_wakeup.set()
            await self._dispatcher
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._executor, self._teardown_runtimes)
        for session in list(self.sessions.values()):
            try:
                session.writer.close()
            except Exception:
                pass
        if self.config.persist_dir:
            from repro.serve.persist import save_tenant_memo

            for state in self.tenants.values():
                save_tenant_memo(
                    self.config.persist_dir, state.name, state.memo
                )
        self._executor.shutdown(wait=True)
        self._stopped.set()

    def _teardown_runtimes(self) -> None:
        """Runtime-thread half of shutdown: drain in-flight pipelined
        launches, then retire the shared pool (shm arenas, transports)."""
        for session in list(self.sessions.values()):
            rt = session.rt
            if rt is None:
                continue
            try:
                rt.drain()
            except Exception:
                pass
            try:
                rt.backend.shutdown()
            except Exception:
                pass
        from repro.exec.pool import shutdown_pools

        shutdown_pools()

    # ----------------------------------------------------------- connection
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = wire.FrameDecoder(check_version=False)
        session: Optional[Session] = None
        try:
            hello = await self._read_frame(reader, decoder)
            if hello is None or hello.msg != wire.HELLO:
                writer.close()
                return
            if hello.version != wire.PROTOCOL_VERSION:
                writer.write(wire.pack_frame(
                    wire.REJECT, 0, wire.json_payload(
                        reason=f"protocol version {hello.version} != "
                               f"{wire.PROTOCOL_VERSION}"
                    ),
                ))
                await writer.drain()
                writer.close()
                return
            fields = wire.parse_json(hello.payload)
            if fields.get("token") != self.config.token:
                writer.write(wire.pack_frame(
                    wire.REJECT, 0, wire.json_payload(reason="bad token")
                ))
                await writer.drain()
                writer.close()
                self.metrics.inc("serve.rejects", reason="token")
                return
            tenant = self._tenant(str(fields.get("tenant", "default")))
            session = Session(
                sid=next(self._sid),
                tenant=tenant,
                writer=writer,
                _next_handle=itertools.count(1),
            )
            tenant.sessions += 1
            self.sessions[session.sid] = session
            self.metrics.inc("serve.sessions", tenant=tenant.name)
            await asyncio.get_running_loop().run_in_executor(
                self._executor, self._make_runtime, session
            )
            writer.write(wire.pack_frame(
                wire.WELCOME, 0, wire.json_payload(session=session.sid)
            ))
            await writer.drain()

            while not self._stopping:
                frame = await self._read_frame(reader, decoder)
                if frame is None or frame.msg == wire.SHUTDOWN:
                    break
                if frame.msg != wire.CALL:
                    continue
                try:
                    command, payload = loads(frame.payload)
                except Exception:
                    writer.write(wire.pack_frame(
                        wire.RESULT, frame.seq,
                        dumps(("error", "undecodable CALL payload")),
                    ))
                    await writer.drain()
                    continue
                if len(session.queue) >= self.config.queue_limit:
                    # Admission control: reject, don't buffer unboundedly.
                    writer.write(wire.pack_frame(wire.BUSY, frame.seq))
                    await writer.drain()
                    self.metrics.inc(
                        "serve.busy_rejections", tenant=tenant.name
                    )
                    continue
                session.queue.append((frame.seq, command, payload))
                self.metrics.inc("serve.admissions", tenant=tenant.name)
                self._dispatch_wakeup.set()
        finally:
            if session is not None:
                session.closed = True
                # Leave teardown of the session runtime to the dispatcher
                # (its queue may still hold admitted commands).
                self._dispatch_wakeup.set()

    @staticmethod
    async def _read_frame(reader, decoder):
        while True:
            frame = decoder.next()
            if frame is not None:
                return frame
            chunk = await reader.read(65536)
            if not chunk:
                return None
            decoder.feed(chunk)

    # ------------------------------------------------------------ dispatch
    async def _dispatch_loop(self) -> None:
        """Round-robin one command per ready session per sweep."""
        loop = asyncio.get_running_loop()
        rr: List[int] = []
        while True:
            if self._stopping and not any(
                s.queue for s in self.sessions.values()
            ):
                return
            ready = [s for s in self.sessions.values() if s.queue]
            if not ready:
                if self._stopping:
                    return
                self._dispatch_wakeup.clear()
                # Re-check after clear: a frame may have been admitted
                # between the scan and the clear.
                if not any(s.queue for s in self.sessions.values()):
                    await self._dispatch_wakeup.wait()
                continue
            # Stable round-robin: continue the rotation from last sweep.
            order = {sid: i for i, sid in enumerate(rr)}
            ready.sort(key=lambda s: order.get(s.sid, len(order)))
            for session in ready:
                if not session.queue:
                    continue
                seq, command, payload = session.queue.pop(0)
                rr = [s.sid for s in ready if s.sid != session.sid]
                rr.append(session.sid)
                try:
                    result = await loop.run_in_executor(
                        self._executor,
                        self._execute, session, command, payload,
                    )
                    reply = dumps(("ok", result))
                except Exception as exc:  # surfaced to the client, typed
                    reply = dumps(("error", f"{type(exc).__name__}: {exc}"))
                if not session.closed:
                    try:
                        session.writer.write(
                            wire.pack_frame(wire.RESULT, seq, reply)
                        )
                        await session.writer.drain()
                    except (ConnectionError, RuntimeError):
                        session.closed = True
            self._reap_closed()

    def _reap_closed(self) -> None:
        for sid, session in list(self.sessions.items()):
            if session.closed and not session.queue:
                del self.sessions[sid]
                session.tenant.sessions -= 1
                rt = session.rt
                if rt is not None:
                    # Drain on the runtime thread; the shared pool stays
                    # warm for the tenant's next session.
                    self._executor.submit(self._drain_quietly, rt)

    @staticmethod
    def _drain_quietly(rt) -> None:
        try:
            rt.drain()
        except Exception:
            pass

    # ------------------------------------------------------------ commands
    def _execute(self, session: Session, command: str, payload: dict):
        """One session command, on the runtime thread.  Commands are the
        runtime's issuance API, handle-indirected; results are plain
        picklable values."""
        rt = session.rt
        if command == "define_task":
            task = loads(payload["blob"])
            # Re-stamp the uid from this process's counter: worker caches
            # key task blobs by uid, and two clients' counters collide.
            from repro.runtime.task import _next_task_id

            task.uid = next(_next_task_id)
            return session.new_handle(task)
        if command == "create_region":
            region = rt.create_region(
                payload["name"], payload["shape"], payload["fields"]
            )
            return session.new_handle(region)
        if command == "equal_partition":
            from repro.data.partition import equal_partition

            part = equal_partition(
                payload["name"],
                session.resolve(payload["region"]),
                payload["n"],
            )
            return session.new_handle(part)
        if command == "write_field":
            rt.drain()
            region = session.resolve(payload["region"])
            region.storage(payload["fname"])[:] = payload["values"]
            return None
        if command == "read_field":
            rt.drain()
            region = session.resolve(payload["region"])
            return region.storage(payload["fname"]).copy()
        if command == "index_launch":
            task = session.resolve(payload["task"])
            req = session.resolve(payload["partition"])
            functor = payload.get("functor")
            if functor is not None:
                req = (req, functor)
            out = rt.index_launch(
                task,
                payload["domain"],
                req,
                args=tuple(payload.get("args", ())),
                reduce=payload.get("reduce"),
            )
            if payload.get("reduce"):
                return out.get()
            return None
        if command == "begin_trace":
            rt.begin_trace(payload["trace_id"])
            return None
        if command == "end_trace":
            rt.end_trace(payload["trace_id"])
            return None
        if command == "drain":
            rt.drain()
            return None
        if command == "stats":
            memo = session.tenant.memo
            bstats = getattr(rt.backend, "stats", None)
            return {
                "tenant": session.tenant.name,
                "session": session.sid,
                "check_memo_hits": memo.hits,
                "check_memo_misses": memo.misses,
                "check_memo_entries": len(memo),
                "check_memo_evictions": memo.evictions,
                "restored_entries": session.tenant.restored_entries,
                "replay_cache_entries": len(rt.replay_cache._physical),
                "replay_cache_evictions": rt.replay_cache.evictions,
                "analysis_cache_hits": rt.stats.analysis_cache_hits,
                "launches_verified_dynamic":
                    rt.stats.launches_verified_dynamic,
                "plan_memo_hits": getattr(bstats, "plan_memo_hits", 0),
                "tasks_executed": rt.stats.tasks_executed,
            }
        raise ValueError(f"unknown command {command!r}")
