"""Synthetic many-client load generator for the session service.

Each synthetic client is one thread with its own :class:`ServiceClient`
session: it creates a region (deliberately reusing the *same* region
name across clients — isolation means names never collide across
sessions), partitions it, ships the workload task, then issues a
sustained stream of index launches, timing each issuance round trip.
Half the launches go through a :class:`ModularFunctor` so the
dynamic-check path — the analysis the persisted cache captures — is
exercised, not just the static-verification fast path.

The emitted report (``results/BENCH_service.json`` via the benchmark
suite) carries sustained launches/sec and p50/p99 issuance latency,
aggregated across clients, plus per-tenant cache counters from the
service's ``stats`` command.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

import numpy as np

from repro.runtime.task import task

__all__ = ["run_loadgen"]


def _bump_fn(ctx, r):
    r.write("x", r.read("x") + 1.0)


#: The workload task, wrapped once at import so the underlying function
#: pickles by reference into the service process.
BUMP = task(privileges=["reads writes"])(_bump_fn)


def _percentile(sorted_vals: List[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def _client_body(host, port, token, tenant, launches, shards, elems,
                 out, errors, index):
    from repro.core.projection import ModularFunctor
    from repro.serve.client import ServiceBusy, ServiceClient

    latencies: List[float] = []
    busy = 0
    try:
        with ServiceClient(host, port, token=token, tenant=tenant) as cli:
            region = cli.create_region("load_rx", elems, {"x": "f8"})
            cli.write_field(region, "x", np.arange(float(elems)))
            part = cli.equal_partition("load_p", region, shards)
            bump = cli.define_task(BUMP)
            t0 = time.perf_counter()
            # Launches ride inside traces (the Legion model: replayed
            # iterations are where issuance hits replay cost) — one
            # static + one dynamically-checked launch per iteration.
            for i in range(launches // 2):
                cli.begin_trace(7)
                for functor in (None, ModularFunctor(shards, 1)):
                    mark = time.perf_counter()
                    while True:
                        try:
                            cli.index_launch(bump, shards, part,
                                             functor=functor)
                            break
                        except ServiceBusy:
                            busy += 1
                            time.sleep(0.001)
                    latencies.append(time.perf_counter() - mark)
                cli.end_trace(7)
            cli.drain()
            elapsed = time.perf_counter() - t0
            expected = np.arange(float(elems)) + len(latencies)
            got = cli.read_field(region, "x")
            stats = cli.stats()
    except Exception as exc:  # surfaced in the aggregate report
        errors.append(f"client {index}: {type(exc).__name__}: {exc}")
        return
    out[index] = {
        "latencies": latencies,
        "elapsed": elapsed,
        "busy_retries": busy,
        "correct": bool(np.array_equal(got, expected)),
        "stats": stats,
    }


def run_loadgen(
    host: str,
    port: int,
    token: str = "repro",
    clients: int = 8,
    launches: int = 40,
    shards: int = 8,
    elems: int = 64,
    tenants: Optional[int] = None,
) -> dict:
    """Drive ``clients`` concurrent sessions; return the aggregate report.

    ``tenants`` spreads the clients over that many distinct tenant names
    (default: one tenant per client, the strictest isolation shape).
    """
    n_tenants = tenants if tenants is not None else clients
    results: List[Optional[dict]] = [None] * clients
    errors: List[str] = []
    threads = [
        threading.Thread(
            target=_client_body,
            args=(host, port, token, f"tenant{i % n_tenants}", launches,
                  shards, elems, results, errors, i),
            daemon=True,
        )
        for i in range(clients)
    ]
    wall0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    wall = time.perf_counter() - wall0

    done = [r for r in results if r is not None]
    all_lat = sorted(
        lat for r in done for lat in r["latencies"]
    )
    total_launches = sum(len(r["latencies"]) for r in done)
    report = {
        "clients": clients,
        "clients_completed": len(done),
        "tenants": n_tenants,
        "launches_per_client": launches,
        "shards": shards,
        "total_launches": total_launches,
        "wall_s": wall,
        "launches_per_s": total_launches / wall if wall > 0 else 0.0,
        "issue_p50_us": _percentile(all_lat, 0.50) * 1e6,
        "issue_p99_us": _percentile(all_lat, 0.99) * 1e6,
        "busy_retries": sum(r["busy_retries"] for r in done),
        "all_correct": bool(done) and all(r["correct"] for r in done),
        "errors": errors,
        "client_stats": [r["stats"] for r in done],
    }
    return report
