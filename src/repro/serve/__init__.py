"""Always-on session service (``repro serve``).

A long-running front-end that multiplexes many concurrent client
sessions onto one shared worker pool, so issuance stays at replay cost
instead of re-paying first-issue analysis and pool spin-up per process.
See ``docs/service.md`` for the architecture.
"""

from repro.serve.client import ServiceBusy, ServiceClient, ServiceError
from repro.serve.loadgen import run_loadgen
from repro.serve.persist import (
    CACHE_FORMAT_VERSION, load_tenant_memo, save_tenant_memo,
    tenant_cache_path,
)
from repro.serve.service import ReproService, ServiceConfig

__all__ = [
    "ReproService",
    "ServiceConfig",
    "ServiceClient",
    "ServiceBusy",
    "ServiceError",
    "run_loadgen",
    "CACHE_FORMAT_VERSION",
    "save_tenant_memo",
    "load_tenant_memo",
    "tenant_cache_path",
]
