"""Synchronous client for the ``repro serve`` session service.

One :class:`ServiceClient` is one session: a blocking TCP connection
speaking the framed wire protocol, with the CALL/RESULT/BUSY messages
layered on top.  Commands are strictly request/reply from the client's
point of view; pipelining happens *inside* the service (launches return
as soon as they are issued, bounded by the session runtime's
``pipeline_depth``).

A BUSY reply — the service's admission control rejecting the call — is
surfaced as :class:`ServiceBusy` so callers can back off and retry;
service-side command failures are re-raised as :class:`ServiceError`
carrying the remote one-line description.
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Optional

from repro.exec import wire
from repro.exec.plan import dumps, loads

__all__ = ["ServiceClient", "ServiceBusy", "ServiceError"]


class ServiceError(Exception):
    """A command failed service-side; the message is the remote error."""


class ServiceBusy(Exception):
    """Admission control rejected the call; back off and retry."""


class ServiceClient:
    def __init__(self, host: str, port: int, token: str = "repro",
                 tenant: str = "default", timeout: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._seq = itertools.count(1)
        wire.send_frame(
            self._sock, wire.HELLO, 0,
            wire.json_payload(token=token, tenant=tenant),
        )
        frame = wire.recv_frame(self._sock)
        if frame.msg == wire.REJECT:
            reason = wire.parse_json(frame.payload).get("reason", "?")
            self._sock.close()
            raise ServiceError(f"handshake rejected: {reason}")
        if frame.msg != wire.WELCOME:
            self._sock.close()
            raise wire.WireError(
                f"expected WELCOME, got {wire.MSG_NAMES.get(frame.msg)}"
            )
        self.session = wire.parse_json(frame.payload).get("session")

    # ----------------------------------------------------------- transport
    def call(self, command: str, **payload) -> Any:
        seq = next(self._seq)
        wire.send_frame(
            self._sock, wire.CALL, seq, dumps((command, payload))
        )
        while True:
            frame = wire.recv_frame(self._sock)
            if frame.seq != seq:
                continue  # stale reply from an abandoned retry
            if frame.msg == wire.BUSY:
                raise ServiceBusy(command)
            if frame.msg != wire.RESULT:
                raise wire.WireError(
                    f"expected RESULT, got {wire.MSG_NAMES.get(frame.msg)}"
                )
            status, value = loads(frame.payload)
            if status == "error":
                raise ServiceError(value)
            return value

    def close(self) -> None:
        try:
            wire.send_frame(self._sock, wire.SHUTDOWN, 0)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # ---------------------------------------------------------- convenience
    def define_task(self, task) -> int:
        return self.call("define_task", blob=dumps(task))

    def create_region(self, name, shape, fields) -> int:
        return self.call(
            "create_region", name=name, shape=shape, fields=fields
        )

    def equal_partition(self, name, region: int, n: int) -> int:
        return self.call(
            "equal_partition", name=name, region=region, n=n
        )

    def write_field(self, region: int, fname: str, values) -> None:
        self.call("write_field", region=region, fname=fname, values=values)

    def read_field(self, region: int, fname: str):
        return self.call("read_field", region=region, fname=fname)

    def index_launch(self, task: int, domain: int, partition: int,
                     functor=None, args=(), reduce: Optional[str] = None):
        return self.call(
            "index_launch", task=task, domain=domain, partition=partition,
            functor=functor, args=args, reduce=reduce,
        )

    def begin_trace(self, trace_id: int) -> None:
        self.call("begin_trace", trace_id=trace_id)

    def end_trace(self, trace_id: int) -> None:
        self.call("end_trace", trace_id=trace_id)

    def drain(self) -> None:
        self.call("drain")

    def stats(self) -> dict:
        return self.call("stats")
