"""Task-graph recording and Graphviz (DOT) export.

Attach a :class:`GraphRecorder` to a runtime to capture the operation- and
task-level dependence graphs the analyses compute, then render them with
:func:`to_dot`:

    recorder = GraphRecorder()
    recorder.attach(runtime)
    ...issue launches...
    open("graph.dot", "w").write(to_dot(recorder, level="logical"))

The logical level shows one node per *operation* (an index launch is a
single node however many tasks it denotes — the visual analogue of the
boxes in Figures 2 and 3); the physical level shows individual tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["GraphRecorder", "to_dot"]


@dataclass(frozen=True)
class OpNode:
    op_id: int
    name: str
    kind: str  # "index_launch" | "task" | "fallback_loop"


@dataclass(frozen=True)
class TaskNode:
    task_id: int
    name: str
    op_id: int
    node: int  # mapped node


class GraphRecorder:
    """Captures operations, tasks, and dependence edges from a runtime."""

    def __init__(self):
        self.ops: Dict[int, OpNode] = {}
        self.tasks: Dict[int, TaskNode] = {}
        self.logical_edges: List[Tuple[int, int]] = []
        self.physical_edges: List[Tuple[int, int]] = []

    def attach(self, runtime) -> "GraphRecorder":
        """Register this recorder on ``runtime`` (one recorder at a time)."""
        runtime.graph_recorder = self
        return self

    # Hooks called by the runtime ------------------------------------------
    def record_op(self, op_id: int, name: str, kind: str) -> None:
        self.ops[op_id] = OpNode(op_id, name, kind)

    def record_logical_edges(self, deps) -> None:
        for d in deps:
            self.logical_edges.append((d.earlier_op, d.later_op))

    def record_task(self, task_id: int, name: str, op_id: int,
                    node: int) -> None:
        self.tasks[task_id] = TaskNode(task_id, name, op_id, node)

    def record_physical_edges(self, deps) -> None:
        for d in deps:
            self.physical_edges.append((d.earlier_task, d.later_task))

    # Queries ---------------------------------------------------------------
    @property
    def n_ops(self) -> int:
        return len(self.ops)

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)


def _dot_escape(text: str) -> str:
    return text.replace('"', r"\"")


def to_dot(recorder: GraphRecorder, level: str = "logical") -> str:
    """Render the recorded graph as Graphviz DOT.

    ``level="logical"`` draws operations (index launches as boxes, single
    tasks as ellipses); ``level="physical"`` draws individual tasks grouped
    by mapped node.
    """
    lines = ["digraph taskgraph {", "  rankdir=TB;"]
    if level == "logical":
        for op in recorder.ops.values():
            shape = "box" if op.kind == "index_launch" else "ellipse"
            style = ' style="dashed"' if op.kind == "fallback_loop" else ""
            lines.append(
                f'  op{op.op_id} [label="{_dot_escape(op.name)}" '
                f'shape={shape}{style}];'
            )
        for src, dst in sorted(set(recorder.logical_edges)):
            lines.append(f"  op{src} -> op{dst};")
    elif level == "physical":
        by_node: Dict[int, List[TaskNode]] = {}
        for t in recorder.tasks.values():
            by_node.setdefault(t.node, []).append(t)
        for node, tasks in sorted(by_node.items()):
            lines.append(f"  subgraph cluster_node{node} {{")
            lines.append(f'    label="node {node}";')
            for t in tasks:
                lines.append(
                    f'    t{t.task_id} [label="{_dot_escape(t.name)}"];'
                )
            lines.append("  }")
        for src, dst in sorted(set(recorder.physical_edges)):
            lines.append(f"  t{src} -> t{dst};")
    else:
        raise ValueError("level must be 'logical' or 'physical'")
    lines.append("}")
    return "\n".join(lines)
