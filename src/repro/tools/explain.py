"""Human-readable explanations of launch safety decisions.

``explain_launch`` runs the hybrid analysis on a candidate launch and
renders the verdict — which rule fired for each argument, what the dynamic
checks found, and the resulting execution strategy — as a small report.
Useful for debugging "why did my forall fall back to a serial loop?".

Each step of the analysis trail is tagged with the same §3 rule ids the
compiler's linter emits (:mod:`repro.compiler.diagnostics`), so a runtime
explanation and a ``repro lint`` finding for the same launch shape point
at the same rule in the catalogue.
"""

from __future__ import annotations

from typing import List, Optional

from repro.compiler.diagnostics import Diagnostic, Severity
from repro.core.launch import IndexLaunch
from repro.core.safety import SafetyMethod, SafetyVerdict, analyze_launch_safety
from repro.core.static_analysis import classify_functor

__all__ = ["explain_launch", "diagnostics_for_verdict"]

#: substring of a reason line -> (rule id, severity); first match wins.
_REASON_RULES = [
    ("statically injective", "IL-S01", Severity.NOTE),
    ("statically non-injective", "IL-S02", Severity.ERROR),
    ("dynamic self-check found duplicate", "IL-S02", Severity.ERROR),
    ("write privilege on aliased partition", "IL-S02", Severity.ERROR),
    ("deferring to dynamic check", "IL-S03", Severity.INFO),
    ("dynamic self-check passed", "IL-S03", Severity.NOTE),
    ("images statically disjoint", "IL-C01", Severity.NOTE),
    ("statically overlap", "IL-C02", Severity.ERROR),
    ("dynamic cross-check conflict", "IL-C02", Severity.ERROR),
    ("conflicting privileges", "IL-C02", Severity.ERROR),
    ("dynamic cross-check passed", "IL-C03", Severity.NOTE),
]


def _rule_for(reason: str) -> Optional[Diagnostic]:
    for needle, rule, severity in _REASON_RULES:
        if needle in reason:
            return Diagnostic(rule, severity, reason)
    return None


def diagnostics_for_verdict(verdict: SafetyVerdict) -> List[Diagnostic]:
    """Map a runtime safety verdict's audit trail onto rule diagnostics.

    Reasons that carry no §3 rule (trivially-passing privileges,
    bookkeeping) are omitted; the full trail stays available on the
    verdict itself.
    """
    out: List[Diagnostic] = []
    for reason in verdict.reasons:
        diag = _rule_for(reason)
        if diag is not None:
            out.append(diag)
    return out


def explain_launch(launch: IndexLaunch, run_dynamic: bool = True) -> str:
    """Analyze ``launch`` and return a formatted explanation."""
    verdict = analyze_launch_safety(launch, run_dynamic=run_dynamic)
    rules = {d.message: d.rule for d in diagnostics_for_verdict(verdict)}
    lines: List[str] = [
        f"index launch {launch.name}: |D| = {launch.parallelism}, "
        f"{len(launch.requirements)} region argument(s)",
        f"descriptor size: {launch.encoded_size()} bytes "
        f"(vs ~{sum(t.encoded_size() for t in launch.expand())} bytes "
        f"expanded)" if launch.parallelism <= 4096 else
        f"descriptor size: {launch.encoded_size()} bytes",
    ]
    for i, req in enumerate(launch.requirements):
        part = req.partition
        lines.append(
            f"  arg{i}: {req.privilege!r} on partition {part.name!r} "
            f"({'disjoint' if part.disjoint else 'aliased'}, "
            f"{part.n_colors} colors) via {req.functor.describe()} "
            f"[{classify_functor(req.functor)}]"
        )
    lines.append("analysis trail:")
    for reason in verdict.reasons:
        tag = f"[{rules[reason]}] " if reason in rules else ""
        lines.append(f"  - {tag}{reason}")
    if verdict.safe:
        how = {
            SafetyMethod.STATIC: "proven safe at compile time",
            SafetyMethod.HYBRID:
                f"proven safe with {len(verdict.dynamic_results)} dynamic "
                f"check(s), {verdict.check_evaluations} functor evaluations",
            SafetyMethod.UNVERIFIED:
                "assumed safe (dynamic checks disabled)",
        }[verdict.method]
        lines.append(f"verdict: SAFE — {how}; executes as an index launch")
    else:
        lines.append(
            "verdict: UNSAFE — tasks would interfere; executes as the "
            "original serial task loop"
        )
    return "\n".join(lines)
