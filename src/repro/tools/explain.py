"""Human-readable explanations of launch safety decisions.

``explain_launch`` runs the hybrid analysis on a candidate launch and
renders the verdict — which rule fired for each argument, what the dynamic
checks found, and the resulting execution strategy — as a small report.
Useful for debugging "why did my forall fall back to a serial loop?".
"""

from __future__ import annotations

from typing import List

from repro.core.launch import IndexLaunch
from repro.core.safety import SafetyMethod, analyze_launch_safety
from repro.core.static_analysis import classify_functor

__all__ = ["explain_launch"]


def explain_launch(launch: IndexLaunch, run_dynamic: bool = True) -> str:
    """Analyze ``launch`` and return a formatted explanation."""
    verdict = analyze_launch_safety(launch, run_dynamic=run_dynamic)
    lines: List[str] = [
        f"index launch {launch.name}: |D| = {launch.parallelism}, "
        f"{len(launch.requirements)} region argument(s)",
        f"descriptor size: {launch.encoded_size()} bytes "
        f"(vs ~{sum(t.encoded_size() for t in launch.expand())} bytes "
        f"expanded)" if launch.parallelism <= 4096 else
        f"descriptor size: {launch.encoded_size()} bytes",
    ]
    for i, req in enumerate(launch.requirements):
        part = req.partition
        lines.append(
            f"  arg{i}: {req.privilege!r} on partition {part.name!r} "
            f"({'disjoint' if part.disjoint else 'aliased'}, "
            f"{part.n_colors} colors) via {req.functor.describe()} "
            f"[{classify_functor(req.functor)}]"
        )
    lines.append("analysis trail:")
    for reason in verdict.reasons:
        lines.append(f"  - {reason}")
    if verdict.safe:
        how = {
            SafetyMethod.STATIC: "proven safe at compile time",
            SafetyMethod.HYBRID:
                f"proven safe with {len(verdict.dynamic_results)} dynamic "
                f"check(s), {verdict.check_evaluations} functor evaluations",
            SafetyMethod.UNVERIFIED:
                "assumed safe (dynamic checks disabled)",
        }[verdict.method]
        lines.append(f"verdict: SAFE — {how}; executes as an index launch")
    else:
        lines.append(
            "verdict: UNSAFE — tasks would interfere; executes as the "
            "original serial task loop"
        )
    return "\n".join(lines)
