"""Developer tooling: task-graph export and launch inspection."""

from repro.tools.graph import GraphRecorder, to_dot
from repro.tools.explain import explain_launch

__all__ = ["GraphRecorder", "to_dot", "explain_launch"]
