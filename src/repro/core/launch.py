"""Launch representations: the O(1) index launch and the single task launch.

An :class:`IndexLaunch` is the paper's central object:

    ``forall(D, T, <P1, f1>, ..., <Pn, fn>)``

It stores the launch domain, the task, and one :class:`RegionRequirement`
per collection argument — a fixed-size representation no matter how many
tasks it denotes.  :meth:`IndexLaunch.expand` materializes the individual
:class:`TaskLaunch` instances; the runtime defers this expansion until after
distribution (Section 5), and the No-IDX configurations of the evaluation
perform it eagerly at issuance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from typing import TYPE_CHECKING

from repro.core.domain import Domain, Point, coerce_point
from repro.core.projection import IdentityFunctor, ProjectionFunctor
from repro.data.privileges import PrivilegeSpec

if TYPE_CHECKING:  # type-only: avoids a cycle through repro.data.collection
    from repro.data.collection import Region, Subregion
    from repro.data.partition import Partition

__all__ = ["RegionRequirement", "IndexLaunch", "TaskLaunch", "ArgumentMap"]

_next_launch_id = itertools.count()


@dataclass(frozen=True)
class RegionRequirement:
    """One collection argument of a launch.

    For an index launch: ``partition`` + ``functor`` (the pair <P_i, f_i>).
    For a single task launch: a concrete ``subregion``.  ``privilege``
    declares the task's access; ``fields`` restricts it to named fields
    (empty means all fields of the region).
    """

    privilege: PrivilegeSpec
    fields: Tuple[str, ...] = ()
    partition: Optional[Partition] = None
    functor: Optional[ProjectionFunctor] = None
    subregion: Optional[Subregion] = None

    def __post_init__(self):
        indexed = self.partition is not None
        single = self.subregion is not None
        if indexed == single:
            raise ValueError(
                "RegionRequirement needs either partition+functor (index launch) "
                "or subregion (single launch)"
            )
        if indexed and self.functor is None:
            object.__setattr__(self, "functor", IdentityFunctor())

    @property
    def region(self) -> Region:
        """The underlying top-level collection."""
        if self.partition is not None:
            return self.partition.region
        return self.subregion.region

    def project(self, point: Point) -> Subregion:
        """Resolve the subregion this requirement selects for domain point ``point``."""
        if self.partition is None:
            return self.subregion
        color = self.functor.apply(point)
        return self.partition[color]

    def resolved_fields(self) -> Tuple[str, ...]:
        """The fields accessed (defaults to all fields of the region)."""
        return self.fields if self.fields else self.region.fields.names


class ArgumentMap:
    """Per-point by-value arguments for an index launch (Legion's ArgumentMap).

    Wraps either a dict ``{point: args_tuple}`` or a callable
    ``point -> args_tuple``.  Missing points get the empty tuple.
    """

    def __init__(self, source: Union[Dict, Callable[[Point], tuple]]):
        self._source = source

    def get(self, point: Point) -> tuple:
        if callable(self._source):
            out = self._source(point)
        else:
            out = self._source.get(point, ())
        if not isinstance(out, tuple):
            out = (out,)
        return out


@dataclass
class TaskLaunch:
    """A single task invocation: concrete subregions plus by-value args."""

    task: Any  # repro.runtime.task.Task (kept opaque to avoid a layering cycle)
    requirements: List[RegionRequirement]
    args: tuple = ()
    point: Optional[Point] = None       # index point when spawned from an index launch
    launch_id: int = field(default_factory=lambda: next(_next_launch_id))
    parent: Optional["IndexLaunch"] = None

    def __post_init__(self):
        for req in self.requirements:
            if req.subregion is None:
                raise ValueError("TaskLaunch requirements must be concrete subregions")

    @property
    def name(self) -> str:
        label = getattr(self.task, "name", repr(self.task))
        return f"{label}{tuple(self.point) if self.point is not None else ''}"

    def representation_units(self) -> int:
        """In-memory size in abstract units: one per individual task."""
        return 1

    def encoded_size(self) -> int:
        """Approximate wire/memory size in bytes of one task descriptor.

        Mirrors what a runtime serializes per task: a task id, a point, and
        one (region-tree id, subregion id, privilege) triple per
        requirement, plus by-value arguments (counted at 8 bytes each).
        """
        header = 16  # task uid + launch id
        point = 8 * (len(self.point) if self.point is not None else 0)
        reqs = 24 * len(self.requirements)
        args = 8 * len(self.args)
        return header + point + reqs + args

    def __repr__(self) -> str:
        return f"TaskLaunch({self.name}, #{self.launch_id})"


@dataclass
class IndexLaunch:
    """The O(1) representation of |D| parallel tasks.

    Attributes:
        task: the task to invoke at every domain point.
        domain: launch domain D (degree of parallelism P = |D|).
        requirements: the <P_i, f_i, privilege> tuples, one per collection
            argument.
        args: by-value arguments broadcast to every point.
        point_args: optional :class:`ArgumentMap` for per-point values.
        reduction: optional reduction operator name; when set, each task's
            return value is folded into a single future value.
    """

    task: Any
    domain: Domain
    requirements: List[RegionRequirement]
    args: tuple = ()
    point_args: Optional[ArgumentMap] = None
    reduction: Optional[str] = None
    launch_id: int = field(default_factory=lambda: next(_next_launch_id))

    def __post_init__(self):
        for req in self.requirements:
            if req.partition is None:
                raise ValueError(
                    "IndexLaunch requirements must be partition+functor pairs"
                )

    @property
    def name(self) -> str:
        label = getattr(self.task, "name", repr(self.task))
        return f"{label}[{self.domain.volume}]"

    @property
    def parallelism(self) -> int:
        """P = |D|."""
        return self.domain.volume

    def representation_units(self) -> int:
        """In-memory size in abstract units: a *fixed* size regardless of |D|.

        This is the quantity Figures 2 and 3 illustrate — an index launch box
        occupies one unit however many tasks it denotes.
        """
        return 1

    def encoded_size(self) -> int:
        """Approximate wire/memory size in bytes of the launch descriptor.

        The quantity behind the paper's O(1) claim: a task id, the domain's
        *bounds* (not its points — dense domains serialize as two corner
        points regardless of volume), and one (partition id, functor id,
        privilege) triple per requirement.  Independent of ``|D|`` for dense
        domains; sparse (irregular) domains — e.g. DOM wavefronts — carry
        their point lists, which is why Legion prefers dense launch domains
        where possible.
        """
        header = 16  # task uid + launch id
        if self.domain.dense:
            domain = 16 * self.domain.dim  # lo + hi corner points
        else:
            domain = 8 * self.domain.dim * self.domain.volume
        reqs = 24 * len(self.requirements)
        args = 8 * len(self.args)
        return header + domain + reqs + args

    def point_task(self, point: Point) -> TaskLaunch:
        """Materialize the single task at ``point``."""
        point = coerce_point(point, self.domain.dim)
        reqs = [
            RegionRequirement(
                privilege=req.privilege,
                fields=req.fields,
                subregion=req.project(point),
            )
            for req in self.requirements
        ]
        extra = self.point_args.get(point) if self.point_args is not None else ()
        return TaskLaunch(
            task=self.task,
            requirements=reqs,
            args=self.args + extra,
            point=point,
            parent=self,
        )

    def expand(self, points: Optional[Iterable[Point]] = None) -> List[TaskLaunch]:
        """Materialize individual tasks for ``points`` (default: whole domain).

        The runtime calls this as late as possible — after distribution — so
        that no single node ever holds the full O(P) expansion (Section 5).
        """
        pts = self.domain if points is None else points
        return [self.point_task(p) for p in pts]

    def __repr__(self) -> str:
        return f"IndexLaunch({self.name}, #{self.launch_id})"
