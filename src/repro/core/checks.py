"""Dynamic projection-functor checks (Listing 3 of the paper).

These checks decide, at runtime, whether a candidate loop may be executed as
an index launch.  They are *advisory*: program results never depend on them,
so they can be disabled for production runs (Section 4), leaving the launch
representation O(1).

Two entry points:

* :func:`dynamic_self_check` — is a single projection functor injective over
  the launch domain?  (Self-check, Section 3.)
* :func:`dynamic_cross_check` — do multiple arguments on the *same* disjoint
  partition select non-conflicting subregions?  Uses one shared bitmask and
  checks write/reduce arguments before read-only ones, achieving linear time
  instead of a quadratic pairwise comparison (Section 4).

Both have a pure-Python reference implementation that mirrors Listing 3
line-by-line, and a vectorized numpy fast path; the test suite asserts they
agree on random inputs.  Costs are O(|D| + |P|): the bitmask initialization
is O(|P|) and the domain sweep O(|D|), independent of how many objects the
underlying collections hold — checks operate at partition granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.domain import Domain, Point, Rect
from repro.core.projection import ProjectionFunctor

__all__ = [
    "CheckResult",
    "dynamic_self_check",
    "dynamic_cross_check",
    "self_check_reference",
    "cross_check_reference",
]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of a dynamic check.

    Attributes:
        safe: True when no conflict was found (the launch may proceed as an
            index launch).
        conflict_point: the first launch-domain point (in domain order) at
            which a conflict was detected, or None.
        conflict_arg: index of the argument that triggered the conflict in a
            cross-check (0 for self-checks), or None when safe.
        evaluations: how many functor evaluations were performed.  The
            reference implementation exits early on the first conflict; the
            vectorized path always evaluates the full domain.
        out_of_bounds: number of functor values that fell outside the
            partition's color space.  Such values are skipped by the bitmask
            (Listing 3's bounds check) but reported for diagnostics.
    """

    safe: bool
    conflict_point: Optional[Point] = None
    conflict_arg: Optional[int] = None
    evaluations: int = 0
    out_of_bounds: int = 0


def self_check_reference(
    domain: Domain, functor: ProjectionFunctor, color_bounds: Rect
) -> CheckResult:
    """Pure-Python mirror of Listing 3: bitmask + early-exit domain sweep.

    Args:
        domain: the launch domain ``D``.
        functor: the projection functor under test.
        color_bounds: bounds of the partition's color space, used both for
            the bitmask size (``q.volume()`` in Listing 3) and to linearize
            multi-dimensional functor values.
    """
    volume = color_bounds.volume
    bitmask = [False] * volume
    evaluations = 0
    out_of_bounds = 0
    for i in domain:
        value = functor.apply(i)
        evaluations += 1
        if color_bounds.contains(value):
            linear = color_bounds.linearize(value)
            if bitmask[linear]:
                return CheckResult(
                    safe=False,
                    conflict_point=i,
                    conflict_arg=0,
                    evaluations=evaluations,
                    out_of_bounds=out_of_bounds,
                )
            bitmask[linear] = True
        else:
            out_of_bounds += 1
    return CheckResult(safe=True, evaluations=evaluations, out_of_bounds=out_of_bounds)


def cross_check_reference(
    domain: Domain,
    args: Sequence[Tuple[ProjectionFunctor, str]],
    color_bounds: Rect,
) -> CheckResult:
    """Pure-Python multi-argument cross-check on a single shared bitmask.

    ``args`` is a sequence of ``(functor, mode)`` pairs with mode ``"read"``
    or ``"write"`` (reductions are treated as writes for these checks, as in
    the paper).  Write arguments are checked before read arguments; only
    writes set the bitmask, so all write-write and write-read conflicts are
    caught in a single linear pass per argument.
    """
    for _, mode in args:
        if mode not in ("read", "write"):
            raise ValueError(f"mode must be 'read' or 'write', got {mode!r}")
    volume = color_bounds.volume
    bitmask = [False] * volume
    evaluations = 0
    out_of_bounds = 0
    ordered = [(idx, f, m) for idx, (f, m) in enumerate(args) if m == "write"]
    ordered += [(idx, f, m) for idx, (f, m) in enumerate(args) if m == "read"]
    for arg_index, functor, mode in ordered:
        for i in domain:
            value = functor.apply(i)
            evaluations += 1
            if not color_bounds.contains(value):
                out_of_bounds += 1
                continue
            linear = color_bounds.linearize(value)
            if bitmask[linear]:
                return CheckResult(
                    safe=False,
                    conflict_point=i,
                    conflict_arg=arg_index,
                    evaluations=evaluations,
                    out_of_bounds=out_of_bounds,
                )
            if mode == "write":
                bitmask[linear] = True
    return CheckResult(safe=True, evaluations=evaluations, out_of_bounds=out_of_bounds)


def _linearize_batch(values: np.ndarray, color_bounds: Rect) -> Tuple[np.ndarray, int]:
    """Vectorized bounds-check + row-major linearization.

    Returns ``(linear, n_out_of_bounds)`` where ``linear`` holds only the
    in-bounds values, linearized into ``[0, color_bounds.volume)`` in the
    original domain order.
    """
    lo = np.asarray(color_bounds.lo, dtype=np.int64)
    hi = np.asarray(color_bounds.hi, dtype=np.int64)
    if values.ndim == 1:
        values = values.reshape(-1, 1)
    if values.shape[1] != color_bounds.dim:
        raise ValueError(
            f"functor produced {values.shape[1]}-D values for a "
            f"{color_bounds.dim}-D color space"
        )
    in_bounds = np.all((values >= lo) & (values <= hi), axis=1)
    kept = values[in_bounds] - lo
    extents = np.asarray(color_bounds.extents, dtype=np.int64)
    strides = np.ones_like(extents)
    for d in range(len(extents) - 2, -1, -1):
        strides[d] = strides[d + 1] * extents[d + 1]
    linear = kept @ strides
    return linear, int(len(values) - int(in_bounds.sum()))


def _first_duplicate(linear: np.ndarray) -> Optional[int]:
    """Index (into ``linear``) of the first value already seen, or None.

    A single stable argsort serves both the existence test and the recovery
    of the earliest second occurrence: within a run of equal values the
    stable order preserves original positions, so every sorted position
    whose left neighbour is equal is a non-first occurrence, and the
    earliest one in the original order is simply the minimum index among
    them.
    """
    order = np.argsort(linear, kind="stable")
    sorted_vals = linear[order]
    dup_positions = np.nonzero(sorted_vals[1:] == sorted_vals[:-1])[0] + 1
    if len(dup_positions) == 0:
        return None
    return int(order[dup_positions].min())


def dynamic_self_check(
    domain: Domain,
    functor: ProjectionFunctor,
    color_bounds: Rect,
    use_numpy: bool = True,
    apply_batch=None,
    points: Optional[np.ndarray] = None,
) -> CheckResult:
    """Vectorized injectivity check for one functor over the launch domain.

    Semantically identical to :func:`self_check_reference`, but evaluates the
    functor over the whole domain at once and detects duplicates with a sort.
    Set ``use_numpy=False`` to run the reference path (early-exit loop).
    ``apply_batch`` optionally replaces ``functor.apply_batch`` with an
    exact-preserving evaluator (e.g. chunked across worker processes);
    ``points`` optionally supplies a pre-materialized ``domain.point_array()``
    so repeated checks over one domain share a single array.
    """
    if not use_numpy:
        return self_check_reference(domain, functor, color_bounds)
    if points is None:
        points = domain.point_array()
    values = (
        apply_batch(functor, points)
        if apply_batch is not None
        else functor.apply_batch(points)
    )
    linear, oob = _linearize_batch(values, color_bounds)
    dup = _first_duplicate(linear)
    if dup is None:
        return CheckResult(safe=True, evaluations=len(points), out_of_bounds=oob)
    # Map the duplicate's position among in-bounds values back to a domain point.
    if oob:
        lo = np.asarray(color_bounds.lo, dtype=np.int64)
        hi = np.asarray(color_bounds.hi, dtype=np.int64)
        vals2d = values.reshape(len(points), -1)
        in_bounds_idx = np.nonzero(np.all((vals2d >= lo) & (vals2d <= hi), axis=1))[0]
        domain_pos = int(in_bounds_idx[dup])
    else:
        domain_pos = dup
    return CheckResult(
        safe=False,
        conflict_point=Point(*points[domain_pos]),
        conflict_arg=0,
        evaluations=len(points),
        out_of_bounds=oob,
    )


def dynamic_cross_check(
    domain: Domain,
    args: Sequence[Tuple[ProjectionFunctor, str]],
    color_bounds: Rect,
    use_numpy: bool = True,
    apply_batch=None,
    points: Optional[np.ndarray] = None,
) -> CheckResult:
    """Vectorized linear-time cross-check for arguments sharing one partition.

    Writes are validated for mutual disjointness (across *all* write
    arguments, which subsumes each write argument's self-check) and reads
    are validated against the union of write images.  Reads may freely
    overlap other reads.  ``apply_batch`` optionally replaces
    ``functor.apply_batch`` with an exact-preserving evaluator (e.g.
    chunked across worker processes for large domains); ``points``
    optionally supplies a pre-materialized ``domain.point_array()``.
    """
    if not use_numpy:
        return cross_check_reference(domain, args, color_bounds)
    for _, mode in args:
        if mode not in ("read", "write"):
            raise ValueError(f"mode must be 'read' or 'write', got {mode!r}")
    if points is None:
        points = domain.point_array()
    n = len(points)
    oob_total = 0
    write_order: List[Tuple[int, np.ndarray]] = []
    read_order: List[Tuple[int, np.ndarray]] = []
    for arg_index, (functor, mode) in enumerate(args):
        values = (
            apply_batch(functor, points)
            if apply_batch is not None
            else functor.apply_batch(points)
        )
        linear, oob = _linearize_batch(values, color_bounds)
        oob_total += oob
        if oob:
            # Track which domain positions survived for conflict attribution.
            lo = np.asarray(color_bounds.lo, dtype=np.int64)
            hi = np.asarray(color_bounds.hi, dtype=np.int64)
            vals2d = values.reshape(n, -1)
            pos = np.nonzero(np.all((vals2d >= lo) & (vals2d <= hi), axis=1))[0]
        else:
            pos = np.arange(n)
        entry = (arg_index, linear, pos)
        (write_order if mode == "write" else read_order).append(entry)

    evaluations = n * len(args)
    # All write images, concatenated in argument order, must be duplicate-free.
    if write_order:
        all_writes = np.concatenate([lin for _, lin, _ in write_order])
        dup = _first_duplicate(all_writes)
        if dup is not None:
            offset = 0
            for arg_index, lin, pos in write_order:
                if dup < offset + len(lin):
                    local = dup - offset
                    return CheckResult(
                        safe=False,
                        conflict_point=Point(*points[pos[local]]),
                        conflict_arg=arg_index,
                        evaluations=evaluations,
                        out_of_bounds=oob_total,
                    )
                offset += len(lin)
        write_set = all_writes
    else:
        write_set = np.empty(0, dtype=np.int64)

    # Reads must not touch anything written.
    if len(write_set):
        for arg_index, lin, pos in read_order:
            hits = np.isin(lin, write_set)
            if np.any(hits):
                local = int(np.nonzero(hits)[0][0])
                return CheckResult(
                    safe=False,
                    conflict_point=Point(*points[pos[local]]),
                    conflict_arg=arg_index,
                    evaluations=evaluations,
                    out_of_bounds=oob_total,
                )
    return CheckResult(safe=True, evaluations=evaluations, out_of_bounds=oob_total)
