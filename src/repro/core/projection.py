"""Projection functors: map launch-domain points to partition sub-collections.

A projection functor ``f_i`` controls which sub-collection of partition
``P_i`` each task instance in an index launch receives (Section 3 of the
paper).  Functors are pure functions from :class:`~repro.core.domain.Point`
to :class:`~repro.core.domain.Point` (the *color* of a subregion).

Functors carry whatever static knowledge they can about their own
injectivity — this is what the compiler's static analysis consumes
(Section 4).  Functors for which injectivity cannot be decided statically
(modular, quadratic, opaque callables, plane projections used by DOM
sweeps) report :data:`Injectivity.UNKNOWN` and are handled by the dynamic
check in :mod:`repro.core.checks`.

Every functor supports vectorized evaluation over an ``(n, dim)`` point
array; this is the fast path used by the dynamic checks, keeping their
measured cost linear with small constants (Tables 2 and 3).
"""

from __future__ import annotations

import enum
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.core.domain import Domain, Point, coerce_point

__all__ = [
    "Injectivity",
    "ProjectionFunctor",
    "IdentityFunctor",
    "ConstantFunctor",
    "AffineFunctor",
    "ModularFunctor",
    "QuadraticFunctor",
    "CallableFunctor",
    "ComposedFunctor",
    "AffineNDFunctor",
    "PlaneProjectionFunctor",
]


class Injectivity(enum.Enum):
    """Result of static reasoning about a functor's injectivity over a domain."""

    INJECTIVE = "injective"
    NOT_INJECTIVE = "not-injective"
    UNKNOWN = "unknown"


class ProjectionFunctor:
    """Base class for projection functors.

    Subclasses implement :meth:`apply` (scalar) and may override
    :meth:`apply_batch` (vectorized) and :meth:`static_injectivity`.
    """

    #: dimensionality of input points; None means "any".
    input_dim: Optional[int] = None
    #: dimensionality of output points; None means "same as input".
    output_dim: Optional[int] = None

    def apply(self, point: Point) -> Point:
        """Evaluate the functor at one domain point."""
        raise NotImplementedError

    def __call__(self, point) -> Point:
        return self.apply(coerce_point(point))

    def apply_batch(self, points: np.ndarray) -> np.ndarray:
        """Evaluate over an ``(n, dim)`` int64 array, returning ``(n, out_dim)``.

        The default falls back to a Python loop; numeric subclasses override
        this with numpy expressions.
        """
        out = [self.apply(Point(*row)) for row in points]
        if not out:
            odim = self.output_dim or points.shape[1]
            return np.empty((0, odim), dtype=np.int64)
        return np.asarray(out, dtype=np.int64)

    def static_injectivity(self, domain: Domain) -> Injectivity:
        """What a compile-time analysis can conclude about injectivity over ``domain``.

        The base class is conservatively :data:`Injectivity.UNKNOWN`.  Any
        functor is trivially injective over a domain of volume <= 1.
        """
        if domain.volume <= 1:
            return Injectivity.INJECTIVE
        return Injectivity.UNKNOWN

    def describe(self) -> str:
        """Human-readable form, e.g. ``lambda i: a*i + b``."""
        return type(self).__name__

    def __repr__(self) -> str:
        return f"<{self.describe()}>"


class IdentityFunctor(ProjectionFunctor):
    """``lambda i: i`` — the trivial functor; always injective.

    This is the functor of ``foo(p[i])`` in Listing 1.  Index launches using
    only identity functors over disjoint partitions are proven safe entirely
    statically (as in the paper's Circuit and Stencil codes).
    """

    def apply(self, point: Point) -> Point:
        return point

    def apply_batch(self, points: np.ndarray) -> np.ndarray:
        return points

    def static_injectivity(self, domain: Domain) -> Injectivity:
        return Injectivity.INJECTIVE

    def describe(self) -> str:
        return "lambda i: i"

    def __eq__(self, other):
        return isinstance(other, IdentityFunctor)

    def __hash__(self):
        return hash("IdentityFunctor")


class ConstantFunctor(ProjectionFunctor):
    """``lambda i: c`` — every task selects the same subregion.

    Statically *not* injective over any domain with more than one point, so a
    launch writing through it is rejected without any dynamic check.
    """

    def __init__(self, value):
        self.value = coerce_point(value)
        self.output_dim = self.value.dim

    def apply(self, point: Point) -> Point:
        return self.value

    def apply_batch(self, points: np.ndarray) -> np.ndarray:
        return np.broadcast_to(
            np.asarray(self.value, dtype=np.int64), (len(points), self.value.dim)
        )

    def static_injectivity(self, domain: Domain) -> Injectivity:
        if domain.volume <= 1:
            return Injectivity.INJECTIVE
        return Injectivity.NOT_INJECTIVE

    def describe(self) -> str:
        return f"lambda i: {tuple(self.value) if self.value.dim > 1 else self.value[0]}"

    def __eq__(self, other):
        return isinstance(other, ConstantFunctor) and self.value == other.value

    def __hash__(self):
        return hash(("ConstantFunctor", self.value))


class AffineFunctor(ProjectionFunctor):
    """``lambda i: a*i + b`` on 1-D domains.

    Injective iff it does not degenerate to a constant (``a != 0``) — the
    "slightly more general affine case" the paper's static analysis accepts.
    """

    input_dim = 1
    output_dim = 1

    def __init__(self, a: int, b: int = 0):
        self.a = int(a)
        self.b = int(b)

    def apply(self, point: Point) -> Point:
        return Point(self.a * point[0] + self.b)

    def apply_batch(self, points: np.ndarray) -> np.ndarray:
        return self.a * points + self.b

    def static_injectivity(self, domain: Domain) -> Injectivity:
        if domain.volume <= 1 or self.a != 0:
            return Injectivity.INJECTIVE
        return Injectivity.NOT_INJECTIVE

    def describe(self) -> str:
        return f"lambda i: {self.a}*i + {self.b}"

    def __eq__(self, other):
        return isinstance(other, AffineFunctor) and (self.a, self.b) == (other.a, other.b)

    def __hash__(self):
        return hash(("AffineFunctor", self.a, self.b))


class ModularFunctor(ProjectionFunctor):
    """``lambda i: (i + k) mod n`` on 1-D domains.

    Injectivity depends on how the launch domain interacts with the modulus
    (``i % 3`` over ``[0, 5)`` is not injective, Listing 2), which the paper's
    static analysis does not attempt to decide; it is resolved by the dynamic
    check (Table 2, "Modular").
    """

    input_dim = 1
    output_dim = 1

    def __init__(self, n: int, k: int = 0):
        if n <= 0:
            raise ValueError("modulus must be positive")
        self.n = int(n)
        self.k = int(k)

    def apply(self, point: Point) -> Point:
        return Point((point[0] + self.k) % self.n)

    def apply_batch(self, points: np.ndarray) -> np.ndarray:
        return (points + self.k) % self.n

    def describe(self) -> str:
        return f"lambda i: (i + {self.k}) mod {self.n}"

    def __eq__(self, other):
        return isinstance(other, ModularFunctor) and (self.n, self.k) == (other.n, other.k)

    def __hash__(self):
        return hash(("ModularFunctor", self.n, self.k))


class QuadraticFunctor(ProjectionFunctor):
    """``lambda i: a*i**2 + b*i + c`` on 1-D domains (dynamic analysis only)."""

    input_dim = 1
    output_dim = 1

    def __init__(self, a: int, b: int = 0, c: int = 0):
        self.a = int(a)
        self.b = int(b)
        self.c = int(c)

    def apply(self, point: Point) -> Point:
        i = point[0]
        return Point(self.a * i * i + self.b * i + self.c)

    def apply_batch(self, points: np.ndarray) -> np.ndarray:
        return self.a * points * points + self.b * points + self.c

    def describe(self) -> str:
        return f"lambda i: {self.a}*i^2 + {self.b}*i + {self.c}"

    def __eq__(self, other):
        return (
            isinstance(other, QuadraticFunctor)
            and (self.a, self.b, self.c) == (other.a, other.b, other.c)
        )

    def __hash__(self):
        return hash(("QuadraticFunctor", self.a, self.b, self.c))


class CallableFunctor(ProjectionFunctor):
    """Wrap an arbitrary Python callable — the opaque ``f`` of ``bar(q[f(i)])``.

    Statically unanalyzable by design; always resolved by the dynamic check.
    """

    def __init__(self, fn: Callable, output_dim: int = None, name: str = None):
        self.fn = fn
        self.output_dim = output_dim
        self.name = name or getattr(fn, "__name__", "f")

    def apply(self, point: Point) -> Point:
        arg = point[0] if point.dim == 1 else tuple(point)
        return coerce_point(self.fn(arg))

    def describe(self) -> str:
        return f"lambda i: {self.name}(i)"


class ComposedFunctor(ProjectionFunctor):
    """``outer . inner`` — composition; injective if both components are."""

    def __init__(self, outer: ProjectionFunctor, inner: ProjectionFunctor):
        self.outer = outer
        self.inner = inner
        self.input_dim = inner.input_dim
        self.output_dim = outer.output_dim

    def apply(self, point: Point) -> Point:
        return self.outer.apply(self.inner.apply(point))

    def apply_batch(self, points: np.ndarray) -> np.ndarray:
        return self.outer.apply_batch(self.inner.apply_batch(points))

    def static_injectivity(self, domain: Domain) -> Injectivity:
        if domain.volume <= 1:
            return Injectivity.INJECTIVE
        inner = self.inner.static_injectivity(domain)
        if inner is Injectivity.NOT_INJECTIVE:
            return Injectivity.NOT_INJECTIVE
        # The outer functor must be injective over the *image* of the inner;
        # we conservatively require it be injective over any domain, which
        # holds for Identity/Affine(a != 0).
        image = Domain.points({self.inner.apply(p) for p in domain}) \
            if domain.volume <= 1024 else None
        if image is not None:
            outer = self.outer.static_injectivity(image)
        else:
            outer = Injectivity.UNKNOWN
        if inner is Injectivity.INJECTIVE and outer is Injectivity.INJECTIVE:
            return Injectivity.INJECTIVE
        return Injectivity.UNKNOWN

    def describe(self) -> str:
        return f"({self.outer.describe()}) . ({self.inner.describe()})"


class AffineNDFunctor(ProjectionFunctor):
    """``lambda p: A @ p + b`` for an integer matrix ``A`` and offset ``b``.

    Injective over all of Z^n (hence any domain) iff ``A`` has full column
    rank — decidable statically, so multi-dimensional affine functors are
    accepted or rejected without a dynamic check.
    """

    def __init__(self, matrix: Sequence[Sequence[int]], offset: Sequence[int] = None):
        self.matrix = np.asarray(matrix, dtype=np.int64)
        if self.matrix.ndim != 2:
            raise ValueError("matrix must be 2-D")
        out_dim, in_dim = self.matrix.shape
        self.offset = (
            np.zeros(out_dim, dtype=np.int64)
            if offset is None
            else np.asarray([int(x) for x in offset], dtype=np.int64)
        )
        if self.offset.shape != (out_dim,):
            raise ValueError("offset length must match matrix rows")
        self.input_dim = in_dim
        self.output_dim = out_dim

    def apply(self, point: Point) -> Point:
        p = np.asarray(point, dtype=np.int64)
        return Point(*(self.matrix @ p + self.offset))

    def apply_batch(self, points: np.ndarray) -> np.ndarray:
        return points @ self.matrix.T + self.offset

    def static_injectivity(self, domain: Domain) -> Injectivity:
        if domain.volume <= 1:
            return Injectivity.INJECTIVE
        rank = np.linalg.matrix_rank(self.matrix.astype(np.float64))
        if rank == self.matrix.shape[1]:
            return Injectivity.INJECTIVE
        # Rank-deficient maps may still be injective over a particular domain
        # (e.g. projecting a diagonal slice); that is the dynamic check's job.
        return Injectivity.UNKNOWN

    def describe(self) -> str:
        return f"lambda p: {self.matrix.tolist()} @ p + {self.offset.tolist()}"


class PlaneProjectionFunctor(ProjectionFunctor):
    """Project an N-D point onto a subset of its axes, e.g. (x,y,z) -> (x,y).

    This is the non-trivial functor family used by Soleil-X's DOM radiation
    sweeps (Section 6.2.3): 3-D diagonal-slice launch domains are projected
    onto 2-D exchange planes.  The projection is injective only when the
    launch domain contains no duplicate pairs along the kept axes — hard for
    a static compiler, trivial for the dynamic check.
    """

    def __init__(self, keep_axes: Sequence[int]):
        self.keep_axes = tuple(int(a) for a in keep_axes)
        if len(set(self.keep_axes)) != len(self.keep_axes):
            raise ValueError("keep_axes must be distinct")
        self.output_dim = len(self.keep_axes)

    def apply(self, point: Point) -> Point:
        return Point(*(point[a] for a in self.keep_axes))

    def apply_batch(self, points: np.ndarray) -> np.ndarray:
        return points[:, list(self.keep_axes)]

    def describe(self) -> str:
        axes = ",".join(f"p[{a}]" for a in self.keep_axes)
        return f"lambda p: ({axes})"

    def __eq__(self, other):
        return isinstance(other, PlaneProjectionFunctor) and self.keep_axes == other.keep_axes

    def __hash__(self):
        return hash(("PlaneProjectionFunctor", self.keep_axes))
