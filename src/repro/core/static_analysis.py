"""Static projection-functor analysis (the compile-time half of the hybrid design).

The paper's static analyzer recognizes "trivial projection functors like
constant (not injective), identity (injective), or the slightly more general
affine case (injective, iff it does not degenerate to a constant)".  The
strength of the analysis is deliberately modest: anything it cannot decide is
handed to the precise dynamic check (Section 4), so completeness here buys
only performance, never correctness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.domain import Domain
from repro.core.projection import (
    AffineFunctor,
    AffineNDFunctor,
    ConstantFunctor,
    IdentityFunctor,
    Injectivity,
    ModularFunctor,
    ProjectionFunctor,
    QuadraticFunctor,
)

__all__ = ["StaticVerdict", "classify_functor", "analyze_static", "images_disjoint_static"]


class StaticVerdict(enum.Enum):
    """What the static analysis concluded for one requirement."""

    SAFE = "safe"                   # proven injective (or read-only) at compile time
    UNSAFE = "unsafe"               # proven non-injective: reject without any check
    NEEDS_DYNAMIC = "needs-dynamic" # undecided: emit the Listing-3 dynamic check


def classify_functor(functor: ProjectionFunctor) -> str:
    """A coarse syntactic class label, mirroring Table 2's functor families."""
    if isinstance(functor, IdentityFunctor):
        return "identity"
    if isinstance(functor, ConstantFunctor):
        return "constant"
    if isinstance(functor, AffineFunctor):
        return "affine"
    if isinstance(functor, AffineNDFunctor):
        return "affine-nd"
    if isinstance(functor, ModularFunctor):
        return "modular"
    if isinstance(functor, QuadraticFunctor):
        return "quadratic"
    return "opaque"


def analyze_static(domain: Domain, functor: ProjectionFunctor) -> StaticVerdict:
    """Decide injectivity of ``functor`` over ``domain`` at compile time.

    Returns SAFE / UNSAFE when the functor's own static reasoning is
    conclusive, NEEDS_DYNAMIC otherwise.
    """
    verdict = functor.static_injectivity(domain)
    if verdict is Injectivity.INJECTIVE:
        return StaticVerdict.SAFE
    if verdict is Injectivity.NOT_INJECTIVE:
        return StaticVerdict.UNSAFE
    return StaticVerdict.NEEDS_DYNAMIC


def images_disjoint_static(
    domain: Domain, f: ProjectionFunctor, g: ProjectionFunctor
) -> Optional[bool]:
    """Try to decide statically whether two functors' images over ``domain``
    are disjoint (the cross-check of Section 3).

    Returns True/False when decidable, None when the dynamic cross-check is
    required.  Decidable cases kept intentionally small, as in the paper:

    * structurally equal functors have identical (non-disjoint) images;
    * distinct constants have disjoint single-point images;
    * two 1-D affine maps with equal stride ``a`` over a dense 1-D domain:
      disjoint iff the offsets differ by a non-multiple of ``a`` (e.g. ``2i``
      vs ``2i+1``), or by a multiple larger than the domain extent (e.g.
      ``i`` vs ``i+8`` over ``[0,8)``).
    """
    if domain.volume == 0:
        return True
    try:
        if f == g:
            return False  # identical images over a non-empty domain
    except Exception:
        pass
    if isinstance(f, ConstantFunctor) and isinstance(g, ConstantFunctor):
        return f.value != g.value
    # Identity is Affine(1, 0) for this purpose.
    fa = AffineFunctor(1, 0) if isinstance(f, IdentityFunctor) else f
    ga = AffineFunctor(1, 0) if isinstance(g, IdentityFunctor) else g
    if isinstance(fa, AffineFunctor) and isinstance(ga, AffineFunctor):
        if fa.a == ga.a and fa.a != 0:
            a = fa.a
            if (fa.b - ga.b) % abs(a) != 0:
                return True  # distinct residue classes never meet
            if domain.dense and domain.dim == 1:
                # a*x + b1 == a*y + b2 has a solution with x, y in [lo, hi]
                # iff |(b2 - b1) / a| <= hi - lo.
                delta = (ga.b - fa.b) // a
                extent = domain.bounds.hi[0] - domain.bounds.lo[0]
                return abs(delta) > extent
            return None  # sparse domain: leave it to the dynamic check
    return None
