"""Static projection-functor analysis (the compile-time half of the hybrid design).

The paper's static analyzer recognizes "trivial projection functors like
constant (not injective), identity (injective), or the slightly more general
affine case (injective, iff it does not degenerate to a constant)".  The
strength of the analysis is deliberately modest: anything it cannot decide is
handed to the precise dynamic check (Section 4), so completeness here buys
only performance, never correctness.

This module also hosts the **shared symbolic affine engine** used by both
the runtime's hybrid analysis and the compiler's interference linter
(:mod:`repro.compiler.symbolic`).  The engine works on :class:`AffineForm`
normal forms — ``a*i + b`` optionally wrapped in ``mod m`` — and decides:

* **injectivity** over a dense window of known extent, exactly (affine by
  the nonzero-stride rule, modular by the classic period/GCD test:
  ``(a*i + b) mod m`` is injective over ``n`` consecutive points iff
  ``n <= m / gcd(a, m)``);
* **pairwise image disjointness** over bounded index ranges, via
  GCD/Banerjee-style residue reasoning, an exact bounded linear-Diophantine
  solve for affine pairs, and closed-form coset reasoning for full-period
  modular images (with exact enumeration as a small-range fallback).

Both layers consulting one engine is what guarantees the compiler's static
verdict and the runtime's check emission never drift apart.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.domain import Domain
from repro.core.projection import (
    AffineFunctor,
    AffineNDFunctor,
    ConstantFunctor,
    IdentityFunctor,
    Injectivity,
    ModularFunctor,
    ProjectionFunctor,
    QuadraticFunctor,
)

__all__ = [
    "StaticVerdict",
    "classify_functor",
    "analyze_static",
    "images_disjoint_static",
    "AffineForm",
    "affine_form",
    "functor_to_form",
    "form_injective",
    "form_images_disjoint",
    "residue_separated",
]

#: Largest per-range extent for which the disjointness engine will fall back
#: to exact image enumeration when no closed form applies.  Enumeration is
#: integer arithmetic on closed forms — still compile-time — but should not
#: become accidentally quadratic on huge literal bounds.
_ENUM_CAP = 4096


class StaticVerdict(enum.Enum):
    """What the static analysis concluded for one requirement."""

    SAFE = "safe"                   # proven injective (or read-only) at compile time
    UNSAFE = "unsafe"               # proven non-injective: reject without any check
    NEEDS_DYNAMIC = "needs-dynamic" # undecided: emit the Listing-3 dynamic check


def classify_functor(functor: ProjectionFunctor) -> str:
    """A coarse syntactic class label, mirroring Table 2's functor families."""
    if isinstance(functor, IdentityFunctor):
        return "identity"
    if isinstance(functor, ConstantFunctor):
        return "constant"
    if isinstance(functor, AffineFunctor):
        return "affine"
    if isinstance(functor, AffineNDFunctor):
        return "affine-nd"
    if isinstance(functor, ModularFunctor):
        return "modular"
    if isinstance(functor, QuadraticFunctor):
        return "quadratic"
    return "opaque"


def analyze_static(domain: Domain, functor: ProjectionFunctor) -> StaticVerdict:
    """Decide injectivity of ``functor`` over ``domain`` at compile time.

    Returns SAFE / UNSAFE when the functor's own static reasoning is
    conclusive, NEEDS_DYNAMIC otherwise.  This is the paper's deliberately
    modest per-launch analysis; the launch-time hot path keeps it cheap and
    leaves e.g. modular functors to the dynamic check (Table 2), while the
    whole-program linter applies the full symbolic engine offline.
    """
    verdict = functor.static_injectivity(domain)
    if verdict is Injectivity.INJECTIVE:
        return StaticVerdict.SAFE
    if verdict is Injectivity.NOT_INJECTIVE:
        return StaticVerdict.UNSAFE
    return StaticVerdict.NEEDS_DYNAMIC


# --------------------------------------------------------------------------
# The symbolic affine engine
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class AffineForm:
    """Normal form of a 1-D index expression: ``a*i + b``, or ``(a*i + b) mod m``.

    Use :func:`affine_form` to construct — it canonicalizes coefficients
    (``mod`` forms reduce ``a`` and ``b`` into ``[0, m)`` and fold away when
    the modulus or the stride degenerates).
    """

    a: int
    b: int
    mod: Optional[int] = None

    @property
    def is_constant(self) -> bool:
        return self.a == 0 and self.mod is None

    def evaluate(self, i: int) -> int:
        v = self.a * i + self.b
        if self.mod is not None:
            v %= self.mod
        return v

    def describe(self, var: str = "i") -> str:
        if self.a == 0 and self.mod is None:
            return str(self.b)
        core = var if self.a == 1 else f"{self.a}*{var}"
        if self.b:
            core = f"{core} + {self.b}" if self.b > 0 else f"{core} - {-self.b}"
        if self.mod is not None:
            return f"({core}) mod {self.mod}"
        return core


def affine_form(a: int, b: int, mod: Optional[int] = None) -> AffineForm:
    """Canonicalizing constructor for :class:`AffineForm`."""
    a, b = int(a), int(b)
    if mod is None:
        return AffineForm(a, b)
    mod = int(mod)
    if mod <= 0:
        raise ValueError("modulus must be positive")
    a %= mod
    b %= mod
    if a == 0:
        return AffineForm(0, b)  # (0*i + b) mod m is the constant b mod m
    return AffineForm(a, b, mod)


def functor_to_form(functor: ProjectionFunctor) -> Optional[AffineForm]:
    """Express a 1-D runtime functor as an :class:`AffineForm`, or None."""
    if isinstance(functor, IdentityFunctor):
        return AffineForm(1, 0)
    if isinstance(functor, ConstantFunctor):
        if functor.value.dim != 1:
            return None
        return AffineForm(0, int(functor.value[0]))
    if isinstance(functor, AffineFunctor):
        return AffineForm(functor.a, functor.b)
    if isinstance(functor, ModularFunctor):
        return affine_form(1, functor.k, mod=functor.n)
    return None


def form_injective(form: AffineForm, extent: int) -> bool:
    """Is ``form`` injective over any ``extent`` consecutive integers?

    Exact for every representable form: affine maps by the nonzero-stride
    rule; modular maps by the period test — ``(a*i + b) mod m`` repeats with
    period ``m / gcd(a, m)``, so it is injective over a dense window iff the
    window fits inside one period.  (Injectivity over a dense window depends
    only on the extent, not on where the window starts.)
    """
    if extent <= 1:
        return True
    if form.mod is None:
        return form.a != 0
    period = form.mod // math.gcd(form.a, form.mod)
    return extent <= period


def _char_stride(form: AffineForm) -> int:
    """Stride of the arithmetic progression containing the form's image.

    Every value of ``a*i + b`` lies in ``b + |a|*Z``; every value of
    ``(a*i + b) mod m`` lies in ``b + gcd(a, m)*Z``.  A stride of 0 means
    the image is the single point ``b``.
    """
    if form.mod is None:
        return abs(form.a)
    return math.gcd(form.a, form.mod)


def residue_separated(f: AffineForm, g: AffineForm) -> bool:
    """GCD residue test: True when the images cannot meet anywhere in Z.

    The classic dependence-analysis GCD test: ``a1*x + b1 = a2*y + b2`` has
    integer solutions only if ``gcd(a1, a2) | (b2 - b1)``; otherwise the
    images occupy distinct residue classes and are disjoint over *any*
    domain.  Applies to modular forms through their characteristic stride.
    """
    sf, sg = _char_stride(f), _char_stride(g)
    s = math.gcd(sf, sg)
    if s == 0:
        return f.b != g.b
    return (f.b - g.b) % s != 0


def _ceil_div(n: int, d: int) -> int:
    return -((-n) // d)


def _t_interval(coef: int, base: int, lo: int, hi: int):
    """Integer solutions of ``lo <= base + coef*t <= hi`` as ``(tmin, tmax)``.

    Returns None for an empty interval; (None, None) endpoints mean
    unbounded.
    """
    if coef == 0:
        return (None, None) if lo <= base <= hi else None
    if coef > 0:
        return (_ceil_div(lo - base, coef), (hi - base) // coef)
    return (_ceil_div(hi - base, coef), (lo - base) // coef)


def _affine_ranges_intersect(
    f: AffineForm, rf: Tuple[int, int], g: AffineForm, rg: Tuple[int, int]
) -> bool:
    """Exact overlap test for two mod-free forms over half-open index ranges.

    Decides whether ``f(x) == g(y)`` has a solution with ``x in [rf)`` and
    ``y in [rg)`` by solving the linear Diophantine equation
    ``a1*x - a2*y = b2 - b1`` and intersecting the solution line with the
    box of index bounds — the Banerjei-style exact test for single-index
    affine subscripts.
    """
    (lof, hif), (log_, hig) = rf, rg
    d = g.b - f.b
    if f.a == 0 and g.a == 0:
        return d == 0
    if f.a == 0:
        # b1 = a2*y + b2  ->  y = -d / a2
        if (-d) % g.a != 0:
            return False
        y = (-d) // g.a
        return log_ <= y <= hig - 1
    if g.a == 0:
        if d % f.a != 0:
            return False
        x = d // f.a
        return lof <= x <= hif - 1
    gg = math.gcd(f.a, g.a)
    if d % gg != 0:
        return False
    # Particular solution of a1*x - a2*y = d via the extended GCD.
    u, v = _ext_gcd(f.a, -g.a)  # f.a*u + (-g.a)*v = gcd(f.a, -g.a) = gg (sign-adjusted)
    scale = d // gg
    x0, y0 = u * scale, v * scale
    # General solution: x = x0 + (a2/gg)*t, y = y0 + (a1/gg)*t.
    ix = _t_interval(g.a // gg, x0, lof, hif - 1)
    iy = _t_interval(f.a // gg, y0, log_, hig - 1)
    if ix is None or iy is None:
        return False
    tmin = max((t for t in (ix[0], iy[0]) if t is not None), default=None)
    tmax = min((t for t in (ix[1], iy[1]) if t is not None), default=None)
    if tmin is None or tmax is None:
        return True  # at least one direction unbounded and the other nonempty
    return tmin <= tmax


def _ext_gcd(a: int, b: int) -> Tuple[int, int]:
    """Return ``(u, v)`` with ``a*u + b*v == gcd(a, b)`` (gcd taken positive)."""
    old_r, r = a, b
    old_u, u = 1, 0
    old_v, v = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_u, u = u, old_u - q * u
        old_v, v = v, old_v - q * v
    if old_r < 0:
        old_u, old_v = -old_u, -old_v
    return old_u, old_v


def _modular_image_residues(form: AffineForm, extent: int) -> Optional[Tuple[int, int, int]]:
    """Closed-form image of a full-period modular form: ``(base, stride, m)``.

    When the window covers at least one full period, the image of
    ``(a*i + b) mod m`` is exactly the coset ``{ (b + k*g) mod m }`` for
    ``g = gcd(a, m)`` — every multiple of ``g`` shifted by ``b``.  Returns
    None when the window is partial (image depends on the window position).
    """
    if form.mod is None:
        return None
    g = math.gcd(form.a, form.mod)
    period = form.mod // g
    if extent < period:
        return None
    return (form.b % g, g, form.mod)


def _enumerate_image(form: AffineForm, rng: Tuple[int, int]) -> frozenset:
    return frozenset(form.evaluate(i) for i in range(rng[0], rng[1]))


def form_images_disjoint(
    f: AffineForm,
    range_f: Tuple[int, int],
    g: AffineForm,
    range_g: Tuple[int, int],
) -> Optional[bool]:
    """Decide whether two forms' images over half-open index ranges are disjoint.

    The launch-domain ranges may differ (cross-launch interference checks
    compare loops with different bounds).  Returns True/False when decided,
    None when the question must go to the dynamic check.  Decision ladder:

    1. empty ranges are trivially disjoint;
    2. the GCD residue test separates images occupying distinct residue
       classes, over any bounds;
    3. two mod-free affine forms get the exact bounded Diophantine solve;
    4. a full-period modular image is a coset of ``gcd(a, m)*Z`` — compared
       in closed form against constants and against other full-period
       modular images with the same modulus;
    5. small ranges are enumerated exactly;
    6. otherwise undecided (None).
    """
    (lof, hif), (log_, hig) = range_f, range_g
    nf, ng = hif - lof, hig - log_
    if nf <= 0 or ng <= 0:
        return True
    if residue_separated(f, g):
        return True
    if f.mod is None and g.mod is None:
        return not _affine_ranges_intersect(f, range_f, g, range_g)

    # Closed forms for full-period modular images.
    cf = _modular_image_residues(f, nf) if f.mod is not None else None
    cg = _modular_image_residues(g, ng) if g.mod is not None else None
    if cf is not None and g.is_constant:
        base, stride, m = cf
        return not (0 <= g.b < m and (g.b - base) % stride == 0)
    if cg is not None and f.is_constant:
        base, stride, m = cg
        return not (0 <= f.b < m and (f.b - base) % stride == 0)
    if cf is not None and cg is not None and cf[2] == cg[2]:
        # Two cosets of the same Z_m: they meet iff gcd(g1, g2) | (b1 - b2).
        return (cf[0] - cg[0]) % math.gcd(cf[1], cg[1]) != 0

    if nf <= _ENUM_CAP and ng <= _ENUM_CAP:
        return _enumerate_image(f, range_f).isdisjoint(_enumerate_image(g, range_g))
    return None


# --------------------------------------------------------------------------
# Runtime entry point (cross-check of Section 3)
# --------------------------------------------------------------------------

def images_disjoint_static(
    domain: Domain, f: ProjectionFunctor, g: ProjectionFunctor
) -> Optional[bool]:
    """Try to decide statically whether two functors' images over ``domain``
    are disjoint (the cross-check of Section 3).

    Returns True/False when decidable, None when the dynamic cross-check is
    required.  Functors expressible as :class:`AffineForm` (identity,
    constant, affine, modular) are decided by the shared symbolic engine —
    exactly over dense 1-D domains, and by the domain-independent GCD
    residue test otherwise.  Everything else (opaque callables, plane
    projections, N-D affine maps) stays with the dynamic check.
    """
    if domain.volume == 0:
        return True
    try:
        if f == g:
            return False  # identical images over a non-empty domain
    except Exception:
        pass
    if isinstance(f, ConstantFunctor) and isinstance(g, ConstantFunctor):
        return f.value != g.value
    ff = functor_to_form(f)
    gg = functor_to_form(g)
    if ff is None or gg is None:
        return None
    if domain.dense and domain.dim == 1:
        rng = (domain.bounds.lo[0], domain.bounds.hi[0] + 1)
        return form_images_disjoint(ff, rng, gg, rng)
    if residue_separated(ff, gg):
        return True  # distinct residue classes never meet, over any domain
    return None  # sparse domain: leave it to the dynamic check
