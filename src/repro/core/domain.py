"""N-dimensional points, rectangles, and launch domains.

A :class:`Domain` is the index space of an index launch: the set of points
``i`` for which a task instance ``T(f1(i), ..., fn(i))`` is created.  Domains
may be dense rectangles (the common case: ``for i = 0, N``) or irregular
point sets (e.g. the 3-D diagonal slices used by DOM sweeps in Soleil-X).

Coordinates are integers.  Rectangle bounds are *inclusive* on both ends,
matching Legion's ``Rect`` convention (``[0,3]`` has volume 4, as drawn in
Figures 2 and 3 of the paper).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence, Tuple, Union

import numpy as np

__all__ = ["Point", "Rect", "Domain", "coerce_point"]

Coord = Union[int, np.integer]


class Point(tuple):
    """An N-dimensional integer point.

    ``Point`` is a tuple subclass so it is hashable, orderable, and cheap.
    1-D points compare equal to ``(x,)`` but helpers accept bare ints where
    unambiguous (see :func:`coerce_point`).
    """

    __slots__ = ()

    def __new__(cls, *coords: Coord) -> "Point":
        if len(coords) == 1 and isinstance(coords[0], (tuple, list, np.ndarray)):
            coords = tuple(coords[0])
        if not coords:
            raise ValueError("Point requires at least one coordinate")
        return super().__new__(cls, (int(c) for c in coords))

    @property
    def dim(self) -> int:
        """Dimensionality of the point."""
        return len(self)

    def __add__(self, other: Sequence[Coord]) -> "Point":
        other = coerce_point(other, self.dim)
        return Point(*(a + b for a, b in zip(self, other)))

    def __sub__(self, other: Sequence[Coord]) -> "Point":
        other = coerce_point(other, self.dim)
        return Point(*(a - b for a, b in zip(self, other)))

    def __mul__(self, scalar: Coord) -> "Point":
        return Point(*(a * int(scalar) for a in self))

    __rmul__ = __mul__

    def __repr__(self) -> str:
        return f"Point{tuple(self)!r}"


def coerce_point(value: Union[Coord, Sequence[Coord], Point], dim: int = None) -> Point:
    """Coerce ``value`` into a :class:`Point`, validating dimensionality.

    Bare integers become 1-D points.  Raises ``ValueError`` on a dimension
    mismatch when ``dim`` is given.
    """
    if isinstance(value, Point):
        pt = value
    elif isinstance(value, (int, np.integer)):
        pt = Point(int(value))
    elif isinstance(value, (tuple, list, np.ndarray)):
        pt = Point(*value)
    else:
        raise TypeError(f"cannot interpret {value!r} as a Point")
    if dim is not None and pt.dim != dim:
        raise ValueError(f"expected a {dim}-D point, got {pt.dim}-D point {pt}")
    return pt


class Rect:
    """A dense N-dimensional rectangle with inclusive bounds ``[lo, hi]``.

    An empty rectangle (any ``hi[d] < lo[d]``) has volume 0.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Sequence[Coord], hi: Sequence[Coord]):
        self.lo = coerce_point(lo)
        self.hi = coerce_point(hi, self.lo.dim)

    @property
    def dim(self) -> int:
        """Dimensionality of the rectangle."""
        return self.lo.dim

    @property
    def extents(self) -> Tuple[int, ...]:
        """Per-dimension size (clamped at zero for empty rects)."""
        return tuple(max(0, h - l + 1) for l, h in zip(self.lo, self.hi))

    @property
    def volume(self) -> int:
        """Number of points contained."""
        v = 1
        for e in self.extents:
            v *= e
        return v

    @property
    def empty(self) -> bool:
        """True when the rectangle contains no points."""
        return self.volume == 0

    def contains(self, point: Union[Coord, Sequence[Coord]]) -> bool:
        """Whether ``point`` lies within the inclusive bounds."""
        p = coerce_point(point, self.dim)
        return all(l <= c <= h for l, c, h in zip(self.lo, p, self.hi))

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` is fully contained in ``self``."""
        if other.empty:
            return True
        return self.contains(other.lo) and self.contains(other.hi)

    def intersection(self, other: "Rect") -> "Rect":
        """The overlapping rectangle (possibly empty)."""
        if self.dim != other.dim:
            raise ValueError("dimension mismatch in Rect.intersection")
        lo = Point(*(max(a, b) for a, b in zip(self.lo, other.lo)))
        hi = Point(*(min(a, b) for a, b in zip(self.hi, other.hi)))
        return Rect(lo, hi)

    def overlaps(self, other: "Rect") -> bool:
        """Whether the two rectangles share at least one point."""
        return not self.intersection(other).empty

    def linearize(self, point: Union[Coord, Sequence[Coord]]) -> int:
        """Bijectively map a contained point to ``[0, volume)`` (row-major).

        This is the linearization procedure from Listing 3 (line 12): the
        dynamic check's bitmask is a linear array, so N-D projection functor
        values must be mapped to scalars using the bounds of the partition.
        """
        p = coerce_point(point, self.dim)
        if not self.contains(p):
            raise ValueError(f"{p} not contained in {self}")
        index = 0
        for c, l, e in zip(p, self.lo, self.extents):
            index = index * e + (c - l)
        return index

    def linearize_batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`linearize` for a ``(n, dim)`` int array.

        All points must be contained in the rectangle; the scalar method's
        bounds check is hoisted into one vectorized comparison.
        """
        pts = np.asarray(points, dtype=np.int64)
        if pts.ndim == 1:
            pts = pts.reshape(-1, 1)
        if pts.shape[1] != self.dim:
            raise ValueError(
                f"expected {self.dim}-D points, got {pts.shape[1]}-D batch"
            )
        lo = np.asarray(self.lo, dtype=np.int64)
        hi = np.asarray(self.hi, dtype=np.int64)
        if len(pts) and not np.all((pts >= lo) & (pts <= hi)):
            bad = pts[~np.all((pts >= lo) & (pts <= hi), axis=1)][0]
            raise ValueError(f"{Point(*bad)} not contained in {self}")
        extents = np.asarray(self.extents, dtype=np.int64)
        strides = np.ones_like(extents)
        for d in range(len(extents) - 2, -1, -1):
            strides[d] = strides[d + 1] * extents[d + 1]
        return (pts - lo) @ strides

    def delinearize(self, index: int) -> Point:
        """Inverse of :meth:`linearize`."""
        if not 0 <= index < self.volume:
            raise ValueError(f"index {index} out of range for {self}")
        coords = []
        for e in reversed(self.extents):
            coords.append(index % e)
            index //= e
        coords.reverse()
        return Point(*(l + c for l, c in zip(self.lo, coords)))

    def points(self) -> Iterator[Point]:
        """Iterate contained points in row-major order."""
        if self.empty:
            return
        ranges = [range(l, h + 1) for l, h in zip(self.lo, self.hi)]
        for coords in itertools.product(*ranges):
            yield Point(*coords)

    def __iter__(self) -> Iterator[Point]:
        return self.points()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        if self.empty and other.empty:
            return self.dim == other.dim
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        if self.empty:
            return hash(("Rect-empty", self.dim))
        return hash(("Rect", self.lo, self.hi))

    def __repr__(self) -> str:
        return f"Rect({tuple(self.lo)}, {tuple(self.hi)})"


class Domain:
    """The index space of an index launch.

    Two flavours share one interface:

    * *dense*: a :class:`Rect` (``Domain.rect`` / ``Domain.range``), the common
      ``for i = 0, N`` case;
    * *sparse*: an explicit point set (``Domain.points``), e.g. the diagonal
      slices of a DOM sweep where the launch domain is
      ``{(x, y, z) : x + y + z == k}``.

    The degree of parallelism of a launch is ``|D|`` (:attr:`volume`), per
    Section 3 of the paper (``P = |D|``).
    """

    __slots__ = ("_rect", "_points", "_dim", "_hash", "_fset")

    def __init__(self, rect: Rect = None, points: Sequence[Point] = None):
        self._hash = None
        self._fset = None
        if (rect is None) == (points is None):
            raise ValueError("Domain takes exactly one of rect= or points=")
        if rect is not None:
            self._rect = rect
            self._points = None
            self._dim = rect.dim
        else:
            pts = [coerce_point(p) for p in points]
            if not pts:
                raise ValueError("sparse Domain requires at least one point; "
                                 "use Domain.empty(dim) for an empty domain")
            dim = pts[0].dim
            for p in pts:
                if p.dim != dim:
                    raise ValueError("mixed-dimension points in Domain")
            if len(set(pts)) != len(pts):
                raise ValueError("duplicate points in sparse Domain")
            self._rect = None
            self._points = tuple(pts)
            self._dim = dim

    # ---------------------------------------------------------------- ctors
    @classmethod
    def rect(cls, lo: Sequence[Coord], hi: Sequence[Coord]) -> "Domain":
        """Dense domain over inclusive bounds ``[lo, hi]``."""
        return cls(rect=Rect(lo, hi))

    @classmethod
    def range(cls, n: int) -> "Domain":
        """The 1-D domain ``[0, n)`` — i.e. ``for i = 0, n`` in Regent."""
        if n < 0:
            raise ValueError("Domain.range requires n >= 0")
        return cls(rect=Rect(Point(0), Point(n - 1)))

    @classmethod
    def points(cls, pts: Iterable[Union[Coord, Sequence[Coord]]]) -> "Domain":
        """Sparse domain from an explicit point list (no duplicates)."""
        return cls(points=[coerce_point(p) for p in pts])

    @classmethod
    def empty(cls, dim: int = 1) -> "Domain":
        """An empty dense domain of the given dimensionality."""
        return cls(rect=Rect(Point(*([0] * dim)), Point(*([-1] * dim))))

    # ------------------------------------------------------------- queries
    @property
    def dim(self) -> int:
        """Dimensionality of the domain's points."""
        return self._dim

    @property
    def dense(self) -> bool:
        """True when backed by a rectangle."""
        return self._rect is not None

    @property
    def bounds(self) -> Rect:
        """Tight bounding rectangle of the domain."""
        if self._rect is not None:
            return self._rect
        lo = Point(*(min(p[d] for p in self._points) for d in range(self._dim)))
        hi = Point(*(max(p[d] for p in self._points) for d in range(self._dim)))
        return Rect(lo, hi)

    @property
    def volume(self) -> int:
        """Number of points — the launch's degree of parallelism P."""
        if self._rect is not None:
            return self._rect.volume
        return len(self._points)

    def contains(self, point: Union[Coord, Sequence[Coord]]) -> bool:
        """Membership test."""
        p = coerce_point(point, self._dim)
        if self._rect is not None:
            return self._rect.contains(p)
        return p in self._points

    def __iter__(self) -> Iterator[Point]:
        if self._rect is not None:
            return self._rect.points()
        return iter(self._points)

    def __len__(self) -> int:
        return self.volume

    def point_array(self) -> np.ndarray:
        """All points as an ``(volume, dim)`` int64 array (vectorized checks)."""
        if self._rect is not None:
            if self._rect.empty:
                return np.empty((0, self._dim), dtype=np.int64)
            axes = [np.arange(l, h + 1, dtype=np.int64)
                    for l, h in zip(self._rect.lo, self._rect.hi)]
            grids = np.meshgrid(*axes, indexing="ij")
            return np.stack([g.ravel() for g in grids], axis=1)
        return np.asarray(self._points, dtype=np.int64).reshape(self.volume, self._dim)

    def _point_set(self) -> frozenset:
        if self._fset is None:
            self._fset = frozenset(iter(self))
        return self._fset

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Domain):
            return NotImplemented
        if self._dim != other._dim:
            return False
        # Fast paths: dense rects compare by bounds, sparse point tuples by
        # cached frozensets.  Only the mixed dense/sparse case still needs a
        # point-set comparison, and the dense side never materializes: equal
        # volume plus full containment of the (deduplicated) sparse points is
        # equivalent to set equality.
        if self._rect is not None and other._rect is not None:
            return self._rect == other._rect
        if self._rect is None and other._rect is None:
            if self._points == other._points:
                return True
            return self._point_set() == other._point_set()
        dense, sparse = (self, other) if self._rect is not None else (other, self)
        if dense.volume != len(sparse._points):
            return False
        rect = dense._rect
        return all(rect.contains(p) for p in sparse._points)

    def __hash__(self) -> int:
        # Equal domains must hash equal even across the dense/sparse divide
        # (Domain.range(4) == Domain.points([0, 1, 2, 3])), so hash only
        # invariants shared by equal point sets: volume and tight bounds.
        # Sparse domains with equal bounds collide and fall back to __eq__.
        h = self._hash
        if h is None:
            h = hash(("Domain", self.volume, self.bounds))
            self._hash = h
        return h

    def __getstate__(self):
        # Keep pickled blobs independent of lazily-populated hash/point-set
        # caches so delta-shipped state stays deterministic.
        return (self._rect, self._points, self._dim)

    def __setstate__(self, state):
        self._rect, self._points, self._dim = state
        self._hash = None
        self._fset = None

    def __repr__(self) -> str:
        if self._rect is not None:
            return f"Domain(rect={self._rect!r})"
        if len(self._points) <= 4:
            return f"Domain(points={list(self._points)!r})"
        return f"Domain(points=<{len(self._points)} pts, dim={self._dim}>)"
