"""Core abstractions for index launches.

This subpackage implements the paper's primary contribution: the O(1)
representation of a group of parallel tasks (:class:`~repro.core.launch.IndexLaunch`),
projection functors, and the hybrid static/dynamic safety analysis.
"""

from repro.core.domain import Point, Rect, Domain
from repro.core.projection import (
    ProjectionFunctor,
    IdentityFunctor,
    ConstantFunctor,
    AffineFunctor,
    ModularFunctor,
    QuadraticFunctor,
    CallableFunctor,
    ComposedFunctor,
    AffineNDFunctor,
    PlaneProjectionFunctor,
    Injectivity,
)
from repro.core.static_analysis import StaticVerdict, classify_functor, analyze_static
from repro.core.checks import (
    CheckResult,
    dynamic_self_check,
    dynamic_cross_check,
    self_check_reference,
)
from repro.core.safety import SafetyMethod, SafetyVerdict, analyze_launch_safety
from repro.core.launch import RegionRequirement, IndexLaunch, TaskLaunch

__all__ = [
    "Point",
    "Rect",
    "Domain",
    "ProjectionFunctor",
    "IdentityFunctor",
    "ConstantFunctor",
    "AffineFunctor",
    "ModularFunctor",
    "QuadraticFunctor",
    "CallableFunctor",
    "ComposedFunctor",
    "AffineNDFunctor",
    "PlaneProjectionFunctor",
    "Injectivity",
    "StaticVerdict",
    "classify_functor",
    "analyze_static",
    "CheckResult",
    "dynamic_self_check",
    "dynamic_cross_check",
    "self_check_reference",
    "SafetyMethod",
    "SafetyVerdict",
    "analyze_launch_safety",
    "RegionRequirement",
    "IndexLaunch",
    "TaskLaunch",
]
