"""Launch safety analysis: the hybrid static/dynamic decision procedure (§3–§4).

An index launch is *valid* when its tasks are pairwise non-interfering.  The
paper factors this into:

**Self-checks** — for each argument <P_i, f_i>: the privilege is read (or a
reduction), OR ``P_i`` is disjoint and ``f_i`` injective over the launch
domain.

**Cross-checks** — for each pair <P_i, f_i>, <P_j, f_j>: both privileges are
read (or same-operator reductions), OR the arguments name partitions of
distinct collections, OR they share one disjoint partition and the functor
images over the domain are disjoint.

The procedure here first applies the static analysis
(:mod:`repro.core.static_analysis`); whatever remains undecided is resolved
with the dynamic checks of :mod:`repro.core.checks` — unless the caller
disables them (``run_dynamic=False``), in which case undecided launches are
reported as unverified, matching the paper's "checks can be disabled for
production runs" behaviour (correctness of a valid program never depends on
the check).

Cross-checks on a shared partition are batched: all arguments naming the
same partition are verified with a *single* shared bitmask, writes before
reads, which is the linear-time algorithm of Section 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.checks import CheckResult, dynamic_cross_check
from repro.core.domain import Domain
from repro.core.launch import IndexLaunch, RegionRequirement
from repro.core.static_analysis import (
    StaticVerdict,
    analyze_static,
    images_disjoint_static,
)
from repro.data.privileges import Privilege

__all__ = ["SafetyMethod", "SafetyVerdict", "analyze_launch_safety"]


class SafetyMethod(enum.Enum):
    """How (or whether) safety was established."""

    STATIC = "static"           # proven entirely at compile time
    HYBRID = "hybrid"           # static plus one or more dynamic checks
    UNVERIFIED = "unverified"   # dynamic checks were disabled; assumed valid
    UNSAFE = "unsafe"           # proven or detected interference


@dataclass
class SafetyVerdict:
    """Outcome of analyzing one index launch.

    Attributes:
        safe: False only when interference was positively established
            (statically, or by a failed dynamic check).
        method: how the conclusion was reached.
        reasons: human-readable audit trail, one entry per decision.
        dynamic_results: raw results of any dynamic checks that ran.
        check_evaluations: total projection-functor evaluations spent in
            dynamic checks — the O(|D|) cost the paper measures in
            Tables 2 and 3 (zero when everything was static).
        cached: True when this verdict was served from the launch-replay
            cache rather than computed afresh (check_evaluations then
            reports the cost the *original* analysis paid).
    """

    safe: bool
    method: SafetyMethod
    reasons: List[str] = field(default_factory=list)
    dynamic_results: List[CheckResult] = field(default_factory=list)
    check_evaluations: int = 0
    cached: bool = False

    @property
    def static_only(self) -> bool:
        return self.method is SafetyMethod.STATIC


def _mode(req: RegionRequirement) -> str:
    """Collapse a privilege to the dynamic checks' read/write dichotomy.

    Reductions count as writes for the purposes of the bitmask checks, as in
    Section 4 ("for simplicity, we consider reductions to be writes").
    """
    return "read" if req.privilege.privilege is Privilege.READ else "write"


def analyze_launch_safety(
    launch: IndexLaunch,
    run_dynamic: bool = True,
    use_numpy: bool = True,
    check_memo=None,
) -> SafetyVerdict:
    """Apply the full Section-3 procedure to ``launch``.

    Args:
        launch: the candidate index launch.
        run_dynamic: emit/execute dynamic checks for statically undecided
            requirements.  When False, undecided launches come back with
            ``method=UNVERIFIED`` (and ``safe=True``, since the check is
            advisory).
        use_numpy: choose the vectorized check implementation.
        check_memo: optional memo with a ``run(domain, args, bounds,
            use_numpy)`` method (see
            :class:`repro.runtime.replay.DynamicCheckMemo`) substituted for
            :func:`dynamic_cross_check` — dynamic checks are pure in
            (domain, functors, bounds), so their results can be shared even
            across distinct launches.
    """
    run_check = dynamic_cross_check if check_memo is None else check_memo.run
    domain = launch.domain
    reasons: List[str] = []
    dynamic_results: List[CheckResult] = []
    needs_dynamic_self: List[int] = []

    # ------------------------------------------------------------ self-checks
    for idx, req in enumerate(launch.requirements):
        priv = req.privilege.privilege
        if priv is Privilege.READ:
            reasons.append(f"arg{idx}: read-only, self-check trivially passes")
            continue
        if priv is Privilege.REDUCE:
            reasons.append(f"arg{idx}: reduction, self-check trivially passes")
            continue
        if not req.partition.disjoint:
            reasons.append(
                f"arg{idx}: write privilege on aliased partition "
                f"{req.partition.name!r} — unsafe"
            )
            return SafetyVerdict(False, SafetyMethod.UNSAFE, reasons)
        verdict = analyze_static(domain, req.functor)
        if verdict is StaticVerdict.SAFE:
            reasons.append(
                f"arg{idx}: functor {req.functor.describe()} statically injective"
            )
        elif verdict is StaticVerdict.UNSAFE:
            reasons.append(
                f"arg{idx}: functor {req.functor.describe()} statically "
                f"non-injective over |D|={domain.volume} — unsafe"
            )
            return SafetyVerdict(False, SafetyMethod.UNSAFE, reasons)
        else:
            reasons.append(
                f"arg{idx}: functor {req.functor.describe()} undecided, "
                f"deferring to dynamic check"
            )
            needs_dynamic_self.append(idx)

    # ----------------------------------------------------------- cross-checks
    # Group by partition: pairs on distinct regions are disjoint collections
    # (rule 2); pairs on the same *partition* use the shared-bitmask check
    # (rule 3); pairs on different partitions of the same region cannot be
    # proven by whole-partition reasoning.
    cross_groups: Dict[int, List[int]] = {}
    n = len(launch.requirements)
    for i in range(n):
        for j in range(i + 1, n):
            ri, rj = launch.requirements[i], launch.requirements[j]
            if ri.privilege.compatible_with(rj.privilege):
                continue  # both read, or same-op reductions
            if ri.region.uid != rj.region.uid:
                continue  # partitions of distinct (disjoint) collections
            if not set(ri.resolved_fields()) & set(rj.resolved_fields()):
                reasons.append(
                    f"args {i},{j}: disjoint field sets, no interference"
                )
                continue  # per-field privileges never alias
            if ri.partition.uid != rj.partition.uid:
                # Region-tree reasoning: partitions descending from
                # different colors of a common disjoint ancestor are
                # partitions of disjoint collections (cross-check rule 2,
                # generalized to nested partitions).
                if ri.partition.disjoint_from(rj.partition):
                    reasons.append(
                        f"args {i},{j}: partitions of disjoint sub-collections "
                        f"(region-tree ancestors differ)"
                    )
                    continue
                reasons.append(
                    f"args {i},{j}: conflicting privileges on different partitions "
                    f"({ri.partition.name!r} vs {rj.partition.name!r}) of region "
                    f"{ri.region.name!r} — whole-partition reasoning cannot prove "
                    f"independence; unsafe"
                )
                return SafetyVerdict(False, SafetyMethod.UNSAFE, reasons)
            if not ri.partition.disjoint:
                reasons.append(
                    f"args {i},{j}: conflicting privileges on aliased partition "
                    f"{ri.partition.name!r} — unsafe"
                )
                return SafetyVerdict(False, SafetyMethod.UNSAFE, reasons)
            static = images_disjoint_static(domain, ri.functor, rj.functor)
            if static is True:
                reasons.append(f"args {i},{j}: images statically disjoint")
                continue
            if static is False:
                reasons.append(
                    f"args {i},{j}: images statically overlap with conflicting "
                    f"privileges — unsafe"
                )
                return SafetyVerdict(False, SafetyMethod.UNSAFE, reasons)
            cross_groups.setdefault(ri.partition.uid, [])
            for k in (i, j):
                if k not in cross_groups[ri.partition.uid]:
                    cross_groups[ri.partition.uid].append(k)

    # Self-checks subsumed by a cross-check group need no separate pass: the
    # group check concatenates every write image, catching intra-argument
    # duplicates too.
    pending_self = [
        idx
        for idx in needs_dynamic_self
        if not any(idx in grp for grp in cross_groups.values())
    ]

    if not pending_self and not cross_groups:
        return SafetyVerdict(True, SafetyMethod.STATIC, reasons)

    if not run_dynamic:
        reasons.append(
            "dynamic checks disabled: launch assumed valid (checks are advisory)"
        )
        return SafetyVerdict(True, SafetyMethod.UNVERIFIED, reasons)

    evaluations = 0
    for idx in pending_self:
        req = launch.requirements[idx]
        result = run_check(
            domain,
            [(req.functor, "write")],
            req.partition.color_bounds,
            use_numpy=use_numpy,
        )
        dynamic_results.append(result)
        evaluations += result.evaluations
        if not result.safe:
            reasons.append(
                f"arg{idx}: dynamic self-check found duplicate at domain point "
                f"{result.conflict_point} — unsafe"
            )
            return SafetyVerdict(
                False, SafetyMethod.UNSAFE, reasons, dynamic_results, evaluations
            )
        reasons.append(f"arg{idx}: dynamic self-check passed")

    for part_uid, arg_indices in cross_groups.items():
        reqs = [(launch.requirements[k].functor, _mode(launch.requirements[k]))
                for k in arg_indices]
        bounds = launch.requirements[arg_indices[0]].partition.color_bounds
        result = run_check(domain, reqs, bounds, use_numpy=use_numpy)
        dynamic_results.append(result)
        evaluations += result.evaluations
        if not result.safe:
            bad = arg_indices[result.conflict_arg]
            reasons.append(
                f"args {arg_indices}: dynamic cross-check conflict via arg{bad} "
                f"at domain point {result.conflict_point} — unsafe"
            )
            return SafetyVerdict(
                False, SafetyMethod.UNSAFE, reasons, dynamic_results, evaluations
            )
        reasons.append(f"args {arg_indices}: dynamic cross-check passed")

    return SafetyVerdict(
        True, SafetyMethod.HYBRID, reasons, dynamic_results, evaluations
    )
