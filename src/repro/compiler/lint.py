"""Whole-program interference linter for mini-Regent programs.

``lint_source`` parses a program and runs the full static interference
analysis over **every** top-level loop — the same per-loop analysis the
optimizer applies (:func:`repro.compiler.optimize.analyze_loop`, §3
self-checks and cross-checks via the shared symbolic affine engine) —
and then a pass nothing in the compile pipeline performs: *cross-launch*
interference between distinct index launches naming the same partition.
Two launches whose write images overlap (write/write), or where one
launch writes subregions another reads (write/read), are not races —
program order is preserved by the runtime's dependence analysis — but
they must serialize, which caps the parallelism the launches were
written to expose.  The linter proves or refutes those overlaps with the
same engine (image disjointness over each loop's own domain).

Verdicts per loop:

* ``SAFE`` — every §3 check statically proven; the loop launches with
  no dynamic checks.
* ``NEEDS_DYNAMIC`` — some check undecided; the Listing-3 dynamic check
  will run at launch time.
* ``UNSAFE`` — interference statically proven; executing the loop as an
  index launch would race, so the compiler keeps the serial loop.
* ``NOT_A_CANDIDATE`` — structurally ineligible (§4); runs serially.

A report renders as compiler-style text or JSON (``to_dict``).  Exit
codes: 0 clean, 1 when any ERROR-severity diagnostic fired (a
statically-proven race or a violated ``parallel for`` contract), 2 when
the program does not parse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler.ast import Assign, ForLoop, Program, VarDecl
from repro.compiler.diagnostics import (
    Diagnostic,
    Severity,
    Span,
    render_diagnostics,
)
from repro.compiler.functors import FunctorClass
from repro.compiler.lexer import LexError
from repro.compiler.optimize import LoopAnalysis, RegionArg, analyze_loop
from repro.compiler.parser import ParseError, parse
from repro.compiler.symbolic import const_eval, images_disjoint_over

__all__ = ["LoopReport", "LintReport", "lint_source", "seed_classifier_action"]

#: optimizer action -> lint verdict
_VERDICTS = {
    "index-launch": "SAFE",
    "dynamic-check": "NEEDS_DYNAMIC",
    "unsafe": "UNSAFE",
    "not-candidate": "NOT_A_CANDIDATE",
}


@dataclass
class LoopReport:
    """Lint findings for one source loop."""

    index: int                     # position among the program's loops
    verdict: str                   # SAFE | NEEDS_DYNAMIC | UNSAFE | NOT_A_CANDIDATE
    analysis: LoopAnalysis

    @property
    def span(self) -> Optional[Span]:
        return self.analysis.loop.span

    @property
    def diagnostics(self) -> List[Diagnostic]:
        return self.analysis.decision.diagnostics

    @property
    def headline(self) -> str:
        loop = self.analysis.loop
        task = self.analysis.call.fn if self.analysis.call else "?"
        where = f"{self.span}" if self.span else "?"
        return (f"loop #{self.index} at {where} "
                f"(for {loop.var}, task {task}): {self.verdict}")

    def to_dict(self) -> Dict:
        loop = self.analysis.loop
        d: Dict = {
            "loop": self.index,
            "verdict": self.verdict,
            "action": self.analysis.decision.action,
            "var": loop.var,
            "demand_parallel": loop.demand_parallel,
            "diagnostics": [g.to_dict() for g in self.diagnostics],
        }
        if self.analysis.call is not None:
            d["task"] = self.analysis.call.fn
        if self.span is not None:
            d["span"] = self.span.to_dict()
        lo, hi = self.analysis.bounds
        if lo is not None and hi is not None:
            d["domain"] = [lo, hi]
        return d


@dataclass
class LintReport:
    """All findings for one program."""

    path: str
    loops: List[LoopReport] = field(default_factory=list)
    cross_launch: List[Diagnostic] = field(default_factory=list)
    parse_error: Optional[Diagnostic] = None

    @property
    def diagnostics(self) -> List[Diagnostic]:
        out = [] if self.parse_error is None else [self.parse_error]
        for lr in self.loops:
            out.extend(lr.diagnostics)
        out.extend(self.cross_launch)
        return out

    @property
    def exit_code(self) -> int:
        if self.parse_error is not None:
            return 2
        if any(d.severity is Severity.ERROR for d in self.diagnostics):
            return 1
        return 0

    def counts(self) -> Dict[str, int]:
        out = {v: 0 for v in _VERDICTS.values()}
        for lr in self.loops:
            out[lr.verdict] += 1
        return out

    def to_dict(self) -> Dict:
        d: Dict = {
            "path": self.path,
            "loops": [lr.to_dict() for lr in self.loops],
            "cross_launch": [g.to_dict() for g in self.cross_launch],
            "summary": self.counts(),
            "exit_code": self.exit_code,
        }
        if self.parse_error is not None:
            d["parse_error"] = self.parse_error.to_dict()
        return d

    def render(self) -> str:
        if self.parse_error is not None:
            return self.parse_error.format(self.path)
        lines: List[str] = []
        for lr in self.loops:
            lines.append(lr.headline)
            for g in lr.diagnostics:
                lines.append("  " + g.format(self.path))
        if self.cross_launch:
            lines.append("cross-launch analysis:")
            for g in self.cross_launch:
                lines.append("  " + g.format(self.path))
        counts = self.counts()
        summary = ", ".join(
            f"{n} {v}" for v, n in counts.items() if n
        ) or "no loops"
        lines.append(f"{self.path}: {summary}")
        return "\n".join(lines)


def _writes(arg: RegionArg) -> bool:
    return arg.mode in ("write", "reduce")


def _cross_launch_pass(reports: List[LoopReport]) -> List[Diagnostic]:
    """Interference between distinct launches naming the same partition.

    Only loops that will actually launch (SAFE or NEEDS_DYNAMIC) take
    part — statically-rejected and non-candidate loops execute serially,
    so program order already sequences them.  For each pair of launches
    and each pair of arguments on one partition with a write involved,
    the engine decides image disjointness over each loop's *own* domain.
    """
    out: List[Diagnostic] = []
    launching = [r for r in reports
                 if r.verdict in ("SAFE", "NEEDS_DYNAMIC")]
    for x, ri in enumerate(launching):
        for rj in launching[x + 1:]:
            ai_list = ri.analysis.region_args
            aj_list = rj.analysis.region_args
            for ai in ai_list:
                for aj in aj_list:
                    if ai.base != aj.base:
                        continue
                    if not (_writes(ai) or _writes(aj)):
                        continue
                    if ai.fields is not None and aj.fields is not None \
                            and not (ai.fields & aj.fields):
                        continue
                    kind = "write/write" if _writes(ai) and _writes(aj) \
                        else "write/read"
                    pair = (f"loop #{ri.index} arg{ai.pos} and "
                            f"loop #{rj.index} arg{aj.pos} on {ai.base!r}")
                    disjoint = images_disjoint_over(
                        ai.form, ri.analysis.domain_range,
                        aj.form, rj.analysis.domain_range,
                    )
                    if disjoint is True:
                        continue  # proven independent: launches overlap freely
                    if disjoint is False:
                        rule = "IL-X01" if kind == "write/write" else "IL-X02"
                        out.append(Diagnostic(
                            rule, Severity.WARNING,
                            f"{kind} interference between {pair}: images "
                            f"overlap, the launches must serialize",
                            aj.span,
                            notes=[f"first launch at {ri.span}"
                                   if ri.span else "first launch"],
                        ))
                    else:
                        out.append(Diagnostic(
                            "IL-X03", Severity.NOTE,
                            f"possible {kind} interference between {pair}: "
                            f"overlap undecided statically",
                            aj.span,
                        ))
    return out


def lint_source(source: str, path: str = "<program>") -> LintReport:
    """Lint a mini-Regent program; never raises on bad input."""
    report = LintReport(path=path)
    try:
        program = parse(source)
    except (ParseError, LexError) as exc:
        span = None
        # Parse errors carry "... at line:col" — surface it as the span.
        import re

        m = re.search(r"at (\d+):(\d+)", str(exc))
        if m:
            span = Span(int(m.group(1)), int(m.group(2)))
        report.parse_error = Diagnostic(
            "IL-P01", Severity.ERROR, str(exc), span
        )
        return report

    env: Dict[str, int] = {}
    for stmt in program.body:
        if isinstance(stmt, ForLoop):
            analysis = analyze_loop(stmt, program.tasks, env)
            report.loops.append(LoopReport(
                index=len(report.loops),
                verdict=_VERDICTS[analysis.decision.action],
                analysis=analysis,
            ))
        elif isinstance(stmt, (VarDecl, Assign)):
            v = const_eval(stmt.value, env)
            if v is None:
                env.pop(stmt.name, None)
            else:
                env[stmt.name] = v
    report.cross_launch = _cross_launch_pass(report.loops)
    return report


def seed_classifier_action(analysis: LoopAnalysis) -> str:
    """The verdict the *seed* (pre-engine) classifier would have reached.

    Reconstructs the original optimizer's logic — coarse functor classes
    only, no loop bounds, no symbolic modular reasoning, equal-stride
    offset comparison for cross-checks — from an already-computed
    analysis.  Kept as the baseline for the before/after verdict-count
    comparison: the symbolic engine must strictly reduce NEEDS_DYNAMIC.
    """
    if analysis.decision.action == "not-candidate":
        return "not-candidate"
    undecided = False
    args = analysis.region_args
    for arg in args:
        if arg.mode != "write":
            continue
        if arg.cls in (FunctorClass.IDENTITY, FunctorClass.AFFINE):
            continue
        if arg.cls is FunctorClass.CONSTANT:
            return "unsafe"
        undecided = True
    for x, ai in enumerate(args):
        for aj in args[x + 1:]:
            if ai.base != aj.base:
                continue
            if ai.mode == "read" and aj.mode == "read":
                continue  # seed: conflict when either side writes/reduces
            if ai.index == aj.index:
                return "unsafe"
            affine = (FunctorClass.IDENTITY, FunctorClass.AFFINE)
            if ai.cls in affine and aj.cls in affine \
                    and ai.form.a == aj.form.a and ai.form.a != 0 \
                    and (ai.form.b - aj.form.b) % abs(ai.form.a) != 0:
                continue  # interleaved: seed proved disjointness
            undecided = True
    return "dynamic-check" if undecided else "index-launch"
