"""A mini-Regent compiler implementing the hybrid analysis of Section 4.

The pipeline mirrors the paper's description of the Regent implementation:

1. **Parse** (:mod:`repro.compiler.parser`) a small Regent-like language::

       task foo(c1, c2) reads(c1) writes(c2) do ... end
       for i = 0, 5 do
         foo(p[i], q[(i + 1) % 3])
       end

2. **Identify candidates** (:mod:`repro.compiler.dependence`): loops whose
   body is a single task launch plus simple statements, with no
   loop-carried dependencies (other than reductions).
3. **Normalize projection functors** (:mod:`repro.compiler.symbolic`):
   index expressions become symbolic affine forms — ``a*i + b``, possibly
   ``mod m`` — decided by the shared engine in
   :mod:`repro.core.static_analysis` (the same procedures the runtime
   uses, so the layers cannot disagree).  The coarse constant / identity /
   affine / unknown classes of :mod:`repro.compiler.functors` are a
   projection of the forms.
4. **Transform** (:mod:`repro.compiler.optimize`): replace the loop AST
   with a dynamic check followed by a branch that selects the index launch
   or the original task loop — the program transformation of Listing 3.
   Every decision carries a structured diagnostic
   (:mod:`repro.compiler.diagnostics`) with a §3 rule id and source span.
5. **Execute** (:mod:`repro.compiler.interp`): run the compiled program
   against the runtime of :mod:`repro.runtime`.

:mod:`repro.compiler.lint` drives the same analysis standalone over whole
programs — plus cross-launch interference checks — for ``repro lint``.
"""

from repro.compiler.ast import (
    Program,
    TaskDef,
    ForLoop,
    CallStmt,
    VarDecl,
    Assign,
    BinOp,
    Name,
    Number,
    Index,
    Call,
)
from repro.compiler.lexer import Token, tokenize, LexError
from repro.compiler.parser import parse, ParseError
from repro.compiler.diagnostics import Diagnostic, Severity, Span
from repro.compiler.functors import classify_index_expr, expr_to_functor, FunctorClass
from repro.compiler.symbolic import (
    normalize_index_expr,
    const_eval,
    injective_over,
    images_disjoint_over,
    form_to_functor,
)
from repro.compiler.dependence import loop_is_candidate, CandidateReport
from repro.compiler.optimize import (
    optimize_program,
    analyze_loop,
    LoopAnalysis,
    IndexLaunchNode,
    DynamicCheckNode,
    DemandViolation,
)
from repro.compiler.lint import lint_source, LintReport, LoopReport
from repro.compiler.interp import compile_and_run, Interpreter
from repro.compiler.pprint import unparse, unparse_expr, unparse_stmt

__all__ = [
    "Program",
    "TaskDef",
    "ForLoop",
    "CallStmt",
    "VarDecl",
    "Assign",
    "BinOp",
    "Name",
    "Number",
    "Index",
    "Call",
    "Token",
    "tokenize",
    "LexError",
    "parse",
    "ParseError",
    "Diagnostic",
    "Severity",
    "Span",
    "classify_index_expr",
    "expr_to_functor",
    "FunctorClass",
    "normalize_index_expr",
    "const_eval",
    "injective_over",
    "images_disjoint_over",
    "form_to_functor",
    "loop_is_candidate",
    "CandidateReport",
    "optimize_program",
    "analyze_loop",
    "LoopAnalysis",
    "IndexLaunchNode",
    "DynamicCheckNode",
    "DemandViolation",
    "lint_source",
    "LintReport",
    "LoopReport",
    "compile_and_run",
    "Interpreter",
    "unparse",
    "unparse_expr",
    "unparse_stmt",
]
