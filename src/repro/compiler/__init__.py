"""A mini-Regent compiler implementing the hybrid analysis of Section 4.

The pipeline mirrors the paper's description of the Regent implementation:

1. **Parse** (:mod:`repro.compiler.parser`) a small Regent-like language::

       task foo(c1, c2) reads(c1) writes(c2) do ... end
       for i = 0, 5 do
         foo(p[i], q[(i + 1) % 3])
       end

2. **Identify candidates** (:mod:`repro.compiler.dependence`): loops whose
   body is a single task launch plus simple statements, with no
   loop-carried dependencies (other than reductions).
3. **Classify projection functors** (:mod:`repro.compiler.functors`): a
   static analysis recognizing constant / identity / affine index
   expressions; everything else is *unknown*.
4. **Transform** (:mod:`repro.compiler.optimize`): replace the loop AST
   with a dynamic check followed by a branch that selects the index launch
   or the original task loop — the program transformation of Listing 3.
5. **Execute** (:mod:`repro.compiler.interp`): run the compiled program
   against the runtime of :mod:`repro.runtime`.
"""

from repro.compiler.ast import (
    Program,
    TaskDef,
    ForLoop,
    CallStmt,
    VarDecl,
    Assign,
    BinOp,
    Name,
    Number,
    Index,
    Call,
)
from repro.compiler.lexer import Token, tokenize, LexError
from repro.compiler.parser import parse, ParseError
from repro.compiler.functors import classify_index_expr, expr_to_functor, FunctorClass
from repro.compiler.dependence import loop_is_candidate, CandidateReport
from repro.compiler.optimize import (
    optimize_program,
    IndexLaunchNode,
    DynamicCheckNode,
    DemandViolation,
)
from repro.compiler.interp import compile_and_run, Interpreter
from repro.compiler.pprint import unparse, unparse_expr, unparse_stmt

__all__ = [
    "Program",
    "TaskDef",
    "ForLoop",
    "CallStmt",
    "VarDecl",
    "Assign",
    "BinOp",
    "Name",
    "Number",
    "Index",
    "Call",
    "Token",
    "tokenize",
    "LexError",
    "parse",
    "ParseError",
    "classify_index_expr",
    "expr_to_functor",
    "FunctorClass",
    "loop_is_candidate",
    "CandidateReport",
    "optimize_program",
    "IndexLaunchNode",
    "DynamicCheckNode",
    "DemandViolation",
    "compile_and_run",
    "Interpreter",
    "unparse",
    "unparse_expr",
    "unparse_stmt",
]
