"""Static classification of projection-functor expressions (Section 4).

Given the index expression of a partition argument (``p[<expr>]``) and the
loop variable, the classifier recognizes the paper's trivial cases:

* **constant** — no occurrence of the loop variable: not injective (over
  any domain with more than one point);
* **identity** — exactly the loop variable: injective;
* **affine** — ``a*i + b`` after constant folding: injective iff ``a != 0``;
* **unknown** — anything else (modulo, quadratic, opaque calls): deferred
  to the dynamic check.

:func:`expr_to_functor` lowers the expression to the runtime's functor
objects, choosing the specialized classes where the shape is recognized
(so the runtime's own static analysis agrees with the compiler's) and an
interpreting :class:`~repro.core.projection.CallableFunctor` otherwise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.compiler.ast import BinOp, Call, Expr, Name, Number, expr_names
from repro.core.projection import (
    AffineFunctor,
    CallableFunctor,
    ConstantFunctor,
    IdentityFunctor,
    ModularFunctor,
    ProjectionFunctor,
)

__all__ = [
    "FunctorClass",
    "classify_index_expr",
    "expr_to_functor",
    "eval_index_expr",
    "eval_host_expr",
]


class FunctorClass(enum.Enum):
    CONSTANT = "constant"
    IDENTITY = "identity"
    AFFINE = "affine"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class _Affine:
    """Symbolic value a*i + b (or None when not affine in i)."""

    a: Optional[float]
    b: Optional[float]

    @property
    def ok(self) -> bool:
        return self.a is not None


_NOT_AFFINE = _Affine(None, None)


def _affine_of(expr: Expr, var: str, env: Dict[str, float]) -> _Affine:
    """Symbolically evaluate ``expr`` as a*var + b with constant a, b."""
    if isinstance(expr, Number):
        return _Affine(0.0, float(expr.value))
    if isinstance(expr, Name):
        if expr.ident == var:
            return _Affine(1.0, 0.0)
        if expr.ident in env and isinstance(env[expr.ident], (int, float)):
            return _Affine(0.0, float(env[expr.ident]))
        return _NOT_AFFINE
    if isinstance(expr, BinOp):
        left = _affine_of(expr.left, var, env)
        right = _affine_of(expr.right, var, env)
        if not (left.ok and right.ok):
            return _NOT_AFFINE
        if expr.op == "+":
            return _Affine(left.a + right.a, left.b + right.b)
        if expr.op == "-":
            return _Affine(left.a - right.a, left.b - right.b)
        if expr.op == "*":
            if left.a == 0.0:
                return _Affine(left.b * right.a, left.b * right.b)
            if right.a == 0.0:
                return _Affine(left.a * right.b, left.b * right.b)
            return _NOT_AFFINE  # i * i: quadratic
        if expr.op == "/":
            if right.a == 0.0 and right.b not in (0.0, None):
                return _Affine(left.a / right.b, left.b / right.b)
            return _NOT_AFFINE
        return _NOT_AFFINE  # %, comparisons
    return _NOT_AFFINE  # calls and anything else


def classify_index_expr(
    expr: Expr, var: str, env: Optional[Dict[str, float]] = None
) -> Tuple[FunctorClass, Optional[Tuple[int, int]]]:
    """Classify ``expr`` as a functor over loop variable ``var``.

    Returns ``(class, (a, b))`` where the affine coefficients are provided
    for CONSTANT/IDENTITY/AFFINE and None for UNKNOWN.
    """
    env = env or {}
    if var not in expr_names(expr):
        aff = _affine_of(expr, var, env)
        if aff.ok and float(aff.b).is_integer():
            return FunctorClass.CONSTANT, (0, int(aff.b))
        return FunctorClass.UNKNOWN, None
    aff = _affine_of(expr, var, env)
    if not aff.ok:
        return FunctorClass.UNKNOWN, None
    if not (float(aff.a).is_integer() and float(aff.b).is_integer()):
        return FunctorClass.UNKNOWN, None
    a, b = int(aff.a), int(aff.b)
    if a == 1 and b == 0:
        return FunctorClass.IDENTITY, (1, 0)
    if a == 0:
        return FunctorClass.CONSTANT, (0, b)
    return FunctorClass.AFFINE, (a, b)


def eval_index_expr(
    expr: Expr, var: str, value: int, env: Dict[str, object]
) -> int:
    """Interpret an *index* expression (coerced to int) with ``var`` bound."""
    return int(eval_host_expr(expr, var, value, env))


def eval_host_expr(expr: Expr, var: str, value: int, env: Dict[str, object]):
    """Interpret any host-level expression with ``var`` bound to ``value``."""
    scope = dict(env)
    scope[var] = value
    return _eval(expr, scope)


def _eval(expr: Expr, scope: Dict[str, object]):
    if isinstance(expr, Number):
        return expr.value
    if isinstance(expr, Name):
        if expr.ident not in scope:
            raise NameError(f"unbound name {expr.ident!r} in index expression")
        return scope[expr.ident]
    if isinstance(expr, BinOp):
        left = _eval(expr.left, scope)
        right = _eval(expr.right, scope)
        ops: Dict[str, Callable] = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a / b,
            "%": lambda a, b: a % b,
            "==": lambda a, b: a == b,
            "<=": lambda a, b: a <= b,
            ">=": lambda a, b: a >= b,
            "<": lambda a, b: a < b,
            ">": lambda a, b: a > b,
            "~=": lambda a, b: a != b,
        }
        return ops[expr.op](left, right)
    if isinstance(expr, Call):
        fn = scope.get(expr.fn)
        if not callable(fn):
            raise NameError(f"unbound function {expr.fn!r} in index expression")
        return fn(*(_eval(a, scope) for a in expr.args))
    raise TypeError(f"cannot evaluate {expr!r} as an index expression")


def expr_to_functor(
    expr: Expr, var: str, env: Dict[str, object]
) -> ProjectionFunctor:
    """Lower an index expression to a runtime projection functor.

    Recognized shapes map to the specialized functor classes — so the
    runtime's hybrid safety analysis reaches the same static verdict the
    compiler did — and everything else becomes an interpreting callable
    (handled by the dynamic check).
    """
    cls, coeffs = classify_index_expr(
        expr, var, {k: v for k, v in env.items() if isinstance(v, (int, float))}
    )
    if cls is FunctorClass.IDENTITY:
        return IdentityFunctor()
    if cls is FunctorClass.CONSTANT:
        return ConstantFunctor(coeffs[1])
    if cls is FunctorClass.AFFINE:
        return AffineFunctor(coeffs[0], coeffs[1])
    # Recognize (e mod n) with e affine as the modular functor family so the
    # runtime can report it distinctly (still dynamically checked).
    if isinstance(expr, BinOp) and expr.op == "%" and isinstance(expr.right, Number):
        inner = _affine_of(
            expr.left, var,
            {k: v for k, v in env.items() if isinstance(v, (int, float))},
        )
        if inner.ok and inner.a == 1.0 and float(inner.b).is_integer():
            return ModularFunctor(int(expr.right.value), int(inner.b))
    return CallableFunctor(
        lambda i: eval_index_expr(expr, var, i, env), name=f"<{var} expr>"
    )
