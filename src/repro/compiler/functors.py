"""Static classification of projection-functor expressions (Section 4).

Given the index expression of a partition argument (``p[<expr>]``) and the
loop variable, the classifier reports the paper's coarse functor classes:

* **constant** — no dependence on the loop variable: not injective (over
  any domain with more than one point);
* **identity** — exactly the loop variable: injective;
* **affine** — ``a*i + b`` after constant folding: injective iff ``a != 0``;
* **unknown** — anything else (modulo, quadratic, opaque calls): deferred
  to the dynamic check.

The classification is a thin projection of the symbolic affine engine
(:mod:`repro.compiler.symbolic`): the expression is normalized into an
:class:`~repro.core.static_analysis.AffineForm` and the form's shape
decides the class.  Modular forms still classify as UNKNOWN — the coarse
class vocabulary cannot express them — but the optimizer consults the
form directly, where ``(i + k) % m`` *is* decidable given the bounds.

:func:`expr_to_functor` lowers the expression to the runtime's functor
objects, choosing the specialized classes where the shape is recognized
(so the runtime's own static analysis agrees with the compiler's) and an
interpreting :class:`~repro.core.projection.CallableFunctor` otherwise.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional, Tuple

from repro.compiler.ast import BinOp, Call, Expr, Name, Number
from repro.core.projection import (
    AffineFunctor,
    CallableFunctor,
    ConstantFunctor,
    IdentityFunctor,
    ModularFunctor,
    ProjectionFunctor,
)

__all__ = [
    "FunctorClass",
    "classify_index_expr",
    "expr_to_functor",
    "eval_index_expr",
    "eval_host_expr",
]


class FunctorClass(enum.Enum):
    CONSTANT = "constant"
    IDENTITY = "identity"
    AFFINE = "affine"
    UNKNOWN = "unknown"


def _int_env(env: Optional[Dict[str, object]]) -> Dict[str, int]:
    """Keep only the integer-valued host bindings the normalizer can use."""
    out: Dict[str, int] = {}
    for k, v in (env or {}).items():
        if isinstance(v, bool):
            continue
        if isinstance(v, int):
            out[k] = v
        elif isinstance(v, float) and v.is_integer():
            out[k] = int(v)
    return out


def classify_index_expr(
    expr: Expr, var: str, env: Optional[Dict[str, float]] = None
) -> Tuple[FunctorClass, Optional[Tuple[int, int]]]:
    """Classify ``expr`` as a functor over loop variable ``var``.

    Returns ``(class, (a, b))`` where the affine coefficients are provided
    for CONSTANT/IDENTITY/AFFINE and None for UNKNOWN.
    """
    from repro.compiler.symbolic import normalize_index_expr

    form = normalize_index_expr(expr, var, _int_env(env))
    if form is None or form.mod is not None:
        return FunctorClass.UNKNOWN, None
    if form.a == 1 and form.b == 0:
        return FunctorClass.IDENTITY, (1, 0)
    if form.a == 0:
        return FunctorClass.CONSTANT, (0, form.b)
    return FunctorClass.AFFINE, (form.a, form.b)


def eval_index_expr(
    expr: Expr, var: str, value: int, env: Dict[str, object]
) -> int:
    """Interpret an *index* expression (coerced to int) with ``var`` bound."""
    return int(eval_host_expr(expr, var, value, env))


def eval_host_expr(expr: Expr, var: str, value: int, env: Dict[str, object]):
    """Interpret any host-level expression with ``var`` bound to ``value``."""
    scope = dict(env)
    scope[var] = value
    return _eval(expr, scope)


def _eval(expr: Expr, scope: Dict[str, object]):
    if isinstance(expr, Number):
        return expr.value
    if isinstance(expr, Name):
        if expr.ident not in scope:
            raise NameError(f"unbound name {expr.ident!r} in index expression")
        return scope[expr.ident]
    if isinstance(expr, BinOp):
        left = _eval(expr.left, scope)
        right = _eval(expr.right, scope)
        ops: Dict[str, Callable] = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a / b,
            "%": lambda a, b: a % b,
            "==": lambda a, b: a == b,
            "<=": lambda a, b: a <= b,
            ">=": lambda a, b: a >= b,
            "<": lambda a, b: a < b,
            ">": lambda a, b: a > b,
            "~=": lambda a, b: a != b,
        }
        return ops[expr.op](left, right)
    if isinstance(expr, Call):
        fn = scope.get(expr.fn)
        if not callable(fn):
            raise NameError(f"unbound function {expr.fn!r} in index expression")
        return fn(*(_eval(a, scope) for a in expr.args))
    raise TypeError(f"cannot evaluate {expr!r} as an index expression")


def expr_to_functor(
    expr: Expr, var: str, env: Dict[str, object]
) -> ProjectionFunctor:
    """Lower an index expression to a runtime projection functor.

    Recognized shapes map to the specialized functor classes — so the
    runtime's hybrid safety analysis reaches the same static verdict the
    compiler did — and everything else becomes an interpreting callable
    (handled by the dynamic check).
    """
    cls, coeffs = classify_index_expr(
        expr, var, {k: v for k, v in env.items() if isinstance(v, (int, float))}
    )
    if cls is FunctorClass.IDENTITY:
        return IdentityFunctor()
    if cls is FunctorClass.CONSTANT:
        return ConstantFunctor(coeffs[1])
    if cls is FunctorClass.AFFINE:
        return AffineFunctor(coeffs[0], coeffs[1])
    # Recognize (e mod m) with e of unit stride as the modular functor
    # family so the runtime can report it distinctly (and, given known
    # bounds, decide it statically).
    from repro.compiler.symbolic import normalize_index_expr

    form = normalize_index_expr(expr, var, _int_env(env))
    if form is not None and form.mod is not None and form.a == 1:
        return ModularFunctor(form.mod, form.b)
    return CallableFunctor(
        lambda i: eval_index_expr(expr, var, i, env), name=f"<{var} expr>"
    )
