"""Structured compiler diagnostics: severities, source spans, rule catalogue.

Every finding the static interference analysis produces — from the
optimization pass, the ``repro lint`` driver, or the runtime-launch
explainer — is a :class:`Diagnostic`: a rule id from the catalogue below, a
severity, a source :class:`Span` (the lexer's line/column, threaded through
the parser onto AST nodes), and a human-readable message.  Diagnostics
render either as compiler-style text (``file:line:col: error[IL-S02]: ...``)
or as JSON (:meth:`Diagnostic.to_dict`), so editors and CI can consume them.

The rule ids map onto the paper's Section-3 validity clauses:

* ``IL-S*`` — the *self-check*: each write-privileged argument ``<P, f>``
  needs ``P`` disjoint and ``f`` injective over the launch domain.
* ``IL-C*`` — the *cross-check*: each argument pair on one partition needs
  compatible privileges or disjoint functor images over the domain.
* ``IL-X*`` — whole-program extension: interference *between* launches
  naming the same partition (no race — program order is preserved — but
  the launches must serialize, which caps parallelism).
* ``IL-D*`` / ``IL-N*`` / ``IL-P*`` — demand violations, non-candidate
  loops, and parse failures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Severity", "Span", "Diagnostic", "RULES", "render_diagnostics"]


class Severity(enum.Enum):
    """Diagnostic severity, ordered from worst to mildest."""

    ERROR = "error"      # statically-proven interference (a race if launched)
    WARNING = "warning"  # well-formed but suspicious (e.g. forced serialization)
    INFO = "info"        # verdict context (e.g. a dynamic check will be emitted)
    NOTE = "note"        # supporting detail

    @property
    def rank(self) -> int:
        return ["error", "warning", "info", "note"].index(self.value)


@dataclass(frozen=True)
class Span:
    """A source location: 1-based line and column, optionally an end point."""

    line: int
    col: int
    end_line: Optional[int] = None
    end_col: Optional[int] = None

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, int]:
        d = {"line": self.line, "col": self.col}
        if self.end_line is not None:
            d["end_line"] = self.end_line
        if self.end_col is not None:
            d["end_col"] = self.end_col
        return d


#: Rule catalogue: id -> (title, which §3 clause / analysis stage it traces to).
RULES: Dict[str, Dict[str, str]] = {
    "IL-S01": {
        "title": "write functor statically injective",
        "clause": "§3 self-check: P disjoint and f injective over D — proven",
    },
    "IL-S02": {
        "title": "write through non-injective functor",
        "clause": "§3 self-check: f is provably not injective over D — "
                  "distinct tasks write one subregion",
    },
    "IL-S03": {
        "title": "injectivity undecided statically",
        "clause": "§3 self-check deferred to the Listing-3 dynamic check",
    },
    "IL-C01": {
        "title": "argument images statically disjoint",
        "clause": "§3 cross-check: images of f_i and f_j over D are disjoint "
                  "— proven",
    },
    "IL-C02": {
        "title": "conflicting arguments overlap",
        "clause": "§3 cross-check: privileges conflict and the images of f_i "
                  "and f_j provably intersect",
    },
    "IL-C03": {
        "title": "image disjointness undecided statically",
        "clause": "§3 cross-check deferred to the Listing-3 dynamic check",
    },
    "IL-X01": {
        "title": "cross-launch write/write interference",
        "clause": "whole-program: two launches write overlapping subregions "
                  "of one partition; they must serialize",
    },
    "IL-X02": {
        "title": "cross-launch write/read interference",
        "clause": "whole-program: one launch writes subregions another "
                  "reads; they must serialize",
    },
    "IL-X03": {
        "title": "cross-launch relation undecided",
        "clause": "whole-program: image overlap between launches could not "
                  "be decided statically",
    },
    "IL-D01": {
        "title": "parallel-for contract violated",
        "clause": "__demand(__index_launch): the annotated loop cannot be "
                  "executed as an index launch",
    },
    "IL-N01": {
        "title": "loop is not an index-launch candidate",
        "clause": "§4 eligibility: single task launch plus simple "
                  "statements, no loop-carried dependencies",
    },
    "IL-P01": {
        "title": "parse failure",
        "clause": "the program could not be lexed/parsed",
    },
}


@dataclass
class Diagnostic:
    """One finding, tied to a rule and (when known) a source span."""

    rule: str
    severity: Severity
    message: str
    span: Optional[Span] = None
    notes: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unknown diagnostic rule {self.rule!r}")

    @property
    def clause(self) -> str:
        return RULES[self.rule]["clause"]

    def format(self, filename: str = "<program>") -> str:
        """Compiler-style one-line rendering plus indented notes."""
        where = f"{filename}:{self.span}: " if self.span else f"{filename}: "
        head = f"{where}{self.severity.value}[{self.rule}]: {self.message}"
        return "\n".join([head] + [f"    note: {n}" for n in self.notes])

    def to_dict(self) -> Dict:
        d = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "clause": self.clause,
        }
        if self.span is not None:
            d["span"] = self.span.to_dict()
        if self.notes:
            d["notes"] = list(self.notes)
        return d


def render_diagnostics(
    diagnostics: List[Diagnostic], filename: str = "<program>"
) -> str:
    """Render diagnostics in severity-then-source order."""
    ordered = sorted(
        diagnostics,
        key=lambda d: (d.severity.rank,
                       d.span.line if d.span else 0,
                       d.span.col if d.span else 0),
    )
    return "\n".join(d.format(filename) for d in ordered)
