"""Symbolic normalization of index expressions into affine forms.

The front half of the whole-program interference linter: lower a
mini-Regent index expression (the ``e`` of ``p[e]``) into the shared
:class:`~repro.core.static_analysis.AffineForm` normal form — ``a*i + b``
or ``(a*i + b) mod m`` with integer coefficients — so the decision
procedures in :mod:`repro.core.static_analysis` (injectivity by the
stride/period test, image disjointness by GCD/Diophantine reasoning) apply
to compiler ASTs exactly as they apply to runtime functors.

Normalization is strictly stronger than the seed classifier
(:func:`repro.compiler.functors.classify_index_expr`): it folds nested
arithmetic and negation, performs exact constant division, resolves host
constants from an environment, and — crucially — represents ``% m``
expressions symbolically instead of giving up on them.

Soundness contract: a returned form is *exactly* equal, as a function on
integers, to what :func:`repro.compiler.functors.eval_index_expr` computes
for the expression (Python floor-``%`` semantics; division is only folded
when it is exact, because the interpreter evaluates ``/`` in floating
point).  When exact equivalence cannot be guaranteed the normalizer
returns None and the verdict falls back to the dynamic check — the same
"completeness buys performance, never correctness" split as the paper's.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.compiler.ast import BinOp, Call, Expr, Name, Number
from repro.core.projection import (
    AffineFunctor,
    CallableFunctor,
    ConstantFunctor,
    IdentityFunctor,
    ModularFunctor,
    ProjectionFunctor,
)
from repro.core.static_analysis import (
    AffineForm,
    affine_form,
    form_images_disjoint,
    form_injective,
    residue_separated,
)

__all__ = [
    "normalize_index_expr",
    "const_eval",
    "form_to_functor",
    "injective_over",
    "images_disjoint_over",
]


def _as_int(value) -> Optional[int]:
    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return None


def _normalize(expr: Expr, var: str, env: Dict[str, int]) -> Optional[AffineForm]:
    if isinstance(expr, Number):
        v = _as_int(expr.value)
        return None if v is None else AffineForm(0, v)
    if isinstance(expr, Name):
        if expr.ident == var:
            return AffineForm(1, 0)
        if expr.ident in env:
            v = _as_int(env[expr.ident])
            return None if v is None else AffineForm(0, v)
        return None
    if isinstance(expr, BinOp):
        left = _normalize(expr.left, var, env)
        if left is None:
            return None
        right = _normalize(expr.right, var, env)
        if right is None:
            return None
        return _combine(expr.op, left, right)
    return None  # calls, field refs, comparisons: opaque


def _combine(op: str, left: AffineForm, right: AffineForm) -> Optional[AffineForm]:
    if op == "%":
        if not right.is_constant or right.b <= 0:
            return None
        m = right.b
        if left.mod is None:
            return affine_form(left.a, left.b, mod=m)
        # (x mod m1) mod m: values already lie in [0, m1).
        if m >= left.mod:
            return left
        if left.mod % m == 0:
            return affine_form(left.a, left.b, mod=m)
        return None
    if left.mod is not None or right.mod is not None:
        return None  # sums/products of modular forms leave the normal form
    if op == "+":
        return AffineForm(left.a + right.a, left.b + right.b)
    if op == "-":
        return AffineForm(left.a - right.a, left.b - right.b)
    if op == "*":
        if left.a == 0:
            return AffineForm(left.b * right.a, left.b * right.b)
        if right.a == 0:
            return AffineForm(left.a * right.b, left.b * right.b)
        return None  # quadratic
    if op == "/":
        # The interpreter evaluates "/" in floating point; folding is only
        # sound when the division is exact on both coefficients.
        if right.is_constant and right.b != 0 \
                and left.a % right.b == 0 and left.b % right.b == 0:
            return AffineForm(left.a // right.b, left.b // right.b)
        return None
    return None  # comparisons


def normalize_index_expr(
    expr: Expr, var: str, env: Optional[Dict[str, int]] = None
) -> Optional[AffineForm]:
    """Normalize ``expr`` over loop variable ``var`` into an affine form.

    ``env`` supplies statically-known integer host bindings (folded as
    constants).  Returns None when the expression leaves the normal form
    (opaque calls, quadratics, inexact division, compound modular
    arithmetic).
    """
    return _normalize(expr, var, dict(env or {}))


def const_eval(expr: Expr, env: Optional[Dict[str, int]] = None) -> Optional[int]:
    """Evaluate ``expr`` to an integer constant if statically possible."""
    # Normalizing against an unnameable loop variable makes every Name
    # resolve through the environment; a constant form is a folded value.
    form = normalize_index_expr(expr, "\0", env)
    if form is not None and form.is_constant:
        return form.b
    return None


def injective_over(form: Optional[AffineForm], extent: Optional[int]) -> Optional[bool]:
    """Self-check verdict for one write argument (§3, first clause).

    Returns True (injective), False (proven not injective), or None
    (undecided — emit the Listing-3 dynamic check).  With an unknown
    extent, affine forms are still decidable (stride rule); a constant is
    reported non-injective, matching the paper's treatment of constants
    (any domain with more than one point); modular forms need the extent.
    """
    if form is None:
        return None
    if extent is not None:
        return form_injective(form, extent)
    if form.mod is None:
        return form.a != 0
    return None


def images_disjoint_over(
    f: Optional[AffineForm],
    range_f: Optional[Tuple[int, int]],
    g: Optional[AffineForm],
    range_g: Optional[Tuple[int, int]],
) -> Optional[bool]:
    """Cross-check verdict for one argument pair (§3, third clause).

    Ranges are half-open ``[lo, hi)`` loop bounds; None means statically
    unknown, in which case only the domain-independent GCD residue test
    applies.
    """
    if f is None or g is None:
        return None
    if range_f is not None and range_g is not None:
        return form_images_disjoint(f, range_f, g, range_g)
    # Bounds unknown: a residue separation holds over any bounds.
    if residue_separated(f, g):
        return True
    return None


def form_to_functor(form: AffineForm, name: str = "i") -> ProjectionFunctor:
    """Lower an affine form to the equivalent runtime projection functor."""
    if form.mod is not None:
        if form.a == 1:
            return ModularFunctor(form.mod, form.b)
        return CallableFunctor(form.evaluate, name=form.describe(name))
    if form.a == 1 and form.b == 0:
        return IdentityFunctor()
    if form.a == 0:
        return ConstantFunctor(form.b)
    return AffineFunctor(form.a, form.b)
