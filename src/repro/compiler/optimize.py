"""The index-launch optimization pass (Section 4).

Walks the program, finds candidate loops (:mod:`repro.compiler.dependence`),
classifies each partition argument's index expression
(:mod:`repro.compiler.functors`), and rewrites the loop:

* every write-privileged argument statically injective (identity / affine
  with nonzero stride) -> :class:`IndexLaunchNode` — the loop becomes an
  index launch outright;
* some argument statically *non-injective* (constant with a write) -> the
  loop is left untouched (executing it as an index launch would race);
* anything undecided -> :class:`DynamicCheckNode` — the Listing-3
  transformation: a dynamic check selecting between the index launch and
  the original task loop at runtime.

Static *cross*-checks between arguments naming the same partition use the
same small decision procedure as the runtime
(:func:`repro.core.static_analysis.images_disjoint_static` semantics,
restricted to what is visible syntactically): structurally identical
expressions conflict; equal-stride affine pairs are compared by offset.

The pass is purely structural — partition disjointness is a runtime
property (in Regent it lives in the type system), so the emitted launches
are re-validated by the runtime's hybrid analysis, which implements the
same check-then-branch behaviour the generated AST of Listing 3 encodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler.ast import (
    CallStmt,
    Expr,
    ForLoop,
    Index,
    Program,
    Stmt,
    TaskDef,
)
from repro.compiler.dependence import loop_is_candidate
from repro.compiler.functors import FunctorClass, classify_index_expr

__all__ = [
    "IndexLaunchNode",
    "DynamicCheckNode",
    "LoopDecision",
    "OptimizationReport",
    "DemandViolation",
    "optimize_program",
]


class DemandViolation(ValueError):
    """A ``parallel for`` loop could not be executed as an index launch.

    Mirrors Regent's __demand(__index_launch) semantics: the annotation is
    a contract, so an ineligible or statically-unsafe loop is a compile
    error rather than a silent fallback."""


@dataclass
class IndexLaunchNode(Stmt):
    """A loop proven transformable at compile time (modulo disjointness)."""

    task: str
    var: str
    lo: Expr
    hi: Expr
    call: CallStmt
    region_arg_classes: Dict[int, FunctorClass]  # call-arg position -> class

    @property
    def name(self) -> str:
        return f"index_launch<{self.task}>"


@dataclass
class DynamicCheckNode(Stmt):
    """Listing 3: a runtime check guarding launch-vs-loop selection."""

    launch: IndexLaunchNode
    fallback: ForLoop
    undecided_args: List[int]  # call-arg positions needing the dynamic check


@dataclass
class LoopDecision:
    """The pass's verdict for one source loop."""

    action: str  # "index-launch" | "dynamic-check" | "unsafe" | "not-candidate"
    reasons: List[str] = field(default_factory=list)


@dataclass
class OptimizationReport:
    decisions: List[LoopDecision] = field(default_factory=list)

    def count(self, action: str) -> int:
        return sum(1 for d in self.decisions if d.action == action)


def _writes(kind: str) -> bool:
    return kind in ("writes", "reduces")


def _privilege_kinds(task: TaskDef, param: str) -> List[str]:
    return [c.kind for c in task.privileges if c.param == param]


def _analyze_loop(
    loop: ForLoop, tasks: Dict[str, TaskDef]
) -> Tuple[Stmt, LoopDecision]:
    report = loop_is_candidate(loop)
    if not report.eligible:
        return loop, LoopDecision("not-candidate", report.reasons)
    call = report.call
    task = tasks.get(call.fn)
    if task is None:
        return loop, LoopDecision(
            "not-candidate", [f"call target {call.fn!r} is not a task"]
        )

    # Map call arguments to task parameters; region params must be p[expr].
    if len(call.args) != len(task.params):
        return loop, LoopDecision(
            "not-candidate",
            [f"{call.fn} takes {len(task.params)} args, got {len(call.args)}"],
        )
    region_positions = [
        i for i, p in enumerate(task.params) if _privilege_kinds(task, p)
    ]
    for i in region_positions:
        if not isinstance(call.args[i], Index):
            return loop, LoopDecision(
                "not-candidate",
                [f"region argument {i} is not a partition selection p[expr]"],
            )

    decision = LoopDecision("index-launch")
    classes: Dict[int, FunctorClass] = {}
    undecided: List[int] = []

    # --- self-checks
    for i in region_positions:
        param = task.params[i]
        kinds = _privilege_kinds(task, param)
        expr = call.args[i].index
        cls, coeffs = classify_index_expr(expr, loop.var)
        classes[i] = cls
        wr = any(k == "writes" for k in kinds)
        if not wr:
            decision.reasons.append(
                f"arg{i} ({param}): {'/'.join(kinds)} privilege, "
                f"self-check passes"
            )
            continue
        if cls in (FunctorClass.IDENTITY, FunctorClass.AFFINE):
            decision.reasons.append(
                f"arg{i} ({param}): statically injective ({cls.value})"
            )
        elif cls is FunctorClass.CONSTANT:
            decision.reasons.append(
                f"arg{i} ({param}): constant functor with write privilege — "
                f"not injective, loop kept"
            )
            return loop, LoopDecision("unsafe", decision.reasons)
        else:
            decision.reasons.append(
                f"arg{i} ({param}): undecided functor, dynamic check emitted"
            )
            undecided.append(i)

    # --- static cross-checks: same partition name, conflicting privileges.
    for ai_pos, i in enumerate(region_positions):
        for j in region_positions[ai_pos + 1:]:
            pi, pj = call.args[i], call.args[j]
            if pi.base != pj.base:
                continue
            ki = _privilege_kinds(task, task.params[i])
            kj = _privilege_kinds(task, task.params[j])
            if not (any(_writes(k) for k in ki) or any(_writes(k) for k in kj)):
                continue
            ci, coi = classify_index_expr(pi.index, loop.var)
            cj, coj = classify_index_expr(pj.index, loop.var)
            if pi.index == pj.index:
                decision.reasons.append(
                    f"args {i},{j}: identical selections of {pi.base!r} with a "
                    f"write — images overlap, loop kept"
                )
                return loop, LoopDecision("unsafe", decision.reasons)
            if (
                ci in (FunctorClass.IDENTITY, FunctorClass.AFFINE)
                and cj in (FunctorClass.IDENTITY, FunctorClass.AFFINE)
                and coi[0] == coj[0]
                and coi[0] != 0
                and (coi[1] - coj[1]) % abs(coi[0]) != 0
            ):
                decision.reasons.append(
                    f"args {i},{j}: interleaved affine selections of "
                    f"{pi.base!r}, statically disjoint"
                )
                continue
            decision.reasons.append(
                f"args {i},{j}: cross-check on {pi.base!r} undecided, "
                f"dynamic check emitted"
            )
            for k in (i, j):
                if k not in undecided:
                    undecided.append(k)

    launch = IndexLaunchNode(
        task=call.fn,
        var=loop.var,
        lo=loop.lo,
        hi=loop.hi,
        call=call,
        region_arg_classes=classes,
    )
    if undecided:
        decision.action = "dynamic-check"
        return (
            DynamicCheckNode(launch=launch, fallback=loop,
                             undecided_args=sorted(undecided)),
            decision,
        )
    return launch, decision


def optimize_program(program: Program) -> Tuple[Program, OptimizationReport]:
    """Apply the index-launch pass to every top-level loop.

    Returns a new :class:`Program` (task definitions unchanged) and the
    per-loop report.
    """
    report = OptimizationReport()
    new_body: List[Stmt] = []
    for stmt in program.body:
        if isinstance(stmt, ForLoop):
            replacement, decision = _analyze_loop(stmt, program.tasks)
            if stmt.demand_parallel and decision.action in (
                "not-candidate", "unsafe"
            ):
                raise DemandViolation(
                    f"'parallel for {stmt.var}' cannot be an index launch "
                    f"({decision.action}): " + "; ".join(decision.reasons)
                )
            report.decisions.append(decision)
            new_body.append(replacement)
        else:
            new_body.append(stmt)
    return Program(tasks=program.tasks, body=new_body), report
