"""The index-launch optimization pass (Section 4).

Walks the program, finds candidate loops (:mod:`repro.compiler.dependence`),
normalizes each partition argument's index expression into the shared
symbolic affine form (:mod:`repro.compiler.symbolic`), and rewrites the
loop:

* every §3 check statically *proven* -> :class:`IndexLaunchNode` — the
  loop becomes an index launch outright;
* some check statically *refuted* (non-injective write functor, or
  conflicting arguments with provably overlapping images) -> the loop is
  left untouched (executing it as an index launch would race);
* anything undecided -> :class:`DynamicCheckNode` — the Listing-3
  transformation: a dynamic check selecting between the index launch and
  the original task loop at runtime.

Both the self-checks (injectivity of a write functor over the launch
domain) and the cross-checks (pairwise image disjointness on a shared
partition) are decided by the *same* engine the runtime uses
(:mod:`repro.core.static_analysis`) — stride/period reasoning for
injectivity, GCD residue separation and bounded Diophantine solving for
disjointness — so the two layers cannot drift apart.  Loop bounds and
host constants are folded from the top-level program text when they are
statically known, which is what lets the engine decide modular functors
(``(i + 1) % n``) that pure syntactic classification must defer.

Every decision is recorded twice: as a human-readable reason string (the
audit trail) and as a structured :class:`~repro.compiler.diagnostics.Diagnostic`
carrying the §3 rule id, severity, and source span — consumed by
``repro lint``.

The pass is purely structural — partition disjointness is a runtime
property (in Regent it lives in the type system), so the emitted launches
are re-validated by the runtime's hybrid analysis, which implements the
same check-then-branch behaviour the generated AST of Listing 3 encodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.compiler.ast import (
    Assign,
    CallStmt,
    Expr,
    ForLoop,
    Index,
    Program,
    Stmt,
    TaskDef,
    VarDecl,
)
from repro.compiler.dependence import loop_is_candidate
from repro.compiler.diagnostics import Diagnostic, Severity, Span
from repro.compiler.functors import FunctorClass, classify_index_expr
from repro.compiler.symbolic import (
    const_eval,
    images_disjoint_over,
    injective_over,
    normalize_index_expr,
)
from repro.core.static_analysis import AffineForm

__all__ = [
    "IndexLaunchNode",
    "DynamicCheckNode",
    "LoopDecision",
    "LoopAnalysis",
    "RegionArg",
    "OptimizationReport",
    "DemandViolation",
    "analyze_loop",
    "optimize_program",
]


class DemandViolation(ValueError):
    """A ``parallel for`` loop could not be executed as an index launch.

    Mirrors Regent's __demand(__index_launch) semantics: the annotation is
    a contract, so an ineligible or statically-unsafe loop is a compile
    error rather than a silent fallback."""


@dataclass
class IndexLaunchNode(Stmt):
    """A loop proven transformable at compile time (modulo disjointness)."""

    task: str
    var: str
    lo: Expr
    hi: Expr
    call: CallStmt
    region_arg_classes: Dict[int, FunctorClass]  # call-arg position -> class

    @property
    def name(self) -> str:
        return f"index_launch<{self.task}>"


@dataclass
class DynamicCheckNode(Stmt):
    """Listing 3: a runtime check guarding launch-vs-loop selection."""

    launch: IndexLaunchNode
    fallback: ForLoop
    undecided_args: List[int]  # call-arg positions needing the dynamic check


@dataclass
class LoopDecision:
    """The pass's verdict for one source loop."""

    action: str  # "index-launch" | "dynamic-check" | "unsafe" | "not-candidate"
    reasons: List[str] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)


@dataclass
class RegionArg:
    """One partition-valued call argument, normalized for the engine."""

    pos: int                       # call-argument position
    param: str                     # task parameter name
    base: str                      # partition name at the call site
    index: Expr                    # the index expression of p[<expr>]
    mode: str                      # "read" | "write" | "reduce"
    redop: Optional[str]           # operator when mode == "reduce"
    fields: Optional[FrozenSet[str]]  # None = all fields
    form: Optional[AffineForm]     # symbolic normal form (None = opaque)
    cls: FunctorClass              # coarse class, kept for reporting
    span: Optional[Span]

    def conflicts_with(self, other: "RegionArg") -> bool:
        """Privilege compatibility (§3): both read, or same-op reductions."""
        if self.mode == "read" and other.mode == "read":
            return False
        if self.mode == "reduce" and other.mode == "reduce" \
                and self.redop == other.redop:
            return False
        return True


@dataclass
class LoopAnalysis:
    """Everything the pass learned about one source loop.

    ``replacement`` is the node the optimizer would substitute;
    ``decision`` carries the verdict, audit trail, and diagnostics; the
    remaining fields expose the normalized arguments so whole-program
    passes (``repro lint``'s cross-launch analysis) can reason about
    launches pairwise without re-deriving anything.
    """

    loop: ForLoop
    replacement: Stmt
    decision: LoopDecision
    call: Optional[CallStmt] = None
    task: Optional[TaskDef] = None
    region_args: List[RegionArg] = field(default_factory=list)
    bounds: Tuple[Optional[int], Optional[int]] = (None, None)

    @property
    def domain_range(self) -> Optional[Tuple[int, int]]:
        lo, hi = self.bounds
        return None if lo is None or hi is None else (lo, hi)

    @property
    def extent(self) -> Optional[int]:
        rng = self.domain_range
        return None if rng is None else max(0, rng[1] - rng[0])


@dataclass
class OptimizationReport:
    decisions: List[LoopDecision] = field(default_factory=list)

    def count(self, action: str) -> int:
        return sum(1 for d in self.decisions if d.action == action)


def _collapse_privileges(task: TaskDef, param: str) -> Tuple[str, Optional[str]]:
    """Collapse a parameter's privilege clauses to read/write/reduce."""
    kinds = [(c.kind, c.redop) for c in task.privileges if c.param == param]
    if any(k == "writes" for k, _ in kinds):
        return "write", None
    redops = {r for k, r in kinds if k == "reduces"}
    if redops:
        if len(redops) == 1 and all(k == "reduces" for k, _ in kinds):
            return "reduce", next(iter(redops))
        return "write", None  # mixed reduction/read clauses: be conservative
    return "read", None


def _fields_of(task: TaskDef, param: str) -> Optional[FrozenSet[str]]:
    """The fields a parameter's privileges touch (None = all fields)."""
    fields: set = set()
    for c in task.privileges:
        if c.param != param:
            continue
        if not c.fields:
            return None
        fields.update(c.fields)
    return frozenset(fields)


def _diag(
    decision: LoopDecision,
    rule: str,
    severity: Severity,
    message: str,
    span: Optional[Span],
) -> None:
    decision.reasons.append(message)
    decision.diagnostics.append(Diagnostic(rule, severity, message, span))


def _not_candidate(
    analysis: LoopAnalysis, reasons: List[str]
) -> LoopAnalysis:
    decision = analysis.decision
    decision.action = "not-candidate"
    decision.reasons.extend(reasons)
    decision.diagnostics.append(Diagnostic(
        "IL-N01", Severity.INFO,
        "loop is not an index-launch candidate: " + "; ".join(reasons),
        analysis.loop.span,
    ))
    return _finish(analysis)


def _finish(analysis: LoopAnalysis) -> LoopAnalysis:
    """Record the demand-contract diagnostic when it applies."""
    loop, decision = analysis.loop, analysis.decision
    if loop.demand_parallel and decision.action in ("not-candidate", "unsafe"):
        decision.diagnostics.append(Diagnostic(
            "IL-D01", Severity.ERROR,
            f"'parallel for {loop.var}' cannot be executed as an index "
            f"launch ({decision.action})",
            loop.span,
        ))
    return analysis


def analyze_loop(
    loop: ForLoop,
    tasks: Dict[str, TaskDef],
    env: Optional[Dict[str, int]] = None,
) -> LoopAnalysis:
    """Run the full static analysis on one loop.

    ``env`` maps host names to statically-known integer values (folded
    top-level constants); it sharpens both the loop bounds and the index
    expressions the engine sees.
    """
    env = dict(env or {})
    analysis = LoopAnalysis(loop=loop, replacement=loop,
                            decision=LoopDecision("index-launch"))
    report = loop_is_candidate(loop)
    if not report.eligible:
        return _not_candidate(analysis, report.reasons)
    call = report.call
    analysis.call = call
    task = tasks.get(call.fn)
    if task is None:
        return _not_candidate(
            analysis, [f"call target {call.fn!r} is not a task"]
        )
    analysis.task = task

    # Map call arguments to task parameters; region params must be p[expr].
    if len(call.args) != len(task.params):
        return _not_candidate(
            analysis,
            [f"{call.fn} takes {len(task.params)} args, got {len(call.args)}"],
        )
    region_positions = [
        i for i, p in enumerate(task.params)
        if any(c.param == p for c in task.privileges)
    ]
    for i in region_positions:
        if not isinstance(call.args[i], Index):
            return _not_candidate(
                analysis,
                [f"region argument {i} is not a partition selection p[expr]"],
            )

    # Loop-local constant declarations feed the normalizer too (they are
    # re-evaluated per iteration but may still be loop-invariant or affine
    # in the loop variable — only plain constants are folded here).
    local_env = dict(env)
    for stmt in loop.body:
        if isinstance(stmt, (VarDecl, Assign)) and stmt.name != loop.var:
            v = const_eval(stmt.value, local_env)
            if v is None:
                local_env.pop(stmt.name, None)
            else:
                local_env[stmt.name] = v

    analysis.bounds = (const_eval(loop.lo, env), const_eval(loop.hi, env))
    extent = analysis.extent
    domain_range = analysis.domain_range
    decision = analysis.decision
    undecided: List[int] = []

    for i in region_positions:
        param = task.params[i]
        arg = call.args[i]
        mode, redop = _collapse_privileges(task, param)
        form = normalize_index_expr(arg.index, loop.var, local_env)
        cls, _ = classify_index_expr(arg.index, loop.var, local_env)
        analysis.region_args.append(RegionArg(
            pos=i, param=param, base=arg.base, index=arg.index,
            mode=mode, redop=redop, fields=_fields_of(task, param),
            form=form, cls=cls, span=arg.span,
        ))

    # --- self-checks (§3 first clause): write functors must be injective.
    for arg in analysis.region_args:
        label = f"arg{arg.pos} ({arg.param})"
        if arg.mode != "write":
            decision.reasons.append(
                f"{label}: {arg.mode} privilege, self-check passes"
            )
            continue
        verdict = injective_over(arg.form, extent)
        shape = arg.form.describe(loop.var) if arg.form is not None else "opaque"
        if verdict is True:
            _diag(decision, "IL-S01", Severity.NOTE,
                  f"{label}: functor {shape} statically injective"
                  + (f" over extent {extent}" if extent is not None else ""),
                  arg.span)
        elif verdict is False:
            _diag(decision, "IL-S02", Severity.ERROR,
                  f"{label}: functor {shape} with write privilege is not "
                  f"injective"
                  + (f" over extent {extent}" if extent is not None else "")
                  + " — distinct tasks write the same subregion",
                  arg.span)
            decision.action = "unsafe"
            return _finish(analysis)
        else:
            _diag(decision, "IL-S03", Severity.INFO,
                  f"{label}: injectivity of {shape} undecided, dynamic "
                  f"check emitted",
                  arg.span)
            undecided.append(arg.pos)

    # --- cross-checks (§3 third clause): pairs naming the same partition.
    args = analysis.region_args
    for x, ai in enumerate(args):
        for aj in args[x + 1:]:
            if ai.base != aj.base:
                continue  # partitions of distinct collections
            if not ai.conflicts_with(aj):
                continue  # both read, or same-operator reductions
            if ai.fields is not None and aj.fields is not None \
                    and not (ai.fields & aj.fields):
                decision.reasons.append(
                    f"args {ai.pos},{aj.pos}: disjoint field sets on "
                    f"{ai.base!r}, no interference"
                )
                continue
            label = f"args {ai.pos},{aj.pos}"
            if analysis.extent == 0:
                decision.reasons.append(
                    f"{label}: empty launch domain, images trivially disjoint"
                )
                continue
            if ai.index == aj.index:
                _diag(decision, "IL-C02", Severity.ERROR,
                      f"{label}: identical selections of {ai.base!r} with a "
                      f"write — images overlap, loop kept",
                      aj.span)
                decision.action = "unsafe"
                return _finish(analysis)
            disjoint = images_disjoint_over(
                ai.form, domain_range, aj.form, domain_range
            )
            if disjoint is True:
                _diag(decision, "IL-C01", Severity.NOTE,
                      f"{label}: images on {ai.base!r} statically disjoint",
                      aj.span)
            elif disjoint is False:
                _diag(decision, "IL-C02", Severity.ERROR,
                      f"{label}: conflicting privileges on {ai.base!r} and "
                      f"the images provably intersect — loop kept",
                      aj.span)
                decision.action = "unsafe"
                return _finish(analysis)
            else:
                _diag(decision, "IL-C03", Severity.INFO,
                      f"{label}: cross-check on {ai.base!r} undecided, "
                      f"dynamic check emitted",
                      aj.span)
                for k in (ai.pos, aj.pos):
                    if k not in undecided:
                        undecided.append(k)

    launch = IndexLaunchNode(
        task=call.fn,
        var=loop.var,
        lo=loop.lo,
        hi=loop.hi,
        call=call,
        region_arg_classes={a.pos: a.cls for a in analysis.region_args},
    )
    if undecided:
        decision.action = "dynamic-check"
        analysis.replacement = DynamicCheckNode(
            launch=launch, fallback=loop, undecided_args=sorted(undecided)
        )
    else:
        analysis.replacement = launch
    return _finish(analysis)


def optimize_program(program: Program) -> Tuple[Program, OptimizationReport]:
    """Apply the index-launch pass to every top-level loop.

    Returns a new :class:`Program` (task definitions unchanged) and the
    per-loop report.  Top-level constant declarations are folded into a
    static environment as the body is walked, so later loops can use them
    in bounds and index expressions; a rebinding to a non-constant value
    invalidates the folding.
    """
    report = OptimizationReport()
    new_body: List[Stmt] = []
    env: Dict[str, int] = {}
    for stmt in program.body:
        if isinstance(stmt, ForLoop):
            analysis = analyze_loop(stmt, program.tasks, env)
            decision = analysis.decision
            if stmt.demand_parallel and decision.action in (
                "not-candidate", "unsafe"
            ):
                raise DemandViolation(
                    f"'parallel for {stmt.var}' cannot be an index launch "
                    f"({decision.action}): " + "; ".join(decision.reasons)
                )
            report.decisions.append(decision)
            new_body.append(analysis.replacement)
        else:
            if isinstance(stmt, (VarDecl, Assign)):
                v = const_eval(stmt.value, env)
                if v is None:
                    env.pop(stmt.name, None)
                else:
                    env[stmt.name] = v
            new_body.append(stmt)
    return Program(tasks=program.tasks, body=new_body), report
