"""Pretty-printer: render mini-Regent ASTs back to source.

``unparse(program)`` produces text that parses back to an equal AST (the
round-trip property is fuzz-tested), which makes compiler diagnostics and
the optimization pass's before/after output human-readable.
"""

from __future__ import annotations

from typing import List

from repro.compiler.ast import (
    Assign,
    BinOp,
    Call,
    CallStmt,
    Expr,
    FieldAssign,
    FieldRef,
    ForLoop,
    Index,
    Name,
    Number,
    PrivClause,
    Program,
    Stmt,
    TaskDef,
    VarDecl,
)

__all__ = ["unparse", "unparse_expr", "unparse_stmt"]

# Higher binds tighter; mirrors the parser's precedence levels.
_PRECEDENCE = {
    "==": 1, "<=": 1, ">=": 1, "<": 1, ">": 1, "~=": 1,
    "+": 2, "-": 2,
    "*": 3, "/": 3, "%": 3,
}

_REDOP_SYMBOLS = {"+": "+", "*": "*", "min": "<", "max": ">"}


def unparse_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression, parenthesizing only where precedence demands."""
    if isinstance(expr, Number):
        value = expr.value
        if isinstance(value, float) and value.is_integer():
            return f"{value:.1f}"
        return str(value)
    if isinstance(expr, Name):
        return expr.ident
    if isinstance(expr, FieldRef):
        return f"{expr.region}.{expr.fname}"
    if isinstance(expr, Index):
        return f"{expr.base}[{unparse_expr(expr.index)}]"
    if isinstance(expr, Call):
        args = ", ".join(unparse_expr(a) for a in expr.args)
        return f"{expr.fn}({args})"
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        left = unparse_expr(expr.left, prec)
        # Right operand needs parens at equal precedence (left associativity).
        right = unparse_expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    raise TypeError(f"cannot unparse {expr!r}")


def unparse_stmt(stmt: Stmt, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(stmt, VarDecl):
        return f"{pad}var {stmt.name} = {unparse_expr(stmt.value)}"
    if isinstance(stmt, Assign):
        return f"{pad}{stmt.name} = {unparse_expr(stmt.value)}"
    if isinstance(stmt, FieldAssign):
        return f"{pad}{stmt.region}.{stmt.fname} = {unparse_expr(stmt.value)}"
    if isinstance(stmt, CallStmt):
        args = ", ".join(unparse_expr(a) for a in stmt.args)
        return f"{pad}{stmt.fn}({args})"
    if isinstance(stmt, ForLoop):
        head = "parallel for" if stmt.demand_parallel else "for"
        lines = [
            f"{pad}{head} {stmt.var} = {unparse_expr(stmt.lo)}, "
            f"{unparse_expr(stmt.hi)} do"
        ]
        for inner in stmt.body:
            lines.append(unparse_stmt(inner, indent + 1))
        lines.append(f"{pad}end")
        return "\n".join(lines)
    raise TypeError(f"cannot unparse statement {stmt!r}")


def _unparse_priv(clause: PrivClause) -> str:
    target = clause.param
    if clause.fields:
        target = ", ".join(f"{clause.param}.{f}" for f in clause.fields)
    if clause.kind == "reduces":
        return f"reduces {_REDOP_SYMBOLS[clause.redop]}({target})"
    return f"{clause.kind}({target})"


def unparse(program: Program) -> str:
    """Render a whole program (tasks first, then the top-level body)."""
    chunks: List[str] = []
    for tdef in program.tasks.values():
        privs = " ".join(_unparse_priv(c) for c in tdef.privileges)
        header = f"task {tdef.name}({', '.join(tdef.params)})"
        if privs:
            header += f" {privs}"
        lines = [header + " do"]
        for stmt in tdef.body:
            lines.append(unparse_stmt(stmt, 1))
        lines.append("end")
        chunks.append("\n".join(lines))
    for stmt in program.body:
        chunks.append(unparse_stmt(stmt))
    return "\n\n".join(chunks) + "\n"
