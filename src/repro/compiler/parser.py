"""Recursive-descent parser for the mini-Regent language.

Grammar (informal)::

    program    := (taskdef | stmt)*
    taskdef    := "task" NAME "(" names ")" priv* "do" body "end"
    priv       := ("reads" | "writes") "(" privargs ")"
                | "reduces" OP "(" privargs ")"
    privargs   := privarg ("," privarg)*
    privarg    := NAME ("." NAME)?
    stmt       := "var" NAME "=" expr
                | NAME "=" expr
                | NAME "." NAME "=" expr
                | NAME "(" args ")"
                | "for" NAME "=" expr "," expr "do" body "end"
    args       := (arg ("," arg)*)?
    arg        := expr                       -- includes p[expr]
    expr       := cmp (("=="|"<="|">="|"<"|">"|"~=") cmp)?
    cmp        := term (("+"|"-") term)*
    term       := unary (("*"|"/"|"%") unary)*
    unary      := "-" unary | atom
    atom       := NUMBER | NAME | NAME "(" args ")" | NAME "[" expr "]"
                | NAME "." NAME | "(" expr ")"
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.compiler.ast import (
    Assign,
    BinOp,
    Call,
    CallStmt,
    Expr,
    FieldAssign,
    FieldRef,
    ForLoop,
    Index,
    Name,
    Number,
    PrivClause,
    Program,
    Stmt,
    TaskDef,
    VarDecl,
)
from repro.compiler.diagnostics import Span
from repro.compiler.lexer import Token, tokenize

__all__ = ["parse", "ParseError"]


def _span(tok: Token) -> Span:
    return Span(tok.line, tok.col)

_REDOPS = {"+", "*", "<", ">"}  # < and > spell min/max in our surface syntax
_REDOP_NAMES = {"+": "+", "*": "*", "<": "min", ">": "max"}


class ParseError(ValueError):
    """Syntax error with token context."""


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------- plumbing
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self.peek()
        if tok.kind != kind or (value is not None and tok.value != value):
            want = value or kind
            raise ParseError(
                f"expected {want!r}, got {tok.value!r} at {tok.line}:{tok.col}"
            )
        return self.next()

    def at(self, kind: str, value: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (value is None or tok.value == value)

    # ------------------------------------------------------------- program
    def program(self) -> Program:
        tasks = {}
        body: List[Stmt] = []
        while not self.at("eof"):
            if self.at("keyword", "task"):
                tdef = self.taskdef()
                if tdef.name in tasks:
                    raise ParseError(f"duplicate task {tdef.name!r}")
                tasks[tdef.name] = tdef
            else:
                body.append(self.stmt())
        return Program(tasks=tasks, body=body)

    def taskdef(self) -> TaskDef:
        kw = self.expect("keyword", "task")
        name = self.expect("name").value
        self.expect("symbol", "(")
        params: List[str] = []
        if not self.at("symbol", ")"):
            params.append(self.expect("name").value)
            while self.at("symbol", ","):
                self.next()
                params.append(self.expect("name").value)
        self.expect("symbol", ")")
        privileges: List[PrivClause] = []
        while self.at("keyword", "reads") or self.at("keyword", "writes") \
                or self.at("keyword", "reduces"):
            privileges.extend(self.privclause(params))
        self.expect("keyword", "do")
        body = self.body()
        self.expect("keyword", "end")
        return TaskDef(name=name, params=params, privileges=privileges,
                       body=body, span=_span(kw))

    def privclause(self, params: List[str]) -> List[PrivClause]:
        kind = self.next().value
        redop = None
        if kind == "reduces":
            tok = self.expect("symbol")
            if tok.value not in _REDOPS:
                raise ParseError(
                    f"bad reduction operator {tok.value!r} at {tok.line}:{tok.col}"
                )
            redop = _REDOP_NAMES[tok.value]
        self.expect("symbol", "(")
        clauses: List[PrivClause] = []
        while True:
            pname = self.expect("name").value
            if pname not in params:
                raise ParseError(f"privilege names unknown parameter {pname!r}")
            fields: Tuple[str, ...] = ()
            if self.at("symbol", "."):
                self.next()
                fields = (self.expect("name").value,)
            clauses.append(PrivClause(kind, redop, pname, fields))
            if self.at("symbol", ","):
                self.next()
                continue
            break
        self.expect("symbol", ")")
        return clauses

    # ------------------------------------------------------------ statements
    def body(self) -> List[Stmt]:
        out: List[Stmt] = []
        while not (self.at("keyword", "end") or self.at("eof")):
            out.append(self.stmt())
        return out

    def stmt(self) -> Stmt:
        if self.at("keyword", "var"):
            kw = self.next()
            name = self.expect("name").value
            self.expect("symbol", "=")
            return VarDecl(name, self.expr(), span=_span(kw))
        demand = False
        loop_tok = None
        if self.at("keyword", "parallel"):
            loop_tok = self.next()
            demand = True
            if not self.at("keyword", "for"):
                tok = self.peek()
                raise ParseError(
                    f"'parallel' must precede 'for', got {tok.value!r} "
                    f"at {tok.line}:{tok.col}"
                )
        if self.at("keyword", "for"):
            tok = self.next()
            loop_tok = loop_tok or tok
            var = self.expect("name").value
            self.expect("symbol", "=")
            lo = self.expr()
            self.expect("symbol", ",")
            hi = self.expr()
            self.expect("keyword", "do")
            body = self.body()
            self.expect("keyword", "end")
            return ForLoop(var=var, lo=lo, hi=hi, body=body,
                           demand_parallel=demand, span=_span(loop_tok))
        if self.at("name"):
            name_tok = self.next()
            name = name_tok.value
            if self.at("symbol", "("):
                self.next()
                args: List[Expr] = []
                if not self.at("symbol", ")"):
                    args.append(self.expr())
                    while self.at("symbol", ","):
                        self.next()
                        args.append(self.expr())
                self.expect("symbol", ")")
                return CallStmt(fn=name, args=args, span=_span(name_tok))
            if self.at("symbol", "."):
                self.next()
                fname = self.expect("name").value
                self.expect("symbol", "=")
                return FieldAssign(region=name, fname=fname, value=self.expr(),
                                   span=_span(name_tok))
            self.expect("symbol", "=")
            return Assign(name, self.expr(), span=_span(name_tok))
        tok = self.peek()
        raise ParseError(
            f"unexpected {tok.value!r} at {tok.line}:{tok.col}"
        )

    # ----------------------------------------------------------- expressions
    def expr(self) -> Expr:
        left = self.additive()
        if self.at("symbol") and self.peek().value in ("==", "<=", ">=", "<", ">", "~="):
            op = self.next().value
            right = self.additive()
            return BinOp(op, left, right, span=left.span)
        return left

    def additive(self) -> Expr:
        left = self.term()
        while self.at("symbol") and self.peek().value in ("+", "-"):
            op = self.next().value
            left = BinOp(op, left, self.term(), span=left.span)
        return left

    def term(self) -> Expr:
        left = self.unary()
        while self.at("symbol") and self.peek().value in ("*", "/", "%"):
            op = self.next().value
            left = BinOp(op, left, self.unary(), span=left.span)
        return left

    def unary(self) -> Expr:
        if self.at("symbol", "-"):
            tok = self.next()
            return BinOp("-", Number(0), self.unary(), span=_span(tok))
        return self.atom()

    def atom(self) -> Expr:
        if self.at("number"):
            tok = self.next()
            text = tok.value
            value = float(text)
            return Number(int(value) if value.is_integer() and "." not in text
                          else value, span=_span(tok))
        if self.at("symbol", "("):
            self.next()
            inner = self.expr()
            self.expect("symbol", ")")
            return inner
        if self.at("name"):
            tok = self.next()
            name = tok.value
            if self.at("symbol", "("):
                self.next()
                args: List[Expr] = []
                if not self.at("symbol", ")"):
                    args.append(self.expr())
                    while self.at("symbol", ","):
                        self.next()
                        args.append(self.expr())
                self.expect("symbol", ")")
                return Call(fn=name, args=tuple(args), span=_span(tok))
            if self.at("symbol", "["):
                self.next()
                idx = self.expr()
                self.expect("symbol", "]")
                return Index(base=name, index=idx, span=_span(tok))
            if self.at("symbol", ".") and self.tokens[self.pos + 1].kind == "name" \
                    and not (self.tokens[self.pos + 2].kind == "symbol"
                             and self.tokens[self.pos + 2].value == "="):
                self.next()
                fname = self.expect("name").value
                return FieldRef(region=name, fname=fname, span=_span(tok))
            return Name(name, span=_span(tok))
        tok = self.peek()
        raise ParseError(f"unexpected {tok.value!r} at {tok.line}:{tok.col}")


def parse(source: str) -> Program:
    """Parse mini-Regent source into a :class:`Program`."""
    return _Parser(tokenize(source)).program()
