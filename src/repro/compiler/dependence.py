"""Candidate identification: which loops may become index launches.

Per Section 4: "any loop in the program source whose body contains a task
launch and other simple statements (such as variable declarations), and
that contains no loop-carried dependencies (other than reductions), is
eligible to be executed as an index launch".

This module checks those structural conditions; the *safety* of the
resulting launch (privileges, disjointness, functor injectivity) is a
separate question answered by the static/dynamic analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.compiler.ast import (
    Assign,
    CallStmt,
    Expr,
    ForLoop,
    Index,
    Stmt,
    VarDecl,
    expr_names,
    walk_exprs,
)

__all__ = ["CandidateReport", "loop_is_candidate"]


@dataclass
class CandidateReport:
    """Why a loop is (or is not) an index-launch candidate."""

    eligible: bool
    call: Optional[CallStmt] = None
    reasons: List[str] = field(default_factory=list)


def loop_is_candidate(loop: ForLoop) -> CandidateReport:
    """Structural eligibility check for one loop.

    Requirements:

    * exactly one task-call statement in the body;
    * every other statement is a ``var`` declaration of a loop-local name;
    * no assignments to names defined outside the loop (loop-carried
      dependencies) — per the paper, reductions over loop-carried
      accumulators are in principle allowed, but a task-call loop body has
      no accumulator to reduce into, so any outer-variable assignment
      disqualifies;
    * no nested loops (a nested loop would itself be the candidate);
    * the loop variable is not redefined in the body.
    """
    report = CandidateReport(eligible=False)
    calls = [s for s in loop.body if isinstance(s, CallStmt)]
    if len(calls) != 1:
        report.reasons.append(
            f"body must contain exactly one task launch, found {len(calls)}"
        )
        return report
    local: Set[str] = {loop.var}
    for stmt in loop.body:
        if isinstance(stmt, CallStmt):
            continue
        if isinstance(stmt, ForLoop):
            report.reasons.append("nested loops are not simple statements")
            return report
        if isinstance(stmt, VarDecl):
            if stmt.name == loop.var:
                report.reasons.append("loop variable redefined in body")
                return report
            local.add(stmt.name)
            continue
        if isinstance(stmt, Assign):
            if stmt.name not in local:
                report.reasons.append(
                    f"loop-carried dependency: assignment to outer "
                    f"variable {stmt.name!r}"
                )
                return report
            continue
        report.reasons.append(
            f"statement {type(stmt).__name__} is not a simple statement"
        )
        return report

    # Declarations must be in def-before-use order with respect to the call
    # (they are, syntactically, since we scan top to bottom), and their
    # initializers may only read loop-locals, the loop var, or outer names
    # (reads of outer names are fine — they are loop-invariant or host
    # bindings; writes were rejected above).
    report.eligible = True
    report.call = calls[0]
    report.reasons.append("single task launch with simple statements only")
    return report
