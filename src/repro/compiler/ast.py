"""AST node definitions for the mini-Regent language.

Expression nodes: :class:`Number`, :class:`Name`, :class:`FieldRef`,
:class:`BinOp`, :class:`Call`, :class:`Index`.

Statement nodes: :class:`VarDecl`, :class:`Assign`, :class:`FieldAssign`,
:class:`CallStmt`, :class:`ForLoop`.

Top level: :class:`Program` holding :class:`TaskDef` and statements.  The
optimizer (:mod:`repro.compiler.optimize`) adds two synthetic nodes —
``IndexLaunchNode`` and ``DynamicCheckNode`` — defined there, since they
only exist after the transformation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.compiler.diagnostics import Span

__all__ = [
    "Expr", "Number", "Name", "FieldRef", "BinOp", "Call", "Index",
    "Stmt", "VarDecl", "Assign", "FieldAssign", "CallStmt", "ForLoop",
    "PrivClause", "TaskDef", "Program", "walk_exprs", "expr_names",
]


# ---------------------------------------------------------------- expressions

class Expr:
    """Base class for expressions."""


@dataclass(frozen=True)
class Number(Expr):
    value: float
    #: Source location (line/col from the lexer); excluded from equality
    #: so structural comparisons and pretty-print round-trips ignore it.
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        return f"Number({self.value})"


@dataclass(frozen=True)
class Name(Expr):
    ident: str
    #: Source location (line/col from the lexer); excluded from equality
    #: so structural comparisons and pretty-print round-trips ignore it.
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        return f"Name({self.ident})"


@dataclass(frozen=True)
class FieldRef(Expr):
    """``region.field`` inside a task body."""

    region: str
    fname: str
    #: Source location (line/col from the lexer); excluded from equality
    #: so structural comparisons and pretty-print round-trips ignore it.
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # + - * / % == <= >= < > ~=
    left: Expr
    right: Expr
    #: Source location (line/col from the lexer); excluded from equality
    #: so structural comparisons and pretty-print round-trips ignore it.
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Call(Expr):
    """A call in expression position — an opaque host function, e.g. f(i)."""

    fn: str
    args: Tuple[Expr, ...]
    #: Source location (line/col from the lexer); excluded from equality
    #: so structural comparisons and pretty-print round-trips ignore it.
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Index(Expr):
    """``p[e]`` — selecting a sub-collection of partition ``p``."""

    base: str
    index: Expr
    #: Source location (line/col from the lexer); excluded from equality
    #: so structural comparisons and pretty-print round-trips ignore it.
    span: Optional[Span] = field(default=None, compare=False, repr=False)


# ----------------------------------------------------------------- statements

class Stmt:
    """Base class for statements."""


@dataclass
class VarDecl(Stmt):
    name: str
    value: Expr
    #: Source location (line/col from the lexer); excluded from equality
    #: so structural comparisons and pretty-print round-trips ignore it.
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass
class Assign(Stmt):
    name: str
    value: Expr
    #: Source location (line/col from the lexer); excluded from equality
    #: so structural comparisons and pretty-print round-trips ignore it.
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass
class FieldAssign(Stmt):
    """``region.field = expr`` inside a task body."""

    region: str
    fname: str
    value: Expr
    #: Source location (line/col from the lexer); excluded from equality
    #: so structural comparisons and pretty-print round-trips ignore it.
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass
class CallStmt(Stmt):
    """A task launch: ``foo(p[i], q[f(i)], 3.0)``."""

    fn: str
    args: List[Expr]
    #: Source location (line/col from the lexer); excluded from equality
    #: so structural comparisons and pretty-print round-trips ignore it.
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass
class ForLoop(Stmt):
    var: str
    lo: Expr
    hi: Expr
    body: List[Stmt] = field(default_factory=list)
    #: ``parallel for`` — Regent's __demand(__index_launch): the optimizer
    #: must transform this loop or reject the program.
    demand_parallel: bool = False
    #: Source location (line/col from the lexer); excluded from equality
    #: so structural comparisons and pretty-print round-trips ignore it.
    span: Optional[Span] = field(default=None, compare=False, repr=False)


# ------------------------------------------------------------------ top level

@dataclass(frozen=True)
class PrivClause:
    """``reads(c1)`` / ``writes(c2.f)`` / ``reduces +(c3)``."""

    kind: str                 # "reads" | "writes" | "reduces"
    redop: Optional[str]      # operator for reductions
    param: str                # region parameter name
    fields: Tuple[str, ...]   # () means all fields


@dataclass
class TaskDef(Stmt):
    name: str
    params: List[str]
    privileges: List[PrivClause]
    body: List[Stmt]
    #: Source location (line/col from the lexer); excluded from equality
    #: so structural comparisons and pretty-print round-trips ignore it.
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def region_params(self) -> List[str]:
        """Parameters that appear in at least one privilege clause, in
        declaration order; remaining params are by-value scalars."""
        privileged = {c.param for c in self.privileges}
        return [p for p in self.params if p in privileged]


@dataclass
class Program:
    tasks: Dict[str, TaskDef]
    body: List[Stmt]


# ------------------------------------------------------------------ utilities

def walk_exprs(expr: Expr):
    """Yield ``expr`` and every sub-expression."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_exprs(expr.left)
        yield from walk_exprs(expr.right)
    elif isinstance(expr, Call):
        for a in expr.args:
            yield from walk_exprs(a)
    elif isinstance(expr, Index):
        yield from walk_exprs(expr.index)


def expr_names(expr: Expr) -> set:
    """All Name identifiers referenced by ``expr``."""
    return {e.ident for e in walk_exprs(expr) if isinstance(e, Name)}
