"""Interpreter: execute (optimized) mini-Regent programs on the runtime.

Task definitions become :class:`repro.runtime.task.Task` objects whose
bodies interpret the task's statements elementwise over the physical
regions.  Top-level statements execute against a
:class:`repro.runtime.Runtime`:

* plain loops run as serial individual task launches;
* :class:`IndexLaunchNode` lowers to ``runtime.index_launch`` with functors
  built from the index expressions;
* :class:`DynamicCheckNode` relies on the runtime's hybrid analysis, which
  performs exactly the emitted check-then-branch of Listing 3 (dynamic
  check, then index launch or serial fallback).

Host *bindings* supply the Legion-side objects the program names: regions,
partitions, scalars, and opaque Python functions usable in index
expressions.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.compiler.ast import (
    Assign,
    BinOp,
    Call,
    CallStmt,
    Expr,
    FieldAssign,
    FieldRef,
    ForLoop,
    Index,
    Name,
    Number,
    Program,
    Stmt,
    TaskDef,
    VarDecl,
)
from repro.compiler.functors import (
    eval_host_expr,
    eval_index_expr,
    expr_to_functor,
)
from repro.compiler.optimize import (
    DynamicCheckNode,
    IndexLaunchNode,
    OptimizationReport,
    optimize_program,
)
from repro.compiler.parser import parse
from repro.core.domain import Domain
from repro.core.launch import ArgumentMap
from repro.data.collection import Region
from repro.data.partition import Partition
from repro.data.privileges import PrivilegeSpec
from repro.runtime.runtime import Runtime, RuntimeConfig
from repro.runtime.task import PhysicalRegion, Task

__all__ = ["Interpreter", "compile_and_run", "build_task"]


class InterpError(RuntimeError):
    """Semantic error while executing a mini-Regent program."""


def _merge_privilege(kinds: List) -> PrivilegeSpec:
    """Combine a parameter's clauses into one privilege spec."""
    has_reads = any(c.kind == "reads" for c in kinds)
    has_writes = any(c.kind == "writes" for c in kinds)
    reduces = [c for c in kinds if c.kind == "reduces"]
    if reduces:
        if has_reads or has_writes or len({c.redop for c in reduces}) > 1:
            raise InterpError("reduction privilege cannot mix with others")
        return PrivilegeSpec.parse(f"reduces {reduces[0].redop}")
    if has_reads and has_writes:
        return PrivilegeSpec.parse("reads writes")
    if has_writes:
        return PrivilegeSpec.parse("writes")
    return PrivilegeSpec.parse("reads")


def build_task(tdef: TaskDef) -> Task:
    """Lower a task definition to a runtime Task with an interpreting body."""
    region_params = tdef.region_params()
    scalar_params = [p for p in tdef.params if p not in region_params]
    privileges: List[PrivilegeSpec] = []
    fields: List[Optional[Tuple[str, ...]]] = []
    for param in region_params:
        clauses = [c for c in tdef.privileges if c.param == param]
        privileges.append(_merge_privilege(clauses))
        named = tuple(
            sorted({f for c in clauses for f in c.fields})
        )
        fields.append(named if named else None)

    def body(ctx, *args):
        regions = args[: len(region_params)]
        scalars = args[len(region_params): len(region_params) + len(scalar_params)]
        env: Dict[str, Any] = dict(zip(region_params, regions))
        env.update(zip(scalar_params, scalars))
        result = None
        for stmt in tdef.body:
            result = _exec_task_stmt(stmt, env)
        return result

    body.__name__ = tdef.name
    return Task(body, privileges=privileges, fields=fields, name=tdef.name)


def _exec_task_stmt(stmt: Stmt, env: Dict[str, Any]):
    if isinstance(stmt, VarDecl) or isinstance(stmt, Assign):
        env[stmt.name] = _eval_task_expr(stmt.value, env)
        return env[stmt.name]
    if isinstance(stmt, FieldAssign):
        target = env.get(stmt.region)
        if not isinstance(target, PhysicalRegion):
            raise InterpError(f"{stmt.region!r} is not a region parameter")
        value = _eval_task_expr(stmt.value, env)
        value = np.broadcast_to(np.asarray(value, dtype=np.float64),
                                (target.volume,))
        if target.privilege.privilege.value == "reduces":
            target.reduce(stmt.fname, value)
        else:
            target.write(stmt.fname, value)
        return None
    raise InterpError(f"unsupported statement in task body: {stmt!r}")


def _eval_task_expr(expr: Expr, env: Dict[str, Any]):
    if isinstance(expr, Number):
        return expr.value
    if isinstance(expr, Name):
        if expr.ident not in env:
            raise InterpError(f"unbound name {expr.ident!r} in task body")
        return env[expr.ident]
    if isinstance(expr, FieldRef):
        target = env.get(expr.region)
        if not isinstance(target, PhysicalRegion):
            raise InterpError(f"{expr.region!r} is not a region parameter")
        return target.read(expr.fname)
    if isinstance(expr, BinOp):
        left = _eval_task_expr(expr.left, env)
        right = _eval_task_expr(expr.right, env)
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a / b,
            "%": lambda a, b: a % b,
        }
        if expr.op not in ops:
            raise InterpError(f"operator {expr.op!r} not allowed in task body")
        return ops[expr.op](left, right)
    if isinstance(expr, Call):
        fn = env.get(expr.fn)
        if not callable(fn):
            raise InterpError(f"unbound function {expr.fn!r}")
        return fn(*(_eval_task_expr(a, env) for a in expr.args))
    raise InterpError(f"unsupported expression in task body: {expr!r}")


class Interpreter:
    """Executes an optimized program against a runtime instance."""

    def __init__(
        self,
        program: Program,
        bindings: Dict[str, Any],
        runtime: Optional[Runtime] = None,
    ):
        self.runtime = runtime or Runtime(RuntimeConfig())
        self.env: Dict[str, Any] = dict(bindings)
        self.tasks: Dict[str, Task] = {
            name: build_task(tdef) for name, tdef in program.tasks.items()
        }
        self.program = program

    # --------------------------------------------------------------- running
    def run(self) -> Dict[str, Any]:
        for stmt in self.program.body:
            self._exec(stmt)
        return self.env

    def _exec(self, stmt: Stmt) -> None:
        if isinstance(stmt, VarDecl) or isinstance(stmt, Assign):
            self.env[stmt.name] = self._eval_scalar(stmt.value)
            return
        if isinstance(stmt, CallStmt):
            self._launch_single(stmt, self.env)
            return
        if isinstance(stmt, ForLoop):
            self._run_serial_loop(stmt)
            return
        if isinstance(stmt, IndexLaunchNode):
            self._launch_index(stmt)
            return
        if isinstance(stmt, DynamicCheckNode):
            # The runtime's hybrid analysis performs the Listing-3 check and
            # falls back to the serial loop on failure.
            self._launch_index(stmt.launch)
            return
        raise InterpError(f"unsupported top-level statement: {stmt!r}")

    # --------------------------------------------------------------- helpers
    def _eval_scalar(self, expr: Expr):
        return eval_host_expr(expr, "__none__", 0, self.env)

    def _task_of(self, name: str) -> Task:
        if name not in self.tasks:
            raise InterpError(f"unknown task {name!r}")
        return self.tasks[name]

    def _split_args(self, task: Task, call: CallStmt):
        """(region arg exprs, scalar arg exprs) positionally."""
        n_regions = task.n_region_params
        return call.args[:n_regions], call.args[n_regions:]

    def _run_serial_loop(self, loop: ForLoop) -> None:
        lo = int(self._eval_scalar(loop.lo))
        hi = int(self._eval_scalar(loop.hi))
        for i in range(lo, hi):
            scope = dict(self.env)
            scope[loop.var] = i
            for stmt in loop.body:
                if isinstance(stmt, (VarDecl, Assign)):
                    scope[stmt.name] = eval_host_expr(
                        stmt.value, loop.var, i, scope
                    )
                elif isinstance(stmt, CallStmt):
                    self._launch_single(stmt, scope)
                else:
                    raise InterpError(
                        f"unsupported loop statement: {stmt!r}"
                    )

    def _launch_single(self, call: CallStmt, scope: Dict[str, Any]) -> None:
        task = self._task_of(call.fn)
        region_exprs, scalar_exprs = self._split_args(task, call)
        region_args = []
        for expr in region_exprs:
            if isinstance(expr, Index):
                part = scope.get(expr.base)
                if not isinstance(part, Partition):
                    raise InterpError(f"{expr.base!r} is not a partition")
                color = eval_index_expr(expr.index, "__none__", 0, scope)
                region_args.append(part[int(color)])
            elif isinstance(expr, Name):
                target = scope.get(expr.ident)
                if isinstance(target, Region):
                    region_args.append(target.root_subregion())
                else:
                    raise InterpError(f"{expr.ident!r} is not a region")
            else:
                raise InterpError(f"bad region argument {expr!r}")
        scalars = tuple(
            eval_host_expr(e, "__none__", 0, scope) for e in scalar_exprs
        )
        self.runtime.execute_task(task, *region_args, args=scalars)

    def _launch_index(self, node: IndexLaunchNode) -> None:
        task = self._task_of(node.task)
        lo = int(self._eval_scalar(node.lo))
        hi = int(self._eval_scalar(node.hi))
        if lo != 0:
            # Normalize to [0, n) by shifting the loop variable: rebind via
            # a wrapper environment offset.  Our Domain.range starts at 0.
            raise InterpError("index launches currently require lo == 0")
        domain = Domain.range(hi)
        region_exprs, scalar_exprs = self._split_args(task, node.call)
        reqs = []
        for expr in region_exprs:
            assert isinstance(expr, Index)
            part = self.env.get(expr.base)
            if not isinstance(part, Partition):
                raise InterpError(f"{expr.base!r} is not a partition")
            functor = expr_to_functor(expr.index, node.var, self.env)
            reqs.append((part, functor))
        # Scalars referencing the loop variable become per-point arguments.
        static_scalars = []
        point_exprs = []
        from repro.compiler.ast import expr_names

        for e in scalar_exprs:
            if node.var in expr_names(e):
                point_exprs.append(e)
            else:
                static_scalars.append(
                    eval_host_expr(e, "__none__", 0, self.env)
                )
        point_args = None
        if point_exprs:
            env = self.env

            def _point(p, exprs=tuple(point_exprs), var=node.var):
                return tuple(
                    eval_host_expr(e, var, p[0], env) for e in exprs
                )

            point_args = ArgumentMap(_point)
        self.runtime.index_launch(
            task, domain, *reqs, args=tuple(static_scalars),
            point_args=point_args,
        )


def compile_and_run(
    source: str,
    bindings: Dict[str, Any],
    runtime: Optional[Runtime] = None,
    optimize: bool = True,
) -> Tuple[Runtime, OptimizationReport, Dict[str, Any]]:
    """Parse, optimize, and execute a mini-Regent program.

    Args:
        source: program text.
        bindings: host objects (regions, partitions, scalars, functions).
        runtime: runtime to execute on (a fresh default one if omitted).
        optimize: apply the index-launch pass (False runs every loop
            serially — useful for differential testing).

    Returns ``(runtime, optimization report, final environment)``.
    """
    program = parse(source)
    if optimize:
        program, report = optimize_program(program)
    else:
        report = OptimizationReport()
    interp = Interpreter(program, bindings, runtime)
    env = interp.run()
    return interp.runtime, report, env
