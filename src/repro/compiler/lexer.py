"""Tokenizer for the mini-Regent language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

__all__ = ["Token", "tokenize", "LexError", "KEYWORDS"]

KEYWORDS = {
    "task", "do", "end", "for", "var", "reads", "writes", "reduces",
    "parallel",
}

_SYMBOLS = [
    "==", "<=", ">=", "~=",
    "(", ")", "[", "]", ",", ".", "=", "+", "-", "*", "/", "%", "<", ">",
]


class LexError(ValueError):
    """Bad character or malformed literal, with line/column context."""


@dataclass(frozen=True)
class Token:
    """One lexeme.

    ``kind`` is "name", "number", "keyword", "symbol", or "eof".
    """

    kind: str
    value: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r} @{self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Convert ``source`` to tokens, appending a final EOF token.

    Comments run from ``--`` to end of line (Regent/Lua style).
    """
    tokens: List[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("--", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            start = i
            start_col = col
            while i < n and (source[i].isdigit() or source[i] == "."):
                i += 1
                col += 1
            text = source[start:i]
            if text.count(".") > 1:
                raise LexError(f"bad number {text!r} at {line}:{start_col}")
            tokens.append(Token("number", text, line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_col = col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
                col += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "name"
            tokens.append(Token(kind, text, line, start_col))
            continue
        matched: Optional[str] = None
        for sym in _SYMBOLS:
            if source.startswith(sym, i):
                matched = sym
                break
        if matched is None:
            raise LexError(f"unexpected character {ch!r} at {line}:{col}")
        tokens.append(Token("symbol", matched, line, col))
        i += len(matched)
        col += len(matched)
    tokens.append(Token("eof", "", line, col))
    return tokens
