"""Deterministic fault plans: what breaks, where, and when.

A :class:`FaultSpec` names one injectable fault — *kill* a worker process,
*hang* it for a bounded interval, or *corrupt* its result blob — scoped to
a worker index, a shard (distribution node), or a single point task, and
anchored to one pipeline phase of the shard body (install / expansion /
physical / execution).  A :class:`FaultPlan` is an immutable bag of specs
plus the seed that generated it, so a faulted run is exactly reproducible:
the same plan against the same program fires the same faults at the same
places, every time.

Faults are *armed* by the parent (see :class:`~repro.fault.inject.
FaultInjector`) and *fired* either inside a worker process (real effects:
``os._exit``, ``time.sleep``, a garbled result blob) or inline on the
serial path as an :class:`InjectedFaultError`.  Only injected faults are
ever converted into poisoned futures — a genuine application exception
still propagates to the caller unchanged.

:class:`RetryPolicy` caps the recovery ladder the parallel backend climbs
before declaring a launch unrecoverable: same-worker retries, worker
respawns, capped exponential backoff between attempts, and an optional
per-shard result timeout that converts a hung worker into a respawn.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "FAULT_KINDS",
    "FAULT_SCOPES",
    "FAULT_PHASES",
    "FaultSpec",
    "FaultPlan",
    "RetryPolicy",
    "InjectedFaultError",
    "parse_fault",
]

FAULT_KINDS = ("kill", "hang", "corrupt")
FAULT_SCOPES = ("worker", "shard", "point")
FAULT_PHASES = ("install", "expansion", "physical", "execution")


class InjectedFaultError(RuntimeError):
    """An armed fault fired inline (serial path / last-resort tier).

    This is the *only* exception the runtime converts into a poisoned
    launch; real application errors keep their existing semantics.  The
    attributes are annotated progressively as the error propagates up
    through layers that know more context.
    """

    def __init__(self, message: str, spec: Optional["FaultSpec"] = None):
        super().__init__(message)
        self.spec = spec
        self.task_id: Optional[int] = None
        self.point: Optional[tuple] = None
        self.launch: Optional[str] = None


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault.

    Attributes:
        kind: ``kill`` (worker process exits hard), ``hang`` (worker sleeps
            ``hang_s`` seconds mid-phase), or ``corrupt`` (the shard result
            blob is garbled so the parent cannot unpickle it).
        scope: what the fault is anchored to — a ``worker`` pool slot, a
            ``shard`` (distribution node), or a single ``point`` task.
        target: the worker index / node id as a 1-tuple, or the point tuple.
        phase: which shard-pipeline phase fires it.  Point-scoped faults
            fire per point and therefore only support ``execution``.
        launch: index-launch ordinal this spec applies to (``None`` = any).
        times: how many firings before the spec is exhausted; ``-1`` means
            unlimited (the canonical *unrecoverable* fault).
        hang_s: sleep length for ``hang`` faults.
    """

    kind: str
    scope: str
    target: Tuple[int, ...]
    phase: str = "execution"
    launch: Optional[int] = None
    times: int = 1
    hang_s: float = 0.25

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.scope not in FAULT_SCOPES:
            raise ValueError(f"unknown fault scope {self.scope!r}")
        if self.phase not in FAULT_PHASES:
            raise ValueError(f"unknown fault phase {self.phase!r}")
        if self.scope == "point" and self.phase != "execution":
            raise ValueError("point-scoped faults fire at execution only")
        if self.times == 0:
            raise ValueError("times must be positive or -1 (unlimited)")
        if not isinstance(self.target, tuple) or not self.target:
            raise ValueError("target must be a non-empty tuple of ints")
        if self.hang_s < 0:
            raise ValueError("hang_s must be >= 0")

    def describe(self) -> str:
        target = ",".join(str(t) for t in self.target)
        times = "unlimited" if self.times < 0 else f"x{self.times}"
        at = f"@launch {self.launch}" if self.launch is not None else "@any"
        return (
            f"{self.kind} {self.scope} {target} in {self.phase} "
            f"({times}, {at})"
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded set of fault specs."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    @staticmethod
    def random(
        seed: int,
        n_faults: int = 1,
        workers: int = 2,
        shards: int = 4,
        kinds: Tuple[str, ...] = ("kill", "corrupt"),
        phases: Tuple[str, ...] = FAULT_PHASES,
    ) -> "FaultPlan":
        """A reproducible plan: same arguments, same faults, forever."""
        rng = random.Random(seed)
        specs = []
        for _ in range(n_faults):
            scope = rng.choice(("worker", "shard"))
            target = (
                rng.randrange(workers) if scope == "worker"
                else rng.randrange(shards),
            )
            specs.append(
                FaultSpec(
                    kind=rng.choice(kinds),
                    scope=scope,
                    target=target,
                    phase=rng.choice(phases),
                )
            )
        return FaultPlan(specs=tuple(specs), seed=seed)

    def describe(self) -> str:
        if not self.specs:
            return "empty fault plan"
        return "; ".join(spec.describe() for spec in self.specs)


@dataclass(frozen=True)
class RetryPolicy:
    """Caps on the recovery ladder (see ``docs/fault-tolerance.md``).

    All delays here are *wall-clock* implementation overhead, mirrored by
    the cost model's ``t_retry_backoff`` / ``t_worker_respawn`` fields —
    never charged to simulated time.
    """

    same_worker_retries: int = 1    # tier 1: resubmit to the same process
    respawns: int = 2               # tier 2: replace the worker process
    backoff_base_s: float = 0.01    # first retry delay
    backoff_cap_s: float = 1.0      # exponential backoff ceiling
    shard_timeout_s: Optional[float] = 30.0  # hang detector; None = forever

    def backoff_s(self, attempt: int) -> float:
        """Capped exponential backoff before retry ``attempt`` (1-based)."""
        if attempt <= 0:
            return 0.0
        return min(self.backoff_base_s * (2 ** (attempt - 1)),
                   self.backoff_cap_s)


def parse_fault(text: str) -> FaultSpec:
    """Parse a CLI fault spec: ``KIND:SCOPE:TARGET[:PHASE[:TIMES]]``.

    ``TARGET`` is an integer (worker/shard) or a comma-separated point
    tuple; ``TIMES`` of ``-1`` makes the fault unlimited (unrecoverable).
    Examples: ``kill:worker:0``, ``hang:shard:1:execution``,
    ``kill:point:0:execution:-1``.
    """
    parts = text.split(":")
    if len(parts) < 3 or len(parts) > 5:
        raise ValueError(
            f"bad fault spec {text!r}: want KIND:SCOPE:TARGET[:PHASE[:TIMES]]"
        )
    kind, scope, target_text = parts[0], parts[1], parts[2]
    try:
        target = tuple(int(t) for t in target_text.split(","))
    except ValueError:
        raise ValueError(
            f"bad fault target {target_text!r} in {text!r}"
        ) from None
    phase = parts[3] if len(parts) > 3 else "execution"
    try:
        times = int(parts[4]) if len(parts) > 4 else 1
    except ValueError:
        raise ValueError(f"bad fault times {parts[4]!r} in {text!r}") from None
    return FaultSpec(kind=kind, scope=scope, target=target, phase=phase,
                     times=times)
