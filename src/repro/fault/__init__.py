"""Deterministic fault injection and recovery (see docs/fault-tolerance.md).

Public surface:

* :class:`FaultPlan` / :class:`FaultSpec` — seeded, immutable descriptions
  of which worker/shard/point fails, how (kill / hang / corrupt), and at
  which pipeline phase; wired in via ``RuntimeConfig.fault_plan``.
* :class:`RetryPolicy` — caps for the recovery ladder (same-worker retry →
  respawn → serial fallback → poison); ``RuntimeConfig.retry``.
* :class:`FaultInjector` — per-run firing state (the runtime creates one
  from the config's plan).
* :class:`InjectedFaultError` — the only exception the runtime converts
  into poisoned futures.
* :func:`run_faultsim` — the ``repro faultsim`` driver: a fault-free
  reference run vs a faulted run, compared byte for byte.
"""

from repro.fault.inject import FaultInjector, FaultSchedule, ScheduledFault
from repro.fault.plan import (
    FAULT_KINDS,
    FAULT_PHASES,
    FAULT_SCOPES,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    RetryPolicy,
    parse_fault,
)
from repro.fault.sim import FaultSimReport, run_faultsim

__all__ = [
    "FAULT_KINDS",
    "FAULT_PHASES",
    "FAULT_SCOPES",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "FaultSchedule",
    "ScheduledFault",
    "InjectedFaultError",
    "RetryPolicy",
    "FaultSimReport",
    "parse_fault",
    "run_faultsim",
]
