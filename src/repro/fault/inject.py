"""The fault injector: arms a plan's specs against a concrete run.

The plan is immutable; the injector wraps it with mutable firing state
(per-spec remaining counts, the current launch ordinal, an event log).
Faults reach their targets by two routes:

* **Worker-side directives** — :meth:`FaultInjector.arm_shard` is called by
  the parallel backend while building each :class:`~repro.exec.plan.
  ShardPlan`; matching specs are consumed and embedded as plain-tuple
  directives the worker fires with real effects (``os._exit``, a bounded
  sleep, a garbled result blob).  Because consumption happens at arm time,
  a retried shard is re-armed against the *remaining* counts: a
  ``times=1`` kill fires once and the retry sails through, which is what
  makes recovery-then-byte-identical runs possible.
* **Inline firing** — :meth:`FaultInjector.fire_inline` is called on the
  serial execution path (the last rung before poisoning).  Shard- and
  point-scoped execution-phase specs raise :class:`InjectedFaultError`
  there; ``hang`` specs just sleep (a slow task is not an error).

Inline firing is gated on an active index launch (``begin_launch`` /
``end_launch``), so fills, copies, and other single tasks between launches
never trip launch-targeted faults.

A third route exists for the formal conformance harness: a
:class:`FaultSchedule` of :class:`ScheduledFault` entries keyed on *attempt
ordinals* rather than firing budgets.  Where a plan spec says "corrupt
shard 0's result, twice, whenever it next runs", a scheduled fault says
"corrupt shard 0's result on exactly its second submission of launch 3" —
precise enough to replay a model-checker counterexample trace against the
real executor, attempt for attempt.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.fault.plan import FAULT_KINDS, FaultPlan, FaultSpec, \
    InjectedFaultError

__all__ = [
    "FaultInjector",
    "FaultDirective",
    "FaultSchedule",
    "ScheduledFault",
]

#: What ships to a worker inside ``ShardPlan.faults``:
#: (kind, phase, point tuple | None, hang seconds).
FaultDirective = Tuple[str, str, Optional[tuple], float]


@dataclass(frozen=True)
class ScheduledFault:
    """One deterministically-placed fault, keyed by attempt ordinal.

    Attributes:
        node: the distribution node (shard) the fault targets; ``-1``
            matches any node (useful for inline serial-path faults, where
            the model does not distinguish shards).
        attempt: which submission of that shard fires the fault — 0 is the
            first attempt, 1 the first retry/respawn resubmission, and so
            on.  ``None`` fires on *every* attempt (the unrecoverable
            analogue of ``times=-1``).
        kind: ``kill`` / ``hang`` / ``corrupt``.
        phase: shard-pipeline phase for worker-side firing.
        hang_s: sleep length for ``hang`` faults.
        via: ``"worker"`` ships a directive with the shard submission;
            ``"inline"`` fires on the serial path (poison tier).
        launch: index-launch ordinal this entry applies to (``None`` = any).
    """

    node: int
    attempt: Optional[int]
    kind: str
    phase: str = "execution"
    hang_s: float = 0.25
    via: str = "worker"
    launch: Optional[int] = 0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.via not in ("worker", "inline"):
            raise ValueError(f"via must be 'worker' or 'inline', "
                             f"got {self.via!r}")


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable sequence of :class:`ScheduledFault` entries."""

    entries: Tuple[ScheduledFault, ...] = ()

    def describe(self) -> str:
        if not self.entries:
            return "empty fault schedule"
        return "; ".join(
            f"{e.kind}@node {e.node} attempt "
            f"{'*' if e.attempt is None else e.attempt} via {e.via}"
            for e in self.entries
        )


class FaultInjector:
    """Mutable firing state for one run of one :class:`FaultPlan`.

    An optional :class:`FaultSchedule` rides along: schedule entries match
    on the per-``(launch, node)`` attempt counter the injector maintains,
    so the Nth resubmission of a shard can be faulted without touching the
    N-1 attempts before it.
    """

    def __init__(self, plan: FaultPlan,
                 schedule: Optional[FaultSchedule] = None):
        self.plan = plan
        self.schedule = schedule or FaultSchedule()
        self._remaining: List[int] = [spec.times for spec in plan.specs]
        #: attempt-specific schedule entries fire at most once.
        self._sched_fired: List[bool] = [False] * len(self.schedule.entries)
        #: arm ordinal per (launch ordinal, node): how many times this
        #: shard has been submitted within this launch.
        self._arm_counts: Dict[Tuple[Optional[int], int], int] = {}
        #: inline-query ordinal per (launch ordinal, node), counted
        #: separately because the serial path never arms shards.
        self._inline_counts: Dict[Tuple[Optional[int], int], int] = {}
        self.events: List[dict] = []
        self.current_launch: Optional[int] = None

    # ------------------------------------------------------------ lifecycle
    def begin_launch(self, ordinal: int) -> None:
        self.current_launch = ordinal

    def end_launch(self) -> None:
        self.current_launch = None

    @property
    def fired_count(self) -> int:
        return len(self.events)

    def exhausted(self) -> bool:
        return (
            all(r == 0 for r in self._remaining)
            and all(
                fired or entry.attempt is None
                for fired, entry in
                zip(self._sched_fired, self.schedule.entries)
            )
        )

    # ------------------------------------------------------------- matching
    def _live(self, i: int, spec: FaultSpec) -> bool:
        if self._remaining[i] == 0:
            return False
        if spec.launch is not None and spec.launch != self.current_launch:
            return False
        return True

    def _consume(self, i: int, spec: FaultSpec, via: str) -> None:
        if self._remaining[i] > 0:
            self._remaining[i] -= 1
        self.events.append(
            dict(
                kind=spec.kind,
                scope=spec.scope,
                target=spec.target,
                phase=spec.phase,
                launch=self.current_launch,
                via=via,
            )
        )

    # ------------------------------------------------------ schedule matching
    def _sched_matches(self, i: int, entry: ScheduledFault, via: str,
                       node: int, attempt: int) -> bool:
        if entry.via != via:
            return False
        if entry.attempt is not None and self._sched_fired[i]:
            return False
        if entry.launch is not None and entry.launch != self.current_launch:
            return False
        if entry.node != -1 and entry.node != node:
            return False
        if entry.attempt is not None and entry.attempt != attempt:
            return False
        return True

    def _sched_consume(self, i: int, entry: ScheduledFault, via: str,
                       node: int, attempt: int) -> None:
        self._sched_fired[i] = True
        self.events.append(
            dict(
                kind=entry.kind,
                scope="schedule",
                target=(node,),
                phase=entry.phase,
                launch=self.current_launch,
                attempt=attempt,
                via=via,
            )
        )

    # ------------------------------------------------------ worker directives
    def arm_shard(self, worker: int, node: int, points) -> List[FaultDirective]:
        """Directives for one shard submission; consumes matched firings."""
        directives: List[FaultDirective] = []
        local = {tuple(p) for p in points}
        for i, spec in enumerate(self.plan.specs):
            if not self._live(i, spec):
                continue
            if spec.scope == "worker" and spec.target == (worker,):
                directives.append((spec.kind, spec.phase, None, spec.hang_s))
            elif spec.scope == "shard" and spec.target == (node,):
                directives.append((spec.kind, spec.phase, None, spec.hang_s))
            elif spec.scope == "point" and spec.target in local:
                directives.append(
                    (spec.kind, spec.phase, spec.target, spec.hang_s)
                )
            else:
                continue
            self._consume(i, spec, via="worker")
        key = (self.current_launch, node)
        attempt = self._arm_counts.get(key, 0)
        self._arm_counts[key] = attempt + 1
        for i, entry in enumerate(self.schedule.entries):
            if self._sched_matches(i, entry, "worker", node, attempt):
                directives.append(
                    (entry.kind, entry.phase, None, entry.hang_s)
                )
                self._sched_consume(i, entry, "worker", node, attempt)
        return directives

    # --------------------------------------------------------- inline firing
    def fire_inline(self, point, node: int) -> None:
        """Fire shard/point execution-phase faults on the serial path.

        ``hang`` sleeps and returns (a delayed task is still correct);
        ``kill``/``corrupt`` have no inline analogue short of failing, so
        both raise :class:`InjectedFaultError` — the caller converts that
        into a poisoned launch, never into a bare exception.
        """
        if self.current_launch is None or point is None:
            return
        pt = tuple(point)
        if self.schedule.entries:
            key = (self.current_launch, node)
            attempt = self._inline_counts.get(key, 0)
            self._inline_counts[key] = attempt + 1
            for i, entry in enumerate(self.schedule.entries):
                if not self._sched_matches(i, entry, "inline", node, attempt):
                    continue
                self._sched_consume(i, entry, "inline", node, attempt)
                if entry.kind == "hang":
                    time.sleep(entry.hang_s)
                    continue
                err = InjectedFaultError(
                    f"scheduled {entry.kind} fault fired inline at point "
                    f"{pt} (node {node}, attempt {attempt})",
                )
                err.point = pt
                raise err
        for i, spec in enumerate(self.plan.specs):
            if not self._live(i, spec) or spec.phase != "execution":
                continue
            if spec.scope == "point" and spec.target == pt:
                pass
            elif spec.scope == "shard" and spec.target == (node,):
                pass
            else:
                continue
            self._consume(i, spec, via="inline")
            if spec.kind == "hang":
                time.sleep(spec.hang_s)
                continue
            err = InjectedFaultError(
                f"injected {spec.kind} fault fired inline at point {pt} "
                f"(node {node}): {spec.describe()}",
                spec=spec,
            )
            err.point = pt
            raise err
