"""The fault injector: arms a plan's specs against a concrete run.

The plan is immutable; the injector wraps it with mutable firing state
(per-spec remaining counts, the current launch ordinal, an event log).
Faults reach their targets by two routes:

* **Worker-side directives** — :meth:`FaultInjector.arm_shard` is called by
  the parallel backend while building each :class:`~repro.exec.plan.
  ShardPlan`; matching specs are consumed and embedded as plain-tuple
  directives the worker fires with real effects (``os._exit``, a bounded
  sleep, a garbled result blob).  Because consumption happens at arm time,
  a retried shard is re-armed against the *remaining* counts: a
  ``times=1`` kill fires once and the retry sails through, which is what
  makes recovery-then-byte-identical runs possible.
* **Inline firing** — :meth:`FaultInjector.fire_inline` is called on the
  serial execution path (the last rung before poisoning).  Shard- and
  point-scoped execution-phase specs raise :class:`InjectedFaultError`
  there; ``hang`` specs just sleep (a slow task is not an error).

Inline firing is gated on an active index launch (``begin_launch`` /
``end_launch``), so fills, copies, and other single tasks between launches
never trip launch-targeted faults.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.fault.plan import FaultPlan, FaultSpec, InjectedFaultError

__all__ = ["FaultInjector", "FaultDirective"]

#: What ships to a worker inside ``ShardPlan.faults``:
#: (kind, phase, point tuple | None, hang seconds).
FaultDirective = Tuple[str, str, Optional[tuple], float]


class FaultInjector:
    """Mutable firing state for one run of one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._remaining: List[int] = [spec.times for spec in plan.specs]
        self.events: List[dict] = []
        self.current_launch: Optional[int] = None

    # ------------------------------------------------------------ lifecycle
    def begin_launch(self, ordinal: int) -> None:
        self.current_launch = ordinal

    def end_launch(self) -> None:
        self.current_launch = None

    @property
    def fired_count(self) -> int:
        return len(self.events)

    def exhausted(self) -> bool:
        return all(r == 0 for r in self._remaining)

    # ------------------------------------------------------------- matching
    def _live(self, i: int, spec: FaultSpec) -> bool:
        if self._remaining[i] == 0:
            return False
        if spec.launch is not None and spec.launch != self.current_launch:
            return False
        return True

    def _consume(self, i: int, spec: FaultSpec, via: str) -> None:
        if self._remaining[i] > 0:
            self._remaining[i] -= 1
        self.events.append(
            dict(
                kind=spec.kind,
                scope=spec.scope,
                target=spec.target,
                phase=spec.phase,
                launch=self.current_launch,
                via=via,
            )
        )

    # ------------------------------------------------------ worker directives
    def arm_shard(self, worker: int, node: int, points) -> List[FaultDirective]:
        """Directives for one shard submission; consumes matched firings."""
        directives: List[FaultDirective] = []
        local = {tuple(p) for p in points}
        for i, spec in enumerate(self.plan.specs):
            if not self._live(i, spec):
                continue
            if spec.scope == "worker" and spec.target == (worker,):
                directives.append((spec.kind, spec.phase, None, spec.hang_s))
            elif spec.scope == "shard" and spec.target == (node,):
                directives.append((spec.kind, spec.phase, None, spec.hang_s))
            elif spec.scope == "point" and spec.target in local:
                directives.append(
                    (spec.kind, spec.phase, spec.target, spec.hang_s)
                )
            else:
                continue
            self._consume(i, spec, via="worker")
        return directives

    # --------------------------------------------------------- inline firing
    def fire_inline(self, point, node: int) -> None:
        """Fire shard/point execution-phase faults on the serial path.

        ``hang`` sleeps and returns (a delayed task is still correct);
        ``kill``/``corrupt`` have no inline analogue short of failing, so
        both raise :class:`InjectedFaultError` — the caller converts that
        into a poisoned launch, never into a bare exception.
        """
        if self.current_launch is None or point is None:
            return
        pt = tuple(point)
        for i, spec in enumerate(self.plan.specs):
            if not self._live(i, spec) or spec.phase != "execution":
                continue
            if spec.scope == "point" and spec.target == pt:
                pass
            elif spec.scope == "shard" and spec.target == (node,):
                pass
            else:
                continue
            self._consume(i, spec, via="inline")
            if spec.kind == "hang":
                time.sleep(spec.hang_s)
                continue
            err = InjectedFaultError(
                f"injected {spec.kind} fault fired inline at point {pt} "
                f"(node {node}): {spec.describe()}",
                spec=spec,
            )
            err.point = pt
            raise err
