"""The ``repro faultsim`` driver: inject faults, recover, compare bytes.

One invocation runs an application twice with identical configuration —
once fault-free (the reference) and once under a :class:`FaultPlan` — and
compares every observable: the result array byte-for-byte, and the full
:class:`~repro.runtime.pipeline.PipelineStats` table.  The contract being
exercised is the heart of the fault-tolerance layer: *a recovered run is
indistinguishable from a run where the fault never happened*.

Outcomes map to process exit codes (the CI fault smoke relies on these):

* ``0`` — the plan fired at least once, every fault was recovered, and the
  faulted run is byte-identical to the reference.
* ``1`` — recovered but **not** identical (a determinism bug), or the plan
  never fired (the smoke would silently test nothing).
* ``2`` — the plan was unrecoverable: the run poisoned one or more
  launches.  ``repro faultsim`` reports this as one line.

Runtime imports happen inside :func:`run_faultsim` on purpose: this module
is re-exported from :mod:`repro.fault`, which the runtime itself imports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.fault.plan import FaultPlan, RetryPolicy

__all__ = ["FAULTSIM_APPS", "FaultSimReport", "run_faultsim"]

FAULTSIM_APPS = ("circuit", "stencil")


@dataclass
class FaultSimReport:
    """Everything one faultsim run observed, ready to render."""

    app: str
    workers: int
    plan: str                       # FaultPlan.describe()
    faults_fired: int = 0
    poisoned_launches: int = 0
    poison_message: str = ""
    identical: bool = False
    stats_identical: bool = False
    shard_retries: int = 0
    worker_respawns: int = 0
    shard_timeouts: int = 0
    pool_failures: int = 0
    backoff_total_s: float = 0.0
    notes: List[str] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        return self.poisoned_launches == 0

    @property
    def exit_code(self) -> int:
        if not self.recovered:
            return 2
        if self.faults_fired == 0:
            return 1  # the plan tested nothing; do not report success
        return 0 if (self.identical and self.stats_identical) else 1

    def summary_line(self) -> str:
        """The one-line outcome (the only output for exit code 2)."""
        if not self.recovered:
            return (
                f"faultsim {self.app}: poisoned — {self.poisoned_launches} "
                f"launch(es) lost to unrecovered faults: {self.poison_message}"
            )
        if self.faults_fired == 0:
            return f"faultsim {self.app}: plan never fired ({self.plan})"
        verdict = (
            "recovered, byte-identical"
            if self.identical and self.stats_identical
            else "recovered BUT NOT IDENTICAL"
        )
        return (
            f"faultsim {self.app}: {self.faults_fired} fault(s) fired, "
            f"{verdict}"
        )

    def render(self) -> str:
        lines = [
            self.summary_line(),
            f"  plan            : {self.plan}",
            f"  workers         : {self.workers}",
            f"  faults fired    : {self.faults_fired}",
            f"  shard retries   : {self.shard_retries}",
            f"  worker respawns : {self.worker_respawns}",
            f"  shard timeouts  : {self.shard_timeouts}",
            f"  pool failures   : {self.pool_failures}",
            f"  backoff slept   : {self.backoff_total_s:.3f}s wall clock",
            f"  result bytes    : "
            f"{'identical' if self.identical else 'MISMATCH'}",
            f"  pipeline stats  : "
            f"{'identical' if self.stats_identical else 'MISMATCH'}",
        ]
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def _run_app(app: str, steps: Optional[int], seed: int, cfg):
    """Build and run one application; returns (runtime, result ndarray)."""
    from repro.runtime.runtime import Runtime

    rt = Runtime(cfg)
    if app == "circuit":
        from repro.apps.circuit import (
            CircuitConfig,
            build_circuit,
            run_circuit,
        )

        graph = build_circuit(
            rt,
            CircuitConfig(
                n_pieces=4, nodes_per_piece=16, wires_per_piece=32,
                steps=steps or 5, seed=seed,
            ),
        )
        result = run_circuit(rt, graph)
    elif app == "stencil":
        from repro.apps.stencil import (
            StencilConfig,
            build_stencil,
            run_stencil,
        )

        grid = build_stencil(
            rt, StencilConfig(n=32, blocks=(2, 2), radius=2, steps=steps or 4)
        )
        result = run_stencil(rt, grid)
    else:
        raise ValueError(
            f"unknown faultsim app {app!r}; choose from {FAULTSIM_APPS}"
        )
    return rt, result


def run_faultsim(
    app: str,
    plan: FaultPlan,
    workers: int = 2,
    steps: Optional[int] = None,
    seed: int = 42,
    retry: Optional[RetryPolicy] = None,
    transport: Optional[str] = None,
) -> FaultSimReport:
    """Reference run vs faulted run; see the module docstring for codes."""
    from repro.runtime.runtime import RuntimeConfig

    report = FaultSimReport(app=app, workers=workers, plan=plan.describe())
    base = dict(n_nodes=2, workers=workers, transport=transport)
    ref_rt, ref_result = _run_app(app, steps, seed, RuntimeConfig(**base))
    if ref_rt.stats.launches_poisoned:
        raise RuntimeError(
            "fault-free reference run reported poisoned launches"
        )

    faulted_cfg = RuntimeConfig(**base, fault_plan=plan, retry=retry)
    rt, result = _run_app(app, steps, seed, faulted_cfg)

    inj = rt.fault_injector
    report.faults_fired = inj.fired_count if inj is not None else 0
    report.poisoned_launches = rt.stats.launches_poisoned
    if rt.poison_log:
        report.poison_message = str(rt.poison_log[0])

    backend = rt.backend
    stats = getattr(backend, "stats", None)
    if stats is not None:
        report.shard_retries = stats.shard_retries
        report.worker_respawns = stats.worker_respawns
        report.shard_timeouts = stats.shard_timeouts
        report.backoff_total_s = stats.backoff_total_s
    pool = getattr(backend, "_pool", None)
    if pool is not None:
        report.pool_failures = pool.pool_failures

    if report.recovered:
        report.identical = result.tobytes() == ref_result.tobytes()
        # The byte-identity contract covers the pipeline tables too: a
        # recovered fault may not perturb a single counter.
        report.stats_identical = rt.stats == ref_rt.stats
        if not report.identical:
            report.notes.append("result arrays differ")
        if not report.stats_identical:
            report.notes.append("PipelineStats differ between runs")
    return report
