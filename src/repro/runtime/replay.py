"""Launch-replay cache: memoized per-launch analysis (ROADMAP hot path).

Iterative workloads reissue the *same* index launch every timestep, and the
Section-5 pipeline work for it is amortizable.  This module groups the
memoization layers, all keyed by the runtime's ``_launch_signature`` —
(task uid, domain, per-requirement (partition uid, functor, privilege)):

1. **Safety verdicts** (:meth:`LaunchReplayCache.get_verdict`): the full
   hybrid static/dynamic :class:`~repro.core.safety.SafetyVerdict` of §3–§4
   is a pure function of the signature, so repeated issues reuse it whole.
2. **Dynamic check results** (:class:`DynamicCheckMemo`): the Listing-3
   bitmask checks are pure in (domain, functors+modes, color bounds) — a
   strictly *coarser* key than the launch signature — so even distinct
   launches sharing a functor/domain pair skip re-evaluation.
3. **Expansion templates** (:class:`ExpansionTemplate`): the per-point
   concrete requirements, dependence-analysis access triples, and
   :class:`~repro.runtime.task.PhysicalRegion` views produced by
   ``launch.point_task(point)`` — the object churn happens once per
   distinct launch, not once per issue.
4. **Physical dependence templates**
   (:class:`~repro.runtime.physical.DependenceTemplate`): recorded on a
   trace-validated replay and re-stamped with fresh task ids on later
   replays; dropped whenever a trace breaks or anything invalidates.

Layers 1–3 are context-free (valid whenever the signature matches); layer 4
depends on the analyzer's state and is therefore both gated on trace
validation and self-validating (see :mod:`repro.runtime.physical`).

The sharding/slicing memos live with their subsystems
(:class:`~repro.runtime.mapper.ShardingCache`,
:class:`~repro.runtime.distribution.SlicingCache`); the runtime's
``invalidate_analysis_cache`` clears all of them together.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.checks import CheckResult, dynamic_cross_check
from repro.core.launch import IndexLaunch, RegionRequirement, TaskLaunch
from repro.core.safety import SafetyVerdict
from repro.runtime.physical import DependenceTemplate
from repro.runtime.task import PhysicalRegion

__all__ = [
    "DynamicCheckMemo",
    "PointPlan",
    "ExpansionTemplate",
    "LaunchReplayCache",
    "estimate_bytes",
]


def estimate_bytes(obj, depth: int = 3) -> int:
    """Best-effort recursive size estimate for cache budgeting.

    Deliberately an *estimate*: shared substructure is double-counted and
    recursion is depth-capped, so the number bounds growth rather than
    reports exact RSS.  numpy buffers (the dominant payloads — check masks,
    sparse indices) are counted exactly via ``nbytes``.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + 96
    try:
        size = sys.getsizeof(obj)
    except TypeError:  # pragma: no cover - exotic objects without sizeof
        size = 64
    if depth <= 0:
        return size
    if isinstance(obj, dict):
        for k, v in obj.items():
            size += estimate_bytes(k, depth - 1)
            size += estimate_bytes(v, depth - 1)
        return size
    if isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += estimate_bytes(item, depth - 1)
        return size
    inner = getattr(obj, "__dict__", None)
    if inner:
        size += estimate_bytes(inner, depth - 1)
    return size


class DynamicCheckMemo:
    """Memoizes :func:`~repro.core.checks.dynamic_cross_check` results.

    Keyed by (domain, ((functor description, mode), ...), color bounds):
    everything the check's outcome depends on, and nothing tied to a
    particular launch.  The memoized :class:`CheckResult` carries the
    evaluation count the original run paid, so verdicts assembled from
    memoized checks report the same ``check_evaluations`` as fresh ones.

    Service-grade bounding: ``entry_budget`` / ``byte_budget`` cap the memo
    with LRU eviction (both ``None`` by default = unbounded, the batch-mode
    behavior).  An evicted key behaves exactly like a cold miss — the check
    is pure in its key, so the re-evaluated result is byte-identical.
    """

    def __init__(self, entry_budget: Optional[int] = None,
                 byte_budget: Optional[int] = None):
        self._cache: "OrderedDict[tuple, CheckResult]" = OrderedDict()
        self._sizes: Dict[tuple, int] = {}
        self._bytes = 0
        self.entry_budget = entry_budget
        self.byte_budget = byte_budget
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: optional (functor, points) -> values evaluator replacing
        #: ``functor.apply_batch`` — exact-preserving by contract (the
        #: parallel backend installs its chunked worker-pool sweep here).
        self.batch_evaluator = None
        #: optional :class:`~repro.runtime.kernels.CheckKernelCache`
        #: delegated to on memo misses (``RuntimeConfig.kernels``): a
        #: process-wide store of compiled check verdicts that outlives this
        #: memo's clears and serves affine constant verdicts without a
        #: sweep.  None runs the plain vectorized check.
        self.kernels = None

    def clear(self) -> int:
        n = len(self._cache)
        self._cache.clear()
        self._sizes.clear()
        self._bytes = 0
        return n

    @property
    def bytes_estimate(self) -> int:
        """Estimated resident bytes of the memoized results."""
        return self._bytes

    def __len__(self) -> int:
        return len(self._cache)

    def _over_budget(self) -> bool:
        if self.entry_budget is not None and len(self._cache) > self.entry_budget:
            return True
        return self.byte_budget is not None and self._bytes > self.byte_budget

    def _store(self, key: tuple, result: CheckResult) -> None:
        est = estimate_bytes(key) + estimate_bytes(result)
        self._cache[key] = result
        self._bytes += est - self._sizes.get(key, 0)
        self._sizes[key] = est
        # Never evict the entry just stored (it is the MRU end), so a
        # budget of 1 still serves the launch being issued.
        while self._over_budget() and len(self._cache) > 1:
            old_key, _ = self._cache.popitem(last=False)
            self._bytes -= self._sizes.pop(old_key, 0)
            self.evictions += 1

    def export_entries(self) -> List[tuple]:
        """The memo contents as a picklable ``[(key, result), ...]`` list,
        oldest first (so ingesting preserves recency order)."""
        return list(self._cache.items())

    def ingest_entries(self, entries) -> int:
        """Install persisted (key, result) pairs, oldest first, without
        counting hits/misses; returns how many were installed.  Existing
        entries win (they are fresher than the snapshot)."""
        n = 0
        for key, result in entries:
            if key not in self._cache:
                self._store(key, result)
                n += 1
        return n

    def run(self, domain, args, bounds, use_numpy: bool = True) -> CheckResult:
        """Drop-in for ``dynamic_cross_check`` (see ``check_memo`` in
        :func:`~repro.core.safety.analyze_launch_safety`)."""
        key = (
            domain,
            tuple((functor.describe(), mode) for functor, mode in args),
            bounds,
            use_numpy,
        )
        found = self._cache.get(key)
        if found is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            return found
        self.misses += 1
        if self.kernels is not None:
            result = self.kernels.run(
                domain, args, bounds, use_numpy=use_numpy,
                apply_batch=self.batch_evaluator,
            )
        else:
            result = dynamic_cross_check(
                domain, args, bounds, use_numpy=use_numpy,
                apply_batch=self.batch_evaluator,
            )
        self._store(key, result)
        return result


@dataclass
class PointPlan:
    """Everything reusable about one point task of a cached launch."""

    task_launch: TaskLaunch
    requirements: List[RegionRequirement]
    accesses: List[tuple]  # (subregion, privilege, fields) for the analyzer
    regions: List[PhysicalRegion]


@dataclass
class ExpansionTemplate:
    """Memoized ``launch.point_task`` expansion for one launch signature.

    The concrete requirements depend only on the signature (partition,
    functor, domain).  The cached :class:`TaskLaunch` objects additionally
    bake in the broadcast ``args``, so they are reused only while the
    reissued launch carries identical args and no per-point argument map;
    otherwise fresh ``TaskLaunch`` objects are built from the cached
    requirements (still skipping every ``req.project`` call).
    """

    plans: Dict[tuple, PointPlan] = field(default_factory=dict)
    base_args: tuple = ()
    had_point_args: bool = False
    #: one-slot ordered plan-list arena (hot-path engine, layer 3): the
    #: (node, plan) list for one distribution assignment, reusable across
    #: replays while the template itself is reusable and the assignment
    #: object is the same (the sharding cache returns a stable dict per
    #: (mapper, domain, nodes), so identity is the validity token).
    plan_list_key: Optional[object] = field(default=None, repr=False)
    plan_list: Optional[list] = field(default=None, repr=False)

    def reusable_for(self, launch: IndexLaunch) -> bool:
        return (
            not self.had_point_args
            and launch.point_args is None
            and launch.args == self.base_args
        )

    def ordered_plans(self, launch: IndexLaunch, assignment) -> Optional[list]:
        """The cached [(node, PointPlan)] list for ``assignment``, or None.

        Only valid when the baked-in TaskLaunch objects are reusable as-is;
        callers build (and may :meth:`store_plans`) otherwise.
        """
        if self.plan_list_key is assignment and self.reusable_for(launch):
            return self.plan_list
        return None

    def store_plans(self, launch: IndexLaunch, assignment, plans: list) -> None:
        if self.reusable_for(launch):
            self.plan_list_key = assignment
            self.plan_list = plans

    def point_plan(self, launch: IndexLaunch, point) -> PointPlan:
        """The plan for ``point``, rebuilding the TaskLaunch if args moved."""
        plan = self.plans[tuple(point)]
        if self.reusable_for(launch):
            return plan
        extra = (
            launch.point_args.get(plan.task_launch.point)
            if launch.point_args is not None
            else ()
        )
        fresh = TaskLaunch(
            task=launch.task,
            requirements=plan.requirements,
            args=launch.args + extra,
            point=plan.task_launch.point,
            parent=launch,
        )
        return PointPlan(fresh, plan.requirements, plan.accesses, plan.regions)


class LaunchReplayCache:
    """The per-runtime store for all launch-keyed memoization layers.

    Service-grade bounding (``entry_budget`` / ``byte_budget``): one LRU
    over launch *signatures* — touching any layer of a signature refreshes
    it; storing into any layer accounts it; going over budget evicts the
    least-recently-used signature *whole* (verdicts, expansion, physical
    template together).  Eviction is mechanically ``poison_signature`` but
    semantically a cold miss: every layer's absence already falls back to
    recomputation, and each layer is pure in the signature (the physical
    template additionally self-validates), so a reissued evicted launch is
    byte-identical to a never-cached one.  Both budgets default to ``None``
    = unbounded, the original batch-mode behavior.
    """

    def __init__(self, profiler=None, entry_budget: Optional[int] = None,
                 byte_budget: Optional[int] = None):
        self._verdicts: Dict[tuple, SafetyVerdict] = {}
        self._replayed: Dict[tuple, SafetyVerdict] = {}
        self._expansions: Dict[tuple, ExpansionTemplate] = {}
        self._physical: Dict[tuple, DependenceTemplate] = {}
        self.check_memo = DynamicCheckMemo(
            entry_budget=entry_budget, byte_budget=byte_budget
        )
        self._profiler = profiler
        self.entry_budget = entry_budget
        self.byte_budget = byte_budget
        self._lru: "OrderedDict[tuple, int]" = OrderedDict()  # sig -> est bytes
        self._bytes = 0
        self.evictions = 0

    def _note(self, layer: str, outcome: str) -> None:
        prof = self._profiler
        if prof is not None and prof.enabled:
            prof.count("cache.lookups", 1.0, layer=layer, outcome=outcome)

    # ------------------------------------------------------------ budgeting
    @property
    def bytes_estimate(self) -> int:
        """Estimated resident bytes across the signature-keyed layers."""
        return self._bytes

    def __len__(self) -> int:
        """Distinct signatures currently tracked by the LRU."""
        return len(self._lru)

    def _touch(self, sig: tuple) -> None:
        if sig in self._lru:
            self._lru.move_to_end(sig)

    def _account(self, sig: tuple, obj) -> None:
        """Charge ``obj``'s estimated size to ``sig`` and enforce budgets."""
        if self.entry_budget is None and self.byte_budget is None:
            return  # unbounded: skip the estimator entirely (hot path)
        est = estimate_bytes(obj)
        if sig in self._lru:
            self._lru[sig] += est
            self._lru.move_to_end(sig)
        else:
            self._lru[sig] = est
        self._bytes += est
        while self._over_budget() and len(self._lru) > 1:
            # The signature just stored sits at the MRU end, so the LRU
            # head is always a *different* signature: the launch being
            # issued keeps its own layers even under a budget of 1.
            old_sig, old_est = self._lru.popitem(last=False)
            self._bytes -= old_est
            self._evict(old_sig)

    def _over_budget(self) -> bool:
        if self.entry_budget is not None and len(self._lru) > self.entry_budget:
            return True
        return self.byte_budget is not None and self._bytes > self.byte_budget

    def _evict(self, sig: tuple) -> None:
        """Drop every layer of one signature (LRU eviction = cold miss)."""
        for run_dynamic in (True, False):
            self._verdicts.pop((sig, run_dynamic), None)
            self._replayed.pop((sig, run_dynamic), None)
        self._expansions.pop(sig, None)
        self._physical.pop(sig, None)
        self.evictions += 1
        self._note("evict", "dropped")

    def _forget(self, sig: tuple) -> None:
        """Stop tracking a signature whose layers were dropped elsewhere."""
        est = self._lru.pop(sig, None)
        if est is not None:
            self._bytes -= est

    # ------------------------------------------------------------- verdicts
    def get_verdict(self, sig: tuple, run_dynamic: bool) -> Optional[SafetyVerdict]:
        found = self._verdicts.get((sig, run_dynamic))
        self._note("verdict", "hit" if found is not None else "miss")
        if found is not None:
            self._touch(sig)
        return found

    def replayed_verdict(
        self, sig: tuple, run_dynamic: bool
    ) -> Optional[SafetyVerdict]:
        """The memoized ``cached=True`` variant of a stored verdict.

        Steady-state replays append one verdict per launch to the safety
        log; building the flagged copy once (instead of a fresh
        ``dataclasses.replace`` per replay) keeps the log's growth to one
        shared pointer per launch.
        """
        key = (sig, run_dynamic)
        found = self._replayed.get(key)
        if found is None:
            base = self._verdicts.get(key)
            self._note("verdict", "hit" if base is not None else "miss")
            if base is None:
                return None
            found = replace(base, cached=True)
            self._replayed[key] = found
            self._touch(sig)
        else:
            self._note("verdict", "hit")
            self._touch(sig)
        return found

    def put_verdict(self, sig: tuple, run_dynamic: bool, verdict: SafetyVerdict):
        self._verdicts[(sig, run_dynamic)] = verdict
        self._account(sig, verdict)
        self._note("verdict", "stored")

    # ------------------------------------------------------------ expansion
    def get_expansion(self, sig: tuple) -> Optional[ExpansionTemplate]:
        found = self._expansions.get(sig)
        self._note("expansion", "hit" if found is not None else "miss")
        if found is not None:
            self._touch(sig)
        return found

    def put_expansion(self, sig: tuple, template: ExpansionTemplate):
        self._expansions[sig] = template
        self._account(sig, template)
        self._note("expansion", "stored")

    # ------------------------------------------------------------- physical
    def get_physical(self, sig: tuple) -> Optional[DependenceTemplate]:
        found = self._physical.get(sig)
        self._note("physical", "hit" if found is not None else "miss")
        if found is not None:
            self._touch(sig)
        return found

    def put_physical(self, sig: tuple, template: DependenceTemplate):
        self._physical[sig] = template
        self._account(sig, template)
        self._note("physical", "stored")

    def drop_physical_for(self, sig: tuple) -> bool:
        dropped = self._physical.pop(sig, None) is not None
        if dropped:
            self._note("physical", "dropped")
        return dropped

    def drop_physical(self) -> int:
        """Drop every physical template (trace break); returns the count."""
        n = len(self._physical)
        self._physical.clear()
        return n

    # ---------------------------------------------------------------- poison
    def poison_signature(self, sig: tuple) -> int:
        """Drop every memoized layer for one signature (poisoned launch).

        A launch that was abandoned mid-flight may have left partial
        effects, so nothing recorded under its signature — verdicts,
        expansion, dependence template — can be trusted for a reissue.
        Returns how many entries were dropped.
        """
        n = 0
        for run_dynamic in (True, False):
            if self._verdicts.pop((sig, run_dynamic), None) is not None:
                n += 1
            self._replayed.pop((sig, run_dynamic), None)
        if self._expansions.pop(sig, None) is not None:
            n += 1
        if self._physical.pop(sig, None) is not None:
            n += 1
        self._forget(sig)
        if n:
            self._note("poison", "dropped")
        return n

    # ----------------------------------------------------------- wholesale
    def clear(self) -> int:
        """Drop everything; returns how many entries were dropped."""
        n = (
            len(self._verdicts)
            + len(self._expansions)
            + len(self._physical)
            + self.check_memo.clear()
        )
        self._verdicts.clear()
        self._replayed.clear()
        self._expansions.clear()
        self._physical.clear()
        self._lru.clear()
        self._bytes = 0
        return n
