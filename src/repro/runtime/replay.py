"""Launch-replay cache: memoized per-launch analysis (ROADMAP hot path).

Iterative workloads reissue the *same* index launch every timestep, and the
Section-5 pipeline work for it is amortizable.  This module groups the
memoization layers, all keyed by the runtime's ``_launch_signature`` —
(task uid, domain, per-requirement (partition uid, functor, privilege)):

1. **Safety verdicts** (:meth:`LaunchReplayCache.get_verdict`): the full
   hybrid static/dynamic :class:`~repro.core.safety.SafetyVerdict` of §3–§4
   is a pure function of the signature, so repeated issues reuse it whole.
2. **Dynamic check results** (:class:`DynamicCheckMemo`): the Listing-3
   bitmask checks are pure in (domain, functors+modes, color bounds) — a
   strictly *coarser* key than the launch signature — so even distinct
   launches sharing a functor/domain pair skip re-evaluation.
3. **Expansion templates** (:class:`ExpansionTemplate`): the per-point
   concrete requirements, dependence-analysis access triples, and
   :class:`~repro.runtime.task.PhysicalRegion` views produced by
   ``launch.point_task(point)`` — the object churn happens once per
   distinct launch, not once per issue.
4. **Physical dependence templates**
   (:class:`~repro.runtime.physical.DependenceTemplate`): recorded on a
   trace-validated replay and re-stamped with fresh task ids on later
   replays; dropped whenever a trace breaks or anything invalidates.

Layers 1–3 are context-free (valid whenever the signature matches); layer 4
depends on the analyzer's state and is therefore both gated on trace
validation and self-validating (see :mod:`repro.runtime.physical`).

The sharding/slicing memos live with their subsystems
(:class:`~repro.runtime.mapper.ShardingCache`,
:class:`~repro.runtime.distribution.SlicingCache`); the runtime's
``invalidate_analysis_cache`` clears all of them together.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.checks import CheckResult, dynamic_cross_check
from repro.core.launch import IndexLaunch, RegionRequirement, TaskLaunch
from repro.core.safety import SafetyVerdict
from repro.runtime.physical import DependenceTemplate
from repro.runtime.task import PhysicalRegion

__all__ = ["DynamicCheckMemo", "PointPlan", "ExpansionTemplate", "LaunchReplayCache"]


class DynamicCheckMemo:
    """Memoizes :func:`~repro.core.checks.dynamic_cross_check` results.

    Keyed by (domain, ((functor description, mode), ...), color bounds):
    everything the check's outcome depends on, and nothing tied to a
    particular launch.  The memoized :class:`CheckResult` carries the
    evaluation count the original run paid, so verdicts assembled from
    memoized checks report the same ``check_evaluations`` as fresh ones.
    """

    def __init__(self):
        self._cache: Dict[tuple, CheckResult] = {}
        self.hits = 0
        self.misses = 0
        #: optional (functor, points) -> values evaluator replacing
        #: ``functor.apply_batch`` — exact-preserving by contract (the
        #: parallel backend installs its chunked worker-pool sweep here).
        self.batch_evaluator = None
        #: optional :class:`~repro.runtime.kernels.CheckKernelCache`
        #: delegated to on memo misses (``RuntimeConfig.kernels``): a
        #: process-wide store of compiled check verdicts that outlives this
        #: memo's clears and serves affine constant verdicts without a
        #: sweep.  None runs the plain vectorized check.
        self.kernels = None

    def clear(self) -> int:
        n = len(self._cache)
        self._cache.clear()
        return n

    def run(self, domain, args, bounds, use_numpy: bool = True) -> CheckResult:
        """Drop-in for ``dynamic_cross_check`` (see ``check_memo`` in
        :func:`~repro.core.safety.analyze_launch_safety`)."""
        key = (
            domain,
            tuple((functor.describe(), mode) for functor, mode in args),
            bounds,
            use_numpy,
        )
        found = self._cache.get(key)
        if found is not None:
            self.hits += 1
            return found
        self.misses += 1
        if self.kernels is not None:
            result = self.kernels.run(
                domain, args, bounds, use_numpy=use_numpy,
                apply_batch=self.batch_evaluator,
            )
        else:
            result = dynamic_cross_check(
                domain, args, bounds, use_numpy=use_numpy,
                apply_batch=self.batch_evaluator,
            )
        self._cache[key] = result
        return result


@dataclass
class PointPlan:
    """Everything reusable about one point task of a cached launch."""

    task_launch: TaskLaunch
    requirements: List[RegionRequirement]
    accesses: List[tuple]  # (subregion, privilege, fields) for the analyzer
    regions: List[PhysicalRegion]


@dataclass
class ExpansionTemplate:
    """Memoized ``launch.point_task`` expansion for one launch signature.

    The concrete requirements depend only on the signature (partition,
    functor, domain).  The cached :class:`TaskLaunch` objects additionally
    bake in the broadcast ``args``, so they are reused only while the
    reissued launch carries identical args and no per-point argument map;
    otherwise fresh ``TaskLaunch`` objects are built from the cached
    requirements (still skipping every ``req.project`` call).
    """

    plans: Dict[tuple, PointPlan] = field(default_factory=dict)
    base_args: tuple = ()
    had_point_args: bool = False
    #: one-slot ordered plan-list arena (hot-path engine, layer 3): the
    #: (node, plan) list for one distribution assignment, reusable across
    #: replays while the template itself is reusable and the assignment
    #: object is the same (the sharding cache returns a stable dict per
    #: (mapper, domain, nodes), so identity is the validity token).
    plan_list_key: Optional[object] = field(default=None, repr=False)
    plan_list: Optional[list] = field(default=None, repr=False)

    def reusable_for(self, launch: IndexLaunch) -> bool:
        return (
            not self.had_point_args
            and launch.point_args is None
            and launch.args == self.base_args
        )

    def ordered_plans(self, launch: IndexLaunch, assignment) -> Optional[list]:
        """The cached [(node, PointPlan)] list for ``assignment``, or None.

        Only valid when the baked-in TaskLaunch objects are reusable as-is;
        callers build (and may :meth:`store_plans`) otherwise.
        """
        if self.plan_list_key is assignment and self.reusable_for(launch):
            return self.plan_list
        return None

    def store_plans(self, launch: IndexLaunch, assignment, plans: list) -> None:
        if self.reusable_for(launch):
            self.plan_list_key = assignment
            self.plan_list = plans

    def point_plan(self, launch: IndexLaunch, point) -> PointPlan:
        """The plan for ``point``, rebuilding the TaskLaunch if args moved."""
        plan = self.plans[tuple(point)]
        if self.reusable_for(launch):
            return plan
        extra = (
            launch.point_args.get(plan.task_launch.point)
            if launch.point_args is not None
            else ()
        )
        fresh = TaskLaunch(
            task=launch.task,
            requirements=plan.requirements,
            args=launch.args + extra,
            point=plan.task_launch.point,
            parent=launch,
        )
        return PointPlan(fresh, plan.requirements, plan.accesses, plan.regions)


class LaunchReplayCache:
    """The per-runtime store for all launch-keyed memoization layers."""

    def __init__(self, profiler=None):
        self._verdicts: Dict[tuple, SafetyVerdict] = {}
        self._replayed: Dict[tuple, SafetyVerdict] = {}
        self._expansions: Dict[tuple, ExpansionTemplate] = {}
        self._physical: Dict[tuple, DependenceTemplate] = {}
        self.check_memo = DynamicCheckMemo()
        self._profiler = profiler

    def _note(self, layer: str, outcome: str) -> None:
        prof = self._profiler
        if prof is not None and prof.enabled:
            prof.count("cache.lookups", 1.0, layer=layer, outcome=outcome)

    # ------------------------------------------------------------- verdicts
    def get_verdict(self, sig: tuple, run_dynamic: bool) -> Optional[SafetyVerdict]:
        found = self._verdicts.get((sig, run_dynamic))
        self._note("verdict", "hit" if found is not None else "miss")
        return found

    def replayed_verdict(
        self, sig: tuple, run_dynamic: bool
    ) -> Optional[SafetyVerdict]:
        """The memoized ``cached=True`` variant of a stored verdict.

        Steady-state replays append one verdict per launch to the safety
        log; building the flagged copy once (instead of a fresh
        ``dataclasses.replace`` per replay) keeps the log's growth to one
        shared pointer per launch.
        """
        key = (sig, run_dynamic)
        found = self._replayed.get(key)
        if found is None:
            base = self._verdicts.get(key)
            self._note("verdict", "hit" if base is not None else "miss")
            if base is None:
                return None
            found = replace(base, cached=True)
            self._replayed[key] = found
        else:
            self._note("verdict", "hit")
        return found

    def put_verdict(self, sig: tuple, run_dynamic: bool, verdict: SafetyVerdict):
        self._verdicts[(sig, run_dynamic)] = verdict
        self._note("verdict", "stored")

    # ------------------------------------------------------------ expansion
    def get_expansion(self, sig: tuple) -> Optional[ExpansionTemplate]:
        found = self._expansions.get(sig)
        self._note("expansion", "hit" if found is not None else "miss")
        return found

    def put_expansion(self, sig: tuple, template: ExpansionTemplate):
        self._expansions[sig] = template
        self._note("expansion", "stored")

    # ------------------------------------------------------------- physical
    def get_physical(self, sig: tuple) -> Optional[DependenceTemplate]:
        found = self._physical.get(sig)
        self._note("physical", "hit" if found is not None else "miss")
        return found

    def put_physical(self, sig: tuple, template: DependenceTemplate):
        self._physical[sig] = template
        self._note("physical", "stored")

    def drop_physical_for(self, sig: tuple) -> bool:
        dropped = self._physical.pop(sig, None) is not None
        if dropped:
            self._note("physical", "dropped")
        return dropped

    def drop_physical(self) -> int:
        """Drop every physical template (trace break); returns the count."""
        n = len(self._physical)
        self._physical.clear()
        return n

    # ---------------------------------------------------------------- poison
    def poison_signature(self, sig: tuple) -> int:
        """Drop every memoized layer for one signature (poisoned launch).

        A launch that was abandoned mid-flight may have left partial
        effects, so nothing recorded under its signature — verdicts,
        expansion, dependence template — can be trusted for a reissue.
        Returns how many entries were dropped.
        """
        n = 0
        for run_dynamic in (True, False):
            if self._verdicts.pop((sig, run_dynamic), None) is not None:
                n += 1
            self._replayed.pop((sig, run_dynamic), None)
        if self._expansions.pop(sig, None) is not None:
            n += 1
        if self._physical.pop(sig, None) is not None:
            n += 1
        if n:
            self._note("poison", "dropped")
        return n

    # ----------------------------------------------------------- wholesale
    def clear(self) -> int:
        """Drop everything; returns how many entries were dropped."""
        n = (
            len(self._verdicts)
            + len(self._expansions)
            + len(self._physical)
            + self.check_memo.clear()
        )
        self._verdicts.clear()
        self._replayed.clear()
        self._expansions.clear()
        self._physical.clear()
        return n
