"""Distribution: assigning tasks to nodes (Section 5, stage 3).

Two mechanisms, matching Legion:

* **DCR**: every node evaluates the (pure, memoizable) sharding functor and
  keeps only its local points — O(|D|_local) work, zero communication.
* **No DCR**: the owner node applies the *slicing functor* recursively,
  producing a binary tree of slices that is scattered across the machine in
  O(log |D|) steps.  Each slice carries the fixed-size index-launch
  representation with a restricted sub-domain; expansion into individual
  tasks happens only at the destination.

:func:`build_slices` returns both the final slices and the tree's transfer
list so the machine model can charge communication, and tests can verify
the O(log) depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.domain import Domain, Point
from repro.runtime.mapper import Mapper

__all__ = ["Slice", "SliceTransfer", "SlicingResult", "build_slices", "shard_points"]


@dataclass
class Slice:
    """A contiguous chunk of a launch domain bound for one node."""

    points: List[Point]
    node: int
    depth: int  # depth in the broadcast tree at which this slice was created


@dataclass(frozen=True)
class SliceTransfer:
    """One slice hop between nodes in the broadcast tree."""

    src_node: int
    dst_node: int
    depth: int
    n_points: int  # points *represented* (the message itself is O(1))


@dataclass
class SlicingResult:
    """Output of recursive slicing for one index launch."""

    slices: List[Slice]
    transfers: List[SliceTransfer]
    max_depth: int

    @property
    def n_messages(self) -> int:
        return len(self.transfers)


def shard_points(
    mapper: Mapper, domain: Domain, n_nodes: int
) -> Dict[int, List[Point]]:
    """DCR path: node -> locally owned points via the sharding functor."""
    assignment: Dict[int, List[Point]] = {}
    for p in domain:
        node = mapper.shard(p, domain, n_nodes)
        assignment.setdefault(node, []).append(p)
    return assignment


def build_slices(
    mapper: Mapper,
    domain: Domain,
    n_nodes: int,
    origin_node: int = 0,
) -> SlicingResult:
    """Non-DCR path: recursively slice ``domain`` into per-node chunks.

    Splits the point list in half until every point in a slice shards to the
    same node, moving slices toward their destinations level by level.  The
    resulting tree has O(log |D|) depth and each hop forwards a fixed-size
    message (slices are unexpanded index-launch descriptors).
    """
    points = list(domain)
    transfers: List[SliceTransfer] = []
    slices: List[Slice] = []
    max_depth = 0

    def target(pts: Sequence[Point]) -> int:
        return mapper.shard(pts[0], domain, n_nodes)

    def recurse(pts: List[Point], holder: int, depth: int) -> None:
        nonlocal max_depth
        max_depth = max(max_depth, depth)
        if not pts:
            return
        nodes = {mapper.shard(p, domain, n_nodes) for p in pts}
        if len(nodes) == 1:
            dst = nodes.pop()
            if dst != holder:
                transfers.append(SliceTransfer(holder, dst, depth, len(pts)))
            slices.append(Slice(pts, dst, depth))
            return
        split = mapper.slice_domain(pts, domain, n_nodes)
        for sub_pts, hint in split:
            if not sub_pts:
                continue
            # The slice is forwarded toward the hinted node (one hop per
            # tree level); further splitting happens there.
            next_holder = hint
            if next_holder != holder:
                transfers.append(
                    SliceTransfer(holder, next_holder, depth, len(sub_pts))
                )
            recurse(sub_pts, next_holder, depth + 1)

    recurse(points, origin_node, 0)
    return SlicingResult(slices=slices, transfers=transfers, max_depth=max_depth)
