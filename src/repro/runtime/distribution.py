"""Distribution: assigning tasks to nodes (Section 5, stage 3).

Two mechanisms, matching Legion:

* **DCR**: every node evaluates the (pure, memoizable) sharding functor and
  keeps only its local points — O(|D|_local) work, zero communication.
* **No DCR**: the owner node applies the *slicing functor* recursively,
  producing a binary tree of slices that is scattered across the machine in
  O(log |D|) steps.  Each slice carries the fixed-size index-launch
  representation with a restricted sub-domain; expansion into individual
  tasks happens only at the destination.

:func:`build_slices` returns both the final slices and the tree's transfer
list so the machine model can charge communication, and tests can verify
the O(log) depth.  Shard targets are evaluated once for the whole domain
(one batched :meth:`Mapper.shard_batch` call) and threaded through the
recursion, instead of re-invoking the sharding functor for every point at
every tree level.  Slicing is pure in (mapper, domain, n_nodes, origin), so
:class:`SlicingCache` memoizes whole results the same way sharding maps are
memoized on the DCR path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.domain import Domain, Point
from repro.runtime.mapper import Mapper

__all__ = [
    "Slice",
    "SliceTransfer",
    "SlicingResult",
    "SlicingCache",
    "build_slices",
    "shard_points",
]


@dataclass
class Slice:
    """A contiguous chunk of a launch domain bound for one node."""

    points: List[Point]
    node: int
    depth: int  # depth in the broadcast tree at which this slice was created


@dataclass(frozen=True)
class SliceTransfer:
    """One slice hop between nodes in the broadcast tree."""

    src_node: int
    dst_node: int
    depth: int
    n_points: int  # points *represented* (the message itself is O(1))


@dataclass
class SlicingResult:
    """Output of recursive slicing for one index launch."""

    slices: List[Slice]
    transfers: List[SliceTransfer]
    max_depth: int

    @property
    def n_messages(self) -> int:
        return len(self.transfers)


def shard_points(
    mapper: Mapper, domain: Domain, n_nodes: int
) -> Dict[int, List[Point]]:
    """DCR path: node -> locally owned points via the sharding functor."""
    assignment: Dict[int, List[Point]] = {}
    points = list(domain)
    if points:
        nodes = mapper.shard_batch(domain.point_array(), domain, n_nodes)
        for p, node in zip(points, nodes):
            assignment.setdefault(int(node), []).append(p)
    return assignment


def build_slices(
    mapper: Mapper,
    domain: Domain,
    n_nodes: int,
    origin_node: int = 0,
) -> SlicingResult:
    """Non-DCR path: recursively slice ``domain`` into per-node chunks.

    Splits the point list in half until every point in a slice shards to the
    same node, moving slices toward their destinations level by level.  The
    resulting tree has O(log |D|) depth and each hop forwards a fixed-size
    message (slices are unexpanded index-launch descriptors).
    """
    points = list(domain)
    transfers: List[SliceTransfer] = []
    slices: List[Slice] = []
    max_depth = 0

    # One batched functor evaluation for the whole domain; the recursion
    # below only does set arithmetic on the precomputed targets.
    shard_of: Dict[Point, int] = {}
    if points:
        targets = mapper.shard_batch(domain.point_array(), domain, n_nodes)
        shard_of = {p: int(node) for p, node in zip(points, targets)}

    def recurse(pts: List[Point], holder: int, depth: int) -> None:
        nonlocal max_depth
        max_depth = max(max_depth, depth)
        if not pts:
            return
        nodes = {shard_of[p] for p in pts}
        if len(nodes) == 1:
            dst = nodes.pop()
            if dst != holder:
                transfers.append(SliceTransfer(holder, dst, depth, len(pts)))
            slices.append(Slice(pts, dst, depth))
            return
        split = mapper.slice_domain(pts, domain, n_nodes)
        for sub_pts, hint in split:
            if not sub_pts:
                continue
            # The slice is forwarded toward the hinted node (one hop per
            # tree level); further splitting happens there.
            next_holder = hint
            if next_holder != holder:
                transfers.append(
                    SliceTransfer(holder, next_holder, depth, len(sub_pts))
                )
            recurse(sub_pts, next_holder, depth + 1)

    recurse(points, origin_node, 0)
    return SlicingResult(slices=slices, transfers=transfers, max_depth=max_depth)


class SlicingCache:
    """Memoizes :func:`build_slices` per (mapper, domain, n_nodes, origin).

    Slicing functors, like sharding functors, are required to be pure, so a
    launch domain slices identically every time it is issued.  The cached
    :class:`SlicingResult` is shared — callers must not mutate it.
    """

    def __init__(self, profiler=None):
        self._cache: Dict[Tuple[int, Domain, int, int], SlicingResult] = {}
        self.hits = 0
        self.misses = 0
        self._profiler = profiler

    def clear(self) -> int:
        """Drop all memoized slicings; returns how many were dropped."""
        n = len(self._cache)
        self._cache.clear()
        return n

    def slice(
        self, mapper: Mapper, domain: Domain, n_nodes: int, origin_node: int = 0
    ) -> SlicingResult:
        key = (id(mapper), domain, n_nodes, origin_node)
        prof = self._profiler
        found = self._cache.get(key)
        if found is not None:
            self.hits += 1
            if prof is not None and prof.enabled:
                prof.count("cache.slicing", 1.0, outcome="hit")
            return found
        self.misses += 1
        if prof is not None and prof.enabled:
            prof.count("cache.slicing", 1.0, outcome="miss")
        result = build_slices(mapper, domain, n_nodes, origin_node)
        self._cache[key] = result
        return result
