"""Mappers: user-controlled performance decisions (Section 5).

"Distribution in Legion is entirely under the control of the end user" —
mappers choose which node runs each task.  Under DCR the relevant hook is
the *sharding functor* (point -> node, a pure function, memoized); without
DCR it is the *slicing functor*, which splits a launch domain recursively so
slices can be scattered down a broadcast tree.

Because sharding functors are pure, a whole launch domain can be sharded in
one batched evaluation: :meth:`Mapper.shard_batch` takes the ``(|D|, dim)``
point array of :meth:`repro.core.domain.Domain.point_array` and returns one
node id per point.  The built-in mappers implement it with vectorized numpy
arithmetic; custom mappers inherit a per-point fallback that preserves the
pure-``shard`` contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.domain import Domain, Point

__all__ = ["Mapper", "DefaultMapper", "CyclicMapper", "ShardingCache"]


class Mapper:
    """Base mapper interface."""

    def shard(self, point: Point, domain: Domain, n_nodes: int) -> int:
        """Sharding functor: which node owns ``point`` of ``domain`` (DCR mode).

        Must be a pure function of its arguments.
        """
        raise NotImplementedError

    def shard_batch(
        self, points: np.ndarray, domain: Domain, n_nodes: int
    ) -> np.ndarray:
        """Vectorized sharding: node ids for a ``(n, dim)`` point array.

        Must agree elementwise with :meth:`shard`; the default evaluates the
        scalar functor per point so custom mappers only need to override it
        when they want the numpy fast path.
        """
        return np.fromiter(
            (self.shard(Point(*row), domain, n_nodes) for row in points),
            dtype=np.int64,
            count=len(points),
        )

    def slice_domain(
        self, points: Sequence[Point], domain: Domain, n_nodes: int
    ) -> List[Tuple[List[Point], int]]:
        """Slicing functor: split ``points`` into (sub-slice, target node) pairs.

        The default splits the point list in half repeatedly; the runtime
        applies this recursively, producing a binary broadcast tree of depth
        O(log |D|).  Returning a single-element list stops recursion.
        """
        if len(points) <= 1 or n_nodes <= 1:
            return [(list(points), self.shard(points[0], domain, n_nodes))] if points else []
        mid = (len(points) + 1) // 2
        return [
            (list(points[:mid]), self.shard(points[0], domain, n_nodes)),
            (list(points[mid:]), self.shard(points[mid], domain, n_nodes)),
        ]

    def select_node(self, task_launch, n_nodes: int) -> int:
        """Node for a single (non-index) task launch."""
        if task_launch.point is not None and n_nodes > 0:
            return hash(tuple(task_launch.point)) % n_nodes
        return 0


class DefaultMapper(Mapper):
    """Block sharding: contiguous ranges of the (linearized) domain per node.

    This matches the common idiom of one task per GPU with neighbouring
    tasks placed on the same node.
    """

    def shard(self, point: Point, domain: Domain, n_nodes: int) -> int:
        if n_nodes <= 1:
            return 0
        volume = domain.volume
        if volume == 0:
            return 0
        index = domain.bounds.linearize(point)
        total = domain.bounds.volume
        # Scale by bounding-box position: exact block split for dense
        # domains, approximate (but pure and deterministic) for sparse ones.
        node = index * n_nodes // total
        return min(node, n_nodes - 1)

    def shard_batch(
        self, points: np.ndarray, domain: Domain, n_nodes: int
    ) -> np.ndarray:
        if n_nodes <= 1 or domain.volume == 0 or len(points) == 0:
            return np.zeros(len(points), dtype=np.int64)
        index = domain.bounds.linearize_batch(points)
        total = domain.bounds.volume
        return np.minimum(index * n_nodes // total, n_nodes - 1)

    def select_node(self, task_launch, n_nodes: int) -> int:
        if task_launch.point is not None and n_nodes > 1:
            parent = task_launch.parent
            if parent is not None:
                return self.shard(task_launch.point, parent.domain, n_nodes)
        return 0


class CyclicMapper(Mapper):
    """Round-robin sharding: point ``i`` goes to node ``i mod n`` (load balance
    for irregular task costs, at the price of locality)."""

    def shard(self, point: Point, domain: Domain, n_nodes: int) -> int:
        if n_nodes <= 1:
            return 0
        return domain.bounds.linearize(point) % n_nodes

    def shard_batch(
        self, points: np.ndarray, domain: Domain, n_nodes: int
    ) -> np.ndarray:
        if n_nodes <= 1 or len(points) == 0:
            return np.zeros(len(points), dtype=np.int64)
        return domain.bounds.linearize_batch(points) % n_nodes


class ShardingCache:
    """Memoizes sharding decisions per (mapper, domain, n_nodes).

    Sharding functors are pure, so Legion memoizes them; we do the same and
    expose hit statistics so tests can assert the memoization happens.  The
    miss path evaluates the whole domain in one :meth:`Mapper.shard_batch`
    call instead of |D| scalar ``shard`` calls.
    """

    def __init__(self):
        self._cache: Dict[Tuple[int, Domain, int], Dict[int, List[Point]]] = {}
        self.hits = 0
        self.misses = 0

    def clear(self) -> int:
        """Drop all memoized assignments; returns how many were dropped."""
        n = len(self._cache)
        self._cache.clear()
        return n

    def shard_map(
        self, mapper: Mapper, domain: Domain, n_nodes: int
    ) -> Dict[int, List[Point]]:
        """Node -> locally-owned points, computed once per distinct launch shape."""
        key = (id(mapper), domain, n_nodes)
        found = self._cache.get(key)
        if found is not None:
            self.hits += 1
            return found
        self.misses += 1
        points = list(domain)
        assignment: Dict[int, List[Point]] = {}
        if points:
            nodes = mapper.shard_batch(domain.point_array(), domain, n_nodes)
            bad = (nodes < 0) | (nodes >= max(n_nodes, 1))
            if np.any(bad):
                pos = int(np.nonzero(bad)[0][0])
                raise ValueError(
                    f"sharding functor sent {points[pos]} to node "
                    f"{int(nodes[pos])} of {n_nodes}"
                )
            for p, node in zip(points, nodes):
                assignment.setdefault(int(node), []).append(p)
        self._cache[key] = assignment
        return assignment
