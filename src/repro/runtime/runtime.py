"""The runtime facade: issue tasks and index launches through the pipeline.

This is the functional (in-process) backend: task bodies really execute on
numpy-backed regions, in program order, with intra-launch order free (and
optionally shuffled, to empirically validate non-interference).  The full
pipeline of Section 5 runs for every operation — issuance, logical
analysis, distribution, physical analysis — updating
:class:`~repro.runtime.pipeline.PipelineStats` so that tests and the
Figure 2/3 reproduction can observe representation sizes and work counts at
every stage under all four {DCR, No DCR} x {IDX, No IDX} configurations.

Timing is *not* measured here; the machine model (:mod:`repro.machine`)
replays the same pipeline against calibrated costs for the scaling studies.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.domain import Domain, Point, Rect, coerce_point
from repro.obs.profiler import NULL_PROFILER
from repro.core.launch import ArgumentMap, IndexLaunch, RegionRequirement, TaskLaunch
from repro.core.projection import IdentityFunctor, ProjectionFunctor
from repro.core.safety import SafetyMethod, SafetyVerdict, analyze_launch_safety
from repro.data.collection import Region, Subregion
from repro.data.fields import FieldSpace
from repro.data.partition import Partition
from repro.data.privileges import Privilege
from repro.fault.inject import FaultInjector
from repro.fault.plan import InjectedFaultError, RetryPolicy
from repro.runtime.distribution import SlicingCache, build_slices, shard_points
from repro.runtime.futures import Future, FutureMap, TaskPoisonedError
from repro.runtime.logical import LogicalAnalyzer
from repro.runtime.mapper import DefaultMapper, Mapper, ShardingCache
from repro.exec.backend import resolve_backend
from repro.exec.pool import resolve_workers
from repro.runtime.physical import PhysicalAnalyzer
from repro.runtime.pipeline import PipelineStats, Stage
from repro.runtime.replay import LaunchReplayCache
from repro.runtime.task import PhysicalRegion, Task, TaskContext
from repro.runtime.tracing import TraceRecorder

__all__ = ["Runtime", "RuntimeConfig"]

# A requirement argument to index_launch: a Partition (identity functor) or
# a (Partition, ProjectionFunctor) pair.
ReqSpec = Union[Partition, Tuple[Partition, ProjectionFunctor]]


def _resolve_budget(configured: Optional[int], env: str) -> Optional[int]:
    """Effective cache budget: explicit config wins, else the env knob;
    ``None``/unset/empty means unbounded (the batch-mode default)."""
    if configured is not None:
        return int(configured)
    import os

    raw = os.environ.get(env, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{env} must be an integer, got {raw!r}") from None
    if value < 1:
        raise ValueError(f"{env} must be >= 1, got {value}")
    return value


@dataclass
class RuntimeConfig:
    """The evaluation's configuration axes plus testing knobs.

    Attributes:
        n_nodes: simulated node count (data placement; functional results
            are node-count independent).
        dcr: dynamic control replication [6] — replicated issuance and
            sharding-functor distribution vs centralized control with
            slicing/broadcast distribution.
        index_launches: the paper's optimization; when False, every forall
            is eagerly expanded into individual task launches at issuance
            (the No IDX configurations).
        tracing: Legion's trace memoization [20]; with tracing on and DCR
            off, index launches are expanded *before* distribution
            (Section 6.2.1's interference effect).
        bulk_tracing: the paper's stated future work — tracing that
            "works with bulk task launches".  When True, traces record
            launch-level signatures, so index launches stay unexpanded
            through distribution even without DCR, removing the
            interference of Section 6.2.1 while keeping trace replay.
        dynamic_checks: run the Listing-3 checks for statically-undecided
            launches.  Disabling them corresponds to the paper's "no check"
            configuration: undecided launches are assumed valid.
        analysis_cache: the launch-replay cache — memoize safety verdicts,
            dynamic-check results, expansion templates, and (on validated
            trace replays) physical dependence templates across repeated
            issues of an identical launch.  Semantics-preserving; off
            recomputes everything per issue.
        validate_safety: run the safety analysis at all (both static and
            dynamic).  Off means every launch is trusted.
        shuffle_intra_launch: execute the point tasks of verified launches
            in random order — a testing feature that empirically exercises
            the non-interference guarantee.
        seed: RNG seed for the shuffle.
        workers: per-node pipeline worker processes.  ``None`` (default)
            reads env ``REPRO_WORKERS``; 1 selects the serial backend;
            >= 2 fans the per-node tail of verified index launches across
            a persistent process pool (see :mod:`repro.exec`), with every
            observable byte-identical to serial.
        profiler: optional :class:`~repro.obs.profiler.Profiler`.  When
            set (and enabled), every pipeline phase of every operation
            emits structured spans and metrics (see
            :mod:`repro.obs`); when ``None`` (the default) the runtime
            uses the shared no-op profiler and pays nothing.  Purely
            observational: results and :class:`PipelineStats` are
            identical either way.
        fault_plan: optional :class:`~repro.fault.FaultPlan` — seeded,
            deterministic fault injection (kill/hang/corrupt a worker,
            shard, or point task at a chosen phase).  Recovered faults are
            byte-invisible; unrecovered ones poison the launch (see
            :class:`~repro.runtime.futures.TaskPoisonedError` and
            ``docs/fault-tolerance.md``).
        retry: optional :class:`~repro.fault.RetryPolicy` capping the
            parallel backend's recovery ladder (same-worker retries,
            worker respawns, backoff, shard timeout); ``None`` uses the
            defaults.
        fault_schedule: optional :class:`~repro.fault.FaultSchedule` —
            attempt-ordinal-keyed deterministic fault placement, used by
            the formal conformance harness to replay model-checker traces
            against the real executor.  Composes with ``fault_plan``.
        kernels: hot-path engine layer 3 (see ``docs/hot-path.md``) —
            compile steady-state dependence replays into slot programs and
            dynamic checks into constant-verdict kernels.  Purely an
            execution strategy: results, stats, and traces are
            byte-identical either way.
        batched_commit: hot-path engine layer 2 — apply shard write-backs
            and recorded reductions at launch granularity (one vectorized
            scatter per (region, field)) instead of per task at parallel
            commit.  Byte-identical by the verified-launch disjointness
            argument (see ``docs/hot-path.md``).
        shm: hot-path engine layer 1 — ship region footprint bytes to
            workers through per-pool ``multiprocessing.shared_memory``
            arenas instead of pickled arrays.  ``None`` (default) reads
            env ``REPRO_SHM`` (unset/1 = on, 0 = off); pickle transport
            remains the automatic fallback whenever a buffer or platform
            cannot use shm.
        transport: how the parallel backend reaches its workers.
            ``"local"`` is the fork ``ProcessPoolExecutor`` path;
            ``"pipe"`` forks persistent workers wired over raw ``os.pipe``
            pairs speaking the framed wire protocol, with a single
            ``selectors``-based collector instead of one executor wake per
            submit; ``"socket"`` runs standalone worker processes over
            framed loopback sockets standing in for cluster nodes (shm
            degrades to wire payloads; see
            ``docs/distributed-transport.md``).  ``None`` (default) reads
            env ``REPRO_TRANSPORT`` (default ``local``).  Byte-identical
            results on every transport.
        cache_entry_budget: LRU entry budget for the launch-replay cache
            and the dynamic-check memo (each counted separately): at most
            this many distinct launch signatures / check keys stay
            memoized, least-recently-used evicted first.  ``None``
            (default) reads env ``REPRO_CACHE_ENTRIES`` (unset =
            unbounded, the batch-mode behavior).  Eviction is
            semantics-free: an evicted signature behaves exactly like a
            cold miss (byte-identical results).
        cache_byte_budget: like ``cache_entry_budget`` but as an estimated
            resident-byte cap (see ``replay.estimate_bytes``); ``None``
            reads env ``REPRO_CACHE_BYTES``.  The two budgets compose
            (either going over triggers eviction).
        plan_memo: parallel-backend shard-plan memoization — on the replay
            path, reuse the memoized ``ShardPlan`` skeleton (and, in shm
            steady state, its pickled blob) per (signature, shard) instead
            of rebuilding projections/templates every issue.  Purely an
            execution strategy: results, stats, and traces are
            byte-identical either way.  ``None`` (default) reads env
            ``REPRO_PLAN_MEMO`` (unset/1 = on, 0 = off).
        pipeline_depth: parallel-backend dispatch pipelining — how many
            launches may be in flight (submitted to workers, commit
            deferred) at once.  Depth 1 (default) submits and collects
            each launch synchronously, exactly the pre-pipelining
            behavior; depth ``d > 1`` lets the runtime issue launch N+1's
            shards before launch N's results are collected whenever their
            region footprints are disjoint from every pending launch's
            uncommitted writes.  Commits stay strictly FIFO, so results,
            stats, and traces are byte-identical at every depth.  ``None``
            reads env ``REPRO_PIPELINE_DEPTH`` (default 1).
    """

    n_nodes: int = 1
    dcr: bool = True
    index_launches: bool = True
    tracing: bool = True
    bulk_tracing: bool = False
    dynamic_checks: bool = True
    analysis_cache: bool = True
    validate_safety: bool = True
    shuffle_intra_launch: bool = False
    seed: int = 0
    workers: Optional[int] = None
    profiler: Optional[Any] = None
    fault_plan: Optional[Any] = None
    retry: Optional[Any] = None
    fault_schedule: Optional[Any] = None
    kernels: bool = True
    batched_commit: bool = True
    shm: Optional[bool] = None
    transport: Optional[str] = None
    pipeline_depth: Optional[int] = None
    cache_entry_budget: Optional[int] = None
    cache_byte_budget: Optional[int] = None
    plan_memo: Optional[bool] = None

    def __post_init__(self):
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        for name in ("cache_entry_budget", "cache_byte_budget"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")

    @property
    def label(self) -> str:
        """The figure-legend label, e.g. ``"DCR, IDX"``."""
        return (
            f"{'DCR' if self.dcr else 'No DCR'}, "
            f"{'IDX' if self.index_launches else 'No IDX'}"
        )


class Runtime:
    """A single-process Legion-like runtime instance."""

    def __init__(
        self,
        config: Optional[RuntimeConfig] = None,
        mapper: Optional[Mapper] = None,
    ):
        self.config = config or RuntimeConfig()
        self._mapper = mapper or DefaultMapper()
        self.profiler = (
            self.config.profiler
            if self.config.profiler is not None
            else NULL_PROFILER
        )
        self.stats = PipelineStats()
        self.logical = LogicalAnalyzer(profiler=self.profiler)
        self.physical = PhysicalAnalyzer(
            profiler=self.profiler, kernels=self.config.kernels
        )
        self.tracer = TraceRecorder(profiler=self.profiler)
        self.sharding_cache = ShardingCache()
        self.slicing_cache = SlicingCache(profiler=self.profiler)
        self.replay_cache = LaunchReplayCache(
            profiler=self.profiler,
            entry_budget=_resolve_budget(
                self.config.cache_entry_budget, "REPRO_CACHE_ENTRIES"
            ),
            byte_budget=_resolve_budget(
                self.config.cache_byte_budget, "REPRO_CACHE_BYTES"
            ),
        )
        self._op_counter = itertools.count()
        self._task_counter = itertools.count()
        self._rng = random.Random(self.config.seed)
        self._regions: List[Region] = []
        self.safety_log: List[SafetyVerdict] = []
        #: optional repro.tools.graph.GraphRecorder capturing the task graph
        self.graph_recorder = None
        #: fault injection (None = no plan): per-run firing state over the
        #: config's immutable FaultPlan.
        plan = self.config.fault_plan
        schedule = self.config.fault_schedule
        if (plan is not None and plan.specs) or (
            schedule is not None and schedule.entries
        ):
            from repro.fault.plan import FaultPlan

            self.fault_injector = FaultInjector(
                plan if plan is not None else FaultPlan(), schedule
            )
        else:
            self.fault_injector = None
        self._fault_ordinal = itertools.count()
        self.retry_policy: RetryPolicy = self.config.retry or RetryPolicy()
        #: every TaskPoisonedError this runtime minted, in order.
        self.poison_log: List[TaskPoisonedError] = []
        if self.config.kernels:
            from repro.runtime.kernels import GLOBAL_CHECK_KERNELS

            self.replay_cache.check_memo.kernels = GLOBAL_CHECK_KERNELS
        self.workers = resolve_workers(self.config.workers)
        self.backend = resolve_backend(self, self.workers)
        if self.workers > 1:
            # Large dynamic checks evaluate their functor sweeps on the
            # worker pool in contiguous chunks (exact-preserving).
            self.replay_cache.check_memo.batch_evaluator = (
                self.backend.batch_evaluator
            )

    # --------------------------------------------------------------- mapper
    @property
    def mapper(self) -> Mapper:
        return self._mapper

    @mapper.setter
    def mapper(self, mapper: Mapper) -> None:
        """Swapping mappers invalidates every cached mapping decision."""
        self._mapper = mapper
        self.invalidate_analysis_cache()

    def invalidate_analysis_cache(self) -> int:
        """Flush all memoized analysis products (launch-replay cache plus
        the sharding/slicing memos).  Called automatically on mapper
        changes; call it manually after any out-of-band change that affects
        mapping or partitioning decisions.  Returns entries dropped."""
        self.backend.drain()
        dropped = (
            self.replay_cache.clear()
            + self.slicing_cache.clear()
            + self.sharding_cache.clear()
        )
        if dropped:
            self.stats.analysis_cache_invalidations += dropped
        return dropped

    def drain(self) -> None:
        """Commit every pipelined-ahead launch (``pipeline_depth > 1``).

        A barrier in the Legion sense: on return, all previously issued
        launches have executed and their results are visible in region
        storage, futures, and stats.  Reads through the runtime API
        (``Subregion.read``, ``FutureMap.get`` …) drain automatically;
        call this before inspecting region storage by other means or
        timing a quiescent point.  No-op at depth 1 or on the serial
        backend."""
        self.backend.drain()

    # ------------------------------------------------------------ resources
    def create_region(
        self,
        name: str,
        shape: Union[int, Sequence[int], Rect],
        fields: Union[FieldSpace, Dict],
    ) -> Region:
        """Create a top-level collection.

        ``shape`` may be an element count (1-D), an extents tuple (N-D), or
        an explicit :class:`Rect`.
        """
        if isinstance(shape, Rect):
            bounds = shape
        elif isinstance(shape, int):
            bounds = Rect((0,), (shape - 1,))
        else:
            bounds = Rect([0] * len(shape), [int(e) - 1 for e in shape])
        region = Region(name, bounds, fields)
        self._regions.append(region)
        return region

    # ----------------------------------------------------- fill/copy sugar
    def fill(self, target: Union[Region, Subregion], fname: str,
             value) -> Future:
        """Fill one field of a (sub)region, as a pipeline operation.

        Fills are ordinary write operations in Legion: they participate in
        dependence analysis like any task, so a fill between two launches
        correctly orders against both.
        """
        return self.execute_task(_fill_task, target, args=(fname, value))

    def copy_field(
        self,
        src: Union[Region, Subregion],
        dst: Union[Region, Subregion],
        src_field: str,
        dst_field: Optional[str] = None,
    ) -> Future:
        """Copy a field between equally-sized (sub)regions via the pipeline."""
        return self.execute_task(
            _copy_task, src, dst, args=(src_field, dst_field or src_field)
        )

    # -------------------------------------------------------------- tracing
    def begin_trace(self, trace_id: int) -> None:
        """Mark the start of a traced (repeated) operation sequence."""
        if self.config.tracing:
            self.tracer.begin(trace_id)

    def end_trace(self, trace_id: int) -> None:
        """Mark the end of a traced sequence; counts whole-trace replays.

        Strict-prefix iterations (the trace ended early but every issued op
        matched the recording) are counted in
        ``stats.trace_prefix_iterations`` and do *not* break the trace:
        their per-op replays were sound, and physical dependence templates
        stay valid — self-validation bails them to the live path if the
        shortened iteration left the analyzer in an unexpected state.
        """
        if self.config.tracing:
            broken_before = self.tracer.broken(trace_id)
            prefix_before = self.tracer.prefixes(trace_id)
            if self.tracer.end(trace_id):
                self.stats.trace_replays += 1
            elif self.tracer.prefixes(trace_id) > prefix_before:
                self.stats.trace_prefix_iterations += 1
            elif self.tracer.broken(trace_id) > broken_before:
                # The iteration diverged from the recorded trace: physical
                # dependence templates were recorded against a context that
                # no longer recurs, so drop them (the context-free layers —
                # verdicts, checks, expansion, sharding — remain valid).
                # Pipelined-ahead launches were predicted against the
                # templates about to be dropped: commit them first so
                # their cache-hit accounting matches eager dispatch.
                self.backend.drain()
                dropped = self.replay_cache.drop_physical()
                if dropped:
                    self.stats.analysis_cache_invalidations += dropped

    # ------------------------------------------------------- single launches
    def execute_task(
        self,
        task: Task,
        *region_args: Union[Region, Subregion],
        args: tuple = (),
        node: Optional[int] = None,
    ) -> Future:
        """Launch one task on concrete (sub)regions; returns its Future."""
        subregions = [
            r.root_subregion() if isinstance(r, Region) else r for r in region_args
        ]
        if len(subregions) != task.n_region_params:
            raise ValueError(
                f"task {task.name!r} declares {task.n_region_params} region "
                f"parameters, got {len(subregions)}"
            )
        requirements = [
            RegionRequirement(
                privilege=task.privileges[i],
                fields=task.fields[i] or (),
                subregion=subregions[i],
            )
            for i in range(len(subregions))
        ]
        launch = TaskLaunch(task=task, requirements=requirements, args=args)
        # Single tasks run inline in the parent, so every pipelined-ahead
        # index launch must land first (analyzer state, storage, poison).
        self.backend.drain()
        self.stats.ops_issued += 1
        self.stats.single_tasks += 1
        poison = self.physical.poison_for(
            [req.region.uid for req in requirements]
        )
        if poison is not None:
            # A region this task touches was tainted by an unrecovered
            # fault: the task never runs, its future carries the root cause.
            return self._poison_single(launch, poison)
        if self.config.tracing:
            self.tracer.observe(("single", task.uid))
        target = node if node is not None else self.mapper.select_node(
            launch, self.config.n_nodes
        )
        op_id = next(self._op_counter)
        self._pipeline_single(launch, op_id, target)
        future = Future()
        future.set(self._run_task(launch, target))
        return future

    def _pipeline_single(self, launch: TaskLaunch, op_id: int, node: int) -> None:
        prof = self.profiler
        t0 = prof.mark()
        issuers = (
            range(self.config.n_nodes) if self.config.dcr else (0,)
        )
        for n in issuers:
            self.stats.add_representation(Stage.ISSUANCE, n, 1)
            self.stats.add_representation(Stage.LOGICAL, n, 1)
        deps = self.logical.analyze_operation(
            op_id,
            [
                (req.region.uid, req.resolved_fields(), req.privilege)
                for req in launch.requirements
            ],
        )
        self.stats.logical_users = self.logical.users_processed
        self.stats.logical_dependences += len(deps)
        self.stats.add_representation(Stage.DISTRIBUTION, node, 1)
        if not self.config.dcr and node != 0:
            self.stats.slice_messages += 1
        task_id = next(self._task_counter)
        tdeps = self.physical.record_task(
            task_id,
            [
                (req.subregion, req.privilege, req.resolved_fields())
                for req in launch.requirements
            ],
        )
        self.stats.physical_dependences += len(tdeps)
        self.stats.overlap_queries = self.physical.overlap_queries
        self.stats.add_representation(Stage.PHYSICAL, node, 1)
        if prof.enabled:
            attrs = dict(task=launch.name, op=op_id, aggregate=True)
            prof.phase("issuance", Stage.ISSUANCE, t0,
                       nodes=tuple(issuers), **attrs)
            prof.phase("logical", Stage.LOGICAL, t0,
                       nodes=tuple(issuers), **attrs)
            prof.phase("distribution", Stage.DISTRIBUTION, t0,
                       node=node, **attrs)
            prof.phase("physical", Stage.PHYSICAL, t0, node=node, **attrs)
        if self.graph_recorder is not None:
            self.graph_recorder.record_op(op_id, launch.name, "task")
            self.graph_recorder.record_logical_edges(deps)
            self.graph_recorder.record_task(task_id, launch.name, op_id, node)
            self.graph_recorder.record_physical_edges(tdeps)

    # -------------------------------------------------------- index launches
    def index_launch(
        self,
        task: Task,
        domain: Union[Domain, int],
        *reqs: ReqSpec,
        args: tuple = (),
        point_args: Optional[ArgumentMap] = None,
        reduce: Optional[str] = None,
    ) -> Union[FutureMap, Future]:
        """Launch ``task`` over every point of ``domain`` — ``forall`` (§3).

        Each entry of ``reqs`` is a partition (identity projection) or a
        ``(partition, functor)`` pair, positionally matching the task's
        declared privileges.  Returns a :class:`FutureMap`, or a single
        :class:`Future` when ``reduce`` names a reduction operator.

        Under ``config.index_launches=False`` the same API runs as an
        eagerly-expanded loop of individual task launches (identical
        results, O(P) representation) — the paper's No-IDX baseline.
        """
        if isinstance(domain, int):
            domain = Domain.range(domain)
        requirements = self._build_requirements(task, reqs)
        launch = IndexLaunch(
            task=task,
            domain=domain,
            requirements=requirements,
            args=args,
            point_args=point_args,
        )
        # Before consulting poison state, land any pending launch whose
        # writes this one can observe — an uncommitted predecessor may be
        # about to taint one of these regions.
        self.backend.drain_conflicting(
            [req.region.uid for req in requirements]
        )
        poison = self.physical.poison_for(
            [req.region.uid for req in requirements]
        )
        if poison is not None:
            # Dependence-edge propagation: a region this launch touches was
            # tainted by an earlier unrecovered fault, so the launch is
            # lost too — with the *originating* failure as its diagnosis.
            fmap = self._poison_launch(launch, poison, propagated=True)
        else:
            inj = self.fault_injector
            if inj is not None:
                inj.begin_launch(next(self._fault_ordinal))
            try:
                fmap = (
                    self._issue_index_launch(launch)
                    if self.config.index_launches
                    else self._issue_expanded(launch)
                )
            except InjectedFaultError as exc:
                # Tier 4 of the recovery ladder: every cheaper tier failed
                # (or never applied); convert the injected fault into a
                # poisoned launch instead of a bare exception.  Genuine
                # application errors never take this path.
                fmap = self._poison_launch(launch, exc, propagated=False)
            finally:
                if inj is not None:
                    inj.end_launch()
        if reduce is not None:
            future = Future(label=f"{launch.name}.reduce({reduce!r})")
            if fmap.poisoned:
                try:
                    fmap.reduce(reduce)  # raises the enriched diagnostic
                except TaskPoisonedError as exc:
                    future.poison(exc)
            else:
                future.set(fmap.reduce(reduce))
            return future
        return fmap

    # Regent-style alias: ``forall(D, T, <P, f>, ...)``.
    forall = index_launch

    def _build_requirements(
        self, task: Task, reqs: Sequence[ReqSpec]
    ) -> List[RegionRequirement]:
        if len(reqs) != task.n_region_params:
            raise ValueError(
                f"task {task.name!r} declares {task.n_region_params} region "
                f"parameters, got {len(reqs)} launch arguments"
            )
        out = []
        for i, spec in enumerate(reqs):
            if isinstance(spec, Partition):
                partition, functor = spec, IdentityFunctor()
            else:
                partition, functor = spec
            out.append(
                RegionRequirement(
                    privilege=task.privileges[i],
                    fields=task.fields[i] or (),
                    partition=partition,
                    functor=functor,
                )
            )
        return out

    def _launch_signature(self, launch: IndexLaunch) -> tuple:
        return (
            launch.task.uid,
            launch.domain,
            tuple(
                (req.partition.uid, req.functor.describe(), str(req.privilege))
                for req in launch.requirements
            ),
        )

    def _issue_index_launch(self, launch: IndexLaunch) -> FutureMap:
        cfg = self.config
        prof = self.profiler
        cost = prof.costmodel if prof.enabled else None
        t_issue = prof.mark()
        self.stats.ops_issued += 1
        self.stats.index_launches += 1
        sig = self._launch_signature(launch)
        cache = self.replay_cache if cfg.analysis_cache else None
        replay = False
        if cfg.tracing:
            replay = self.tracer.observe(sig)
            if replay:
                self.stats.launch_replays += 1
                if prof.enabled:
                    prof.instant("trace.launch_replay", Stage.ISSUANCE,
                                 launch=launch.name)

        # --- safety: the hybrid analysis gates index-launch execution.
        # Verdicts are pure in the launch signature, so replays reuse the
        # memoized verdict (flagged ``cached``, same counters charged — a
        # replayed launch is still a verified launch, not a skipped one).
        safe_order_free = True
        t_safety = prof.mark()
        if cfg.validate_safety:
            verdict = (
                cache.replayed_verdict(sig, cfg.dynamic_checks)
                if cache is not None
                else None
            )
            if verdict is not None:
                self.stats.analysis_cache_hits += 1
            else:
                memo = cache.check_memo if cache is not None else None
                memo_hits = memo.hits if memo is not None else 0
                verdict = analyze_launch_safety(
                    launch, run_dynamic=cfg.dynamic_checks, check_memo=memo
                )
                if memo is not None:
                    self.stats.analysis_cache_hits += memo.hits - memo_hits
                if cache is not None:
                    cache.put_verdict(sig, cfg.dynamic_checks, verdict)
            self.safety_log.append(verdict)
            self.stats.check_evaluations += verdict.check_evaluations
            if verdict.method is SafetyMethod.STATIC:
                self.stats.launches_verified_static += 1
            elif verdict.method is SafetyMethod.HYBRID:
                self.stats.launches_verified_dynamic += 1
            elif verdict.method is SafetyMethod.UNVERIFIED:
                self.stats.launches_unverified += 1
            if prof.enabled:
                prof.phase(
                    "safety", "safety", t_safety,
                    launch=launch.name,
                    method=verdict.method.name,
                    cached=verdict.cached,
                    safe=verdict.safe,
                    check_evaluations=verdict.check_evaluations,
                )
                if verdict.cached:
                    prof.instant("cache.verdict_hit", "safety",
                                 launch=launch.name)
            if not verdict.safe:
                # Listing 3's else-branch: fall back to the original task loop.
                self.stats.launches_fallback_serial += 1
                if prof.enabled:
                    prof.instant("safety.fallback_serial", "safety",
                                 launch=launch.name)
                    prof.phase("issuance", Stage.ISSUANCE, t_issue,
                               launch=launch.name, fallback=True)
                return self._run_expanded(
                    launch, order_free=False, op_kind="fallback_loop"
                )
            safe_order_free = verdict.method is not SafetyMethod.UNVERIFIED

        # --- issuance: one O(1) descriptor per issuing node.
        issuers = range(cfg.n_nodes) if cfg.dcr else (0,)
        for n in issuers:
            self.stats.add_representation(Stage.ISSUANCE, n, 1)
        if prof.enabled:
            attrs = dict(launch=launch.name, domain=launch.domain.volume,
                         replay=replay)
            if cost is not None:
                attrs["sim_cost_s"] = cost.t_issue_launch
            prof.phase("issuance", Stage.ISSUANCE, t_issue,
                       nodes=tuple(issuers), **attrs)

        # Tracing without DCR forces expansion before distribution
        # (Section 6.2.1): the launch degrades to per-task processing from
        # the logical stage onward.  Bulk tracing — the paper's future-work
        # extension — records traces at launch granularity instead, so the
        # O(1) representation survives distribution.
        if cfg.tracing and not cfg.dcr and not cfg.bulk_tracing:
            if prof.enabled:
                prof.instant("trace.early_expansion", Stage.ISSUANCE,
                             launch=launch.name)
            return self._run_expanded(
                launch, order_free=safe_order_free, skip_issuance=True
            )

        # --- logical analysis: whole-partition reasoning, one user per arg.
        t_logical = prof.mark()
        op_id = next(self._op_counter)
        deps = self.logical.analyze_operation(
            op_id,
            [
                (req.region.uid, req.resolved_fields(), req.privilege)
                for req in launch.requirements
            ],
        )
        self.stats.logical_users = self.logical.users_processed
        self.stats.logical_dependences += len(deps)
        for n in issuers:
            self.stats.add_representation(Stage.LOGICAL, n, 1)
        if prof.enabled:
            attrs = dict(op=op_id, launch=launch.name, dependences=len(deps))
            if cost is not None:
                attrs["sim_cost_s"] = (
                    cost.t_logical_launch_arg * len(launch.requirements)
                )
            prof.phase("logical", Stage.LOGICAL, t_logical,
                       nodes=tuple(issuers), **attrs)
        if self.graph_recorder is not None:
            self.graph_recorder.record_op(op_id, launch.name, "index_launch")
            self.graph_recorder.record_logical_edges(deps)

        # --- distribution: sharding (DCR) or slicing (broadcast tree).
        # Both functors are pure, so both paths are memoized (sharding was
        # always; slicing joins it under the analysis-cache knob).
        t_dist = prof.mark()
        dist_attrs: Dict[str, Any] = {}
        if cfg.dcr:
            assignment = self.sharding_cache.shard_map(
                self.mapper, launch.domain, cfg.n_nodes
            )
            for node in assignment:
                self.stats.add_representation(Stage.DISTRIBUTION, node, 1)
            dist_attrs["mode"] = "shard"
        else:
            if cache is not None:
                slicing = self.slicing_cache.slice(
                    self.mapper, launch.domain, cfg.n_nodes
                )
            else:
                slicing = build_slices(self.mapper, launch.domain, cfg.n_nodes)
            self.stats.slice_messages += slicing.n_messages
            self.stats.max_slice_depth = max(
                self.stats.max_slice_depth, slicing.max_depth
            )
            assignment = {}
            for slc in slicing.slices:
                assignment.setdefault(slc.node, []).extend(slc.points)
                self.stats.add_representation(Stage.DISTRIBUTION, slc.node, 1)
            dist_attrs.update(
                mode="slice",
                messages=slicing.n_messages,
                max_depth=slicing.max_depth,
            )
        if prof.enabled:
            for node in sorted(assignment):
                local = len(assignment[node])
                attrs = dict(dist_attrs, launch=launch.name, points=local)
                if cost is not None:
                    attrs["sim_cost_s"] = (
                        cost.t_shard_point * local if cfg.dcr
                        else cost.t_slice_process * (dist_attrs["max_depth"] + 1)
                    )
                prof.phase("distribution", Stage.DISTRIBUTION, t_dist,
                           node=node, **attrs)

        # --- expansion, physical analysis, and execution are per-node work:
        # the execution backend owns them (serially in-process by default;
        # fanned out across the worker pool when ``workers > 1``).
        return self.backend.finish_launch(
            launch,
            sig,
            op_id,
            assignment,
            replay,
            safe_order_free,
            cache,
        )

    def _issue_expanded(self, launch: IndexLaunch) -> FutureMap:
        """No-IDX path: the forall is a loop of individual task launches."""
        self.stats.ops_issued += 1
        return self._run_expanded(launch, order_free=False)

    def _run_expanded(
        self,
        launch: IndexLaunch,
        order_free: bool,
        skip_issuance: bool = False,
        op_kind: str = "task",
    ) -> FutureMap:
        """Process a launch one task at a time (No-IDX, early-expansion, or
        serial fallback after a failed check)."""
        # Expanded launches run inline: pending pipelined launches must
        # commit first so analysis and storage are current.
        self.backend.drain()
        cfg = self.config
        prof = self.profiler
        t0 = prof.mark()
        fmap = FutureMap(label=launch.name)
        issuers = range(cfg.n_nodes) if cfg.dcr else (0,)
        executed: List[Tuple[TaskLaunch, int, int]] = []
        for point in launch.domain:
            point_task = launch.point_task(point)
            self.stats.single_tasks += 1
            if not skip_issuance:
                for n in issuers:
                    self.stats.add_representation(Stage.ISSUANCE, n, 1)
            op_id = next(self._op_counter)
            deps = self.logical.analyze_operation(
                op_id,
                [
                    (req.region.uid, req.resolved_fields(), req.privilege)
                    for req in point_task.requirements
                ],
            )
            self.stats.logical_dependences += len(deps)
            for n in issuers:
                self.stats.add_representation(Stage.LOGICAL, n, 1)
            node = self.mapper.select_node(point_task, cfg.n_nodes)
            self.stats.add_representation(Stage.DISTRIBUTION, node, 1)
            if not cfg.dcr and node != 0:
                self.stats.slice_messages += 1  # point-to-point, no tree
            task_id = next(self._task_counter)
            tdeps = self.physical.record_task(
                task_id,
                [
                    (req.subregion, req.privilege, req.resolved_fields())
                    for req in point_task.requirements
                ],
            )
            self.stats.physical_dependences += len(tdeps)
            self.stats.add_representation(Stage.PHYSICAL, node, 1)
            if self.graph_recorder is not None:
                self.graph_recorder.record_op(op_id, point_task.name, op_kind)
                self.graph_recorder.record_logical_edges(deps)
                self.graph_recorder.record_task(
                    task_id, point_task.name, op_id, node
                )
                self.graph_recorder.record_physical_edges(tdeps)
            executed.append((point_task, node, task_id))
        self.stats.logical_users = self.logical.users_processed
        self.stats.overlap_queries = self.physical.overlap_queries
        if prof.enabled:
            attrs = dict(aggregate=True, kind=op_kind, launch=launch.name,
                         tasks=launch.domain.volume)
            if not skip_issuance:
                prof.phase("issuance", Stage.ISSUANCE, t0,
                           nodes=tuple(issuers), **attrs)
            prof.phase("logical", Stage.LOGICAL, t0,
                       nodes=tuple(issuers), **attrs)
            exec_nodes = tuple(sorted({node for _, node, _ in executed}))
            prof.phase("distribution", Stage.DISTRIBUTION, t0,
                       nodes=exec_nodes, **attrs)
            prof.phase("physical", Stage.PHYSICAL, t0,
                       nodes=exec_nodes, **attrs)
        if cfg.shuffle_intra_launch and order_free:
            self._rng.shuffle(executed)
        for point_task, node, tid in executed:
            try:
                fmap.set(point_task.point, self._run_task(point_task, node))
            except InjectedFaultError as exc:
                if exc.task_id is None:
                    exc.task_id = tid
                if exc.point is None and point_task.point is not None:
                    exc.point = tuple(point_task.point)
                raise
        return fmap

    # ------------------------------------------------------- fault poisoning
    def _mint_poison(self, launch_name: str, cause) -> TaskPoisonedError:
        """Build (and log) the TaskPoisonedError for one lost operation."""
        if isinstance(cause, TaskPoisonedError):
            # Propagation: keep the root task/launch/point attribution.
            err = TaskPoisonedError(
                f"launch {launch_name!r} poisoned by dependence on "
                f"poisoned state (origin: {cause})",
                task_id=cause.task_id,
                launch=cause.launch,
                point=cause.point,
                origin=cause,
            )
        else:
            err = TaskPoisonedError(
                f"launch {launch_name!r} poisoned: {cause}",
                task_id=getattr(cause, "task_id", None),
                launch=launch_name,
                point=getattr(cause, "point", None),
                origin=cause,
            )
        self.poison_log.append(err)
        return err

    def _taint_written(self, launch, err: TaskPoisonedError) -> None:
        """Taint every region the lost operation could have written, so
        later operations observe the poison instead of silently-stale
        bytes.  First writer wins: re-poisoning keeps the root cause."""
        written = [
            req.region.uid
            for req in launch.requirements
            if req.privilege.privilege in (
                Privilege.WRITE, Privilege.READ_WRITE, Privilege.REDUCE
            )
        ]
        self.physical.poison_regions(written, err)

    def _poison_launch(
        self, launch: IndexLaunch, cause, propagated: bool, fmap=None
    ) -> FutureMap:
        """Tier 4: the launch is lost.  Poison its FutureMap, taint its
        write footprint, and flush cached analysis for its signature (a
        half-executed launch invalidates what was memoized against it).

        ``fmap`` lets the parallel backend poison the map it already
        handed out for a pipelined-ahead launch that failed at drain."""
        # This drops cached templates below; any launch still pipelined
        # against them must land first (and with it, in issue order).
        self.backend.drain()
        cfg = self.config
        prof = self.profiler
        if propagated:
            # The launch never reached issuance; account for it so the
            # op tables still show the program's shape.
            self.stats.ops_issued += 1
            if cfg.index_launches:
                self.stats.index_launches += 1
            self.stats.poison_propagations += 1
        self.stats.launches_poisoned += 1
        err = self._mint_poison(launch.name, cause)
        if err.launch is None:
            err.launch = launch.name
        self._taint_written(launch, err)
        if cfg.analysis_cache:
            dropped = self.replay_cache.poison_signature(
                self._launch_signature(launch)
            )
            # Physical templates of *other* launches were recorded against
            # analyzer state this launch has now perturbed mid-flight.
            dropped += self.replay_cache.drop_physical()
            if dropped:
                self.stats.analysis_cache_invalidations += dropped
        if prof.enabled:
            prof.instant(
                "fault.poison_propagated" if propagated else "fault.poisoned",
                Stage.EXECUTION,
                launch=launch.name,
                cause=str(cause),
            )
            prof.count("fault.poisoned_launches", 1.0, propagated=propagated)
        if fmap is None:
            fmap = FutureMap(label=launch.name)
        fmap.poison(err)
        return fmap

    def _poison_single(self, launch: TaskLaunch, cause) -> Future:
        """Propagated poison for a single-task launch (fill/copy included)."""
        self.stats.launches_poisoned += 1
        self.stats.poison_propagations += 1
        err = self._mint_poison(launch.name, cause)
        self._taint_written(launch, err)
        if self.profiler.enabled:
            self.profiler.instant(
                "fault.poison_propagated", Stage.EXECUTION,
                launch=launch.name, cause=str(cause),
            )
            self.profiler.count(
                "fault.poisoned_launches", 1.0, propagated=True
            )
        future = Future(label=launch.name)
        future.poison(err)
        return future

    # ------------------------------------------------------------ execution
    def _run_task(
        self,
        point_task: TaskLaunch,
        node: int,
        regions: Optional[List[PhysicalRegion]] = None,
    ) -> Any:
        inj = self.fault_injector
        if inj is not None:
            inj.fire_inline(
                tuple(point_task.point)
                if point_task.point is not None
                else None,
                node,
            )
        ctx = TaskContext(point=point_task.point, node=node, runtime=self)
        physical_regions = regions if regions is not None else [
            PhysicalRegion(
                req.subregion, req.privilege, req.resolved_fields()
            )
            for req in point_task.requirements
        ]
        self.stats.tasks_executed += 1
        self.stats.add_representation(Stage.EXECUTION, node, 1)
        prof = self.profiler
        if prof.enabled:
            t0 = prof.now()
            result = point_task.task(ctx, *physical_regions, *point_task.args)
            point = point_task.point
            # Group spans by the base task name; the point goes in the args.
            base = point_task.name.split("(", 1)[0]
            prof.phase(
                f"execute:{base}", Stage.EXECUTION, t0, node=node,
                task=point_task.name,
                point=str(tuple(point)) if point is not None else None,
            )
            return result
        return point_task.task(ctx, *physical_regions, *point_task.args)


# ------------------------------------------------ built-in fill/copy tasks

def _fill_body(ctx, target, fname, value):
    target.fill(fname, value)


def _copy_body(ctx, src, dst, src_field, dst_field):
    dst.write(dst_field, src.read(src_field))


_fill_task = Task(_fill_body, privileges=["writes"], name="fill")
_copy_task = Task(_copy_body, privileges=["reads", "writes"], name="copy")
