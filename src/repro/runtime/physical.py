"""Physical dependence analysis (Section 5, stage 4).

After distribution, dependencies are refined to *specific tasks*: the
runtime tracks the last tasks to have read, written, or reduced each
sub-collection, and a new task depends on the precise prior tasks whose
footprints overlap its own.  Legion performs this with a distributed
bounding volume hierarchy in O(|D|_local * log |P|); here the same
information is computed with interval/index intersection (the complexity is
charged by the machine model, not measured from this Python code).

The analyzer also records how many overlap queries it performed so tests
can verify the claimed access patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.data.collection import Subregion
from repro.data.privileges import Privilege, PrivilegeSpec

__all__ = ["TaskDependence", "PhysicalAnalyzer"]


@dataclass(frozen=True)
class TaskDependence:
    """A task-level ordering edge: ``earlier_task`` must finish first."""

    earlier_task: int
    later_task: int
    region_uid: int


def _conflicts(a: PrivilegeSpec, b: PrivilegeSpec) -> bool:
    return not a.compatible_with(b)


def _same_subset(a, b) -> bool:
    """Cheap identical-footprint test: object identity (partition
    subregions reuse one subset object) or equal rectangles (fresh root
    subregions)."""
    from repro.data.collection import RectSubset

    if a is b:
        return True
    return (
        isinstance(a, RectSubset)
        and isinstance(b, RectSubset)
        and a.rect == b.rect
    )


@dataclass
class _User:
    """One active footprint; ``task_ids`` holds every task sharing it.

    Compatible accesses with an identical footprint (same partition color,
    same fields, mutually compatible privileges — e.g. the readers of one
    subregion across many iterations) coalesce into a single user, bounding
    the analyzer's state and per-access work by the number of *distinct*
    footprints rather than the number of tasks (Legion's epoch lists play
    the same role)."""

    task_ids: List[int]
    subregion: Subregion
    privilege: PrivilegeSpec
    fields: frozenset

    def footprint_key(self):
        sub = self.subregion
        part = sub.partition.uid if sub.partition is not None else None
        return (part, sub.color, id(sub.subset), self.fields)


class PhysicalAnalyzer:
    """Per-subregion last-user tracking.

    For each region we keep the set of *active* users: tasks whose footprint
    is not yet fully superseded by later writers.  A new access depends on
    every active conflicting user it overlaps; a writing access then retires
    the users its footprint covers.
    """

    def __init__(self):
        self._users: Dict[int, List[_User]] = {}
        self.overlap_queries = 0

    def record_task_access(
        self,
        task_id: int,
        subregion: Subregion,
        privilege: PrivilegeSpec,
        fields: Tuple[str, ...],
    ) -> List[TaskDependence]:
        """Register one region requirement of an individual task.

        Requirements interfere only when their *field sets* intersect (as in
        Legion, privileges are per-field), their privileges conflict, and
        their footprints overlap."""
        region_uid = subregion.region.uid
        fieldset = frozenset(fields)
        users = self._users.setdefault(region_uid, [])
        deps: List[TaskDependence] = []
        survivors: List[_User] = []
        coalesced = False
        for user in users:
            self.overlap_queries += 1
            if not (user.fields & fieldset):
                survivors.append(user)
                continue
            overlapping = user.subregion.overlaps(subregion)
            if overlapping and _conflicts(user.privilege, privilege):
                for tid in user.task_ids:
                    if tid != task_id:
                        deps.append(TaskDependence(tid, task_id, region_uid))
            # A writing access retires prior users whose footprint and field
            # set it fully covers (their data is superseded for dependence
            # purposes; partial overlap must keep the old user alive for
            # later readers of the uncovered remainder).
            if (
                overlapping
                and privilege.privilege in (Privilege.WRITE, Privilege.READ_WRITE)
                and task_id not in user.task_ids
                and user.fields <= fieldset
                and subregion.subset.covers(
                    user.subregion.subset, subregion.region.bounds
                )
            ):
                continue  # retired
            # Coalesce into an existing identical compatible footprint.
            if (
                not coalesced
                and user.privilege.compatible_with(privilege)
                and user.fields == fieldset
                and _same_subset(user.subregion.subset, subregion.subset)
            ):
                user.task_ids.append(task_id)
                coalesced = True
            survivors.append(user)
        if not coalesced:
            survivors.append(_User([task_id], subregion, privilege, fieldset))
        self._users[region_uid] = survivors
        return deps

    def record_task(
        self,
        task_id: int,
        accesses: List[Tuple[Subregion, PrivilegeSpec, Tuple[str, ...]]],
    ) -> List[TaskDependence]:
        """Register all requirements of one task, deduplicating edges."""
        seen = set()
        out: List[TaskDependence] = []
        for subregion, privilege, fields in accesses:
            for dep in self.record_task_access(
                task_id, subregion, privilege, fields
            ):
                key = (dep.earlier_task, dep.later_task)
                if key not in seen:
                    seen.add(key)
                    out.append(dep)
        return out

    def active_users(self, region_uid: int) -> int:
        """Number of live users tracked for a region (test hook)."""
        return len(self._users.get(region_uid, []))
