"""Physical dependence analysis (Section 5, stage 4).

After distribution, dependencies are refined to *specific tasks*: the
runtime tracks the last tasks to have read, written, or reduced each
sub-collection, and a new task depends on the precise prior tasks whose
footprints overlap its own.  Legion performs this with a distributed
bounding volume hierarchy in O(|D|_local * log |P|); here the same
information is computed with interval/index intersection (the complexity is
charged by the machine model, not measured from this Python code).

The analyzer also records how many overlap queries it performed so tests
can verify the claimed access patterns.

Replay support (tracing [20]): when an identical launch is reissued inside
a validated trace, its dependence structure is the same *shape* — only the
task ids differ.  :meth:`PhysicalAnalyzer.record_task` can therefore
capture a :class:`DependenceTemplate` describing each access symbolically
(which footprints it depended on, retired, coalesced into, or created), and
:meth:`PhysicalAnalyzer.replay_tasks` re-stamps that template with fresh
task ids without re-running overlap queries.  Footprints are addressed by a
*key* — (partition uid, color, subset uid-or-rect, fields, privilege token)
— rather than by object reference, so a template survives the record/retire
churn of iterative write-read patterns; every key component is a plain
value, portable across process boundaries for the parallel backend.  Replay is validated (ordered
per-region key snapshots must match, every referenced key must resolve
uniquely) and bails to the live path on any mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.data.collection import Subregion
from repro.data.privileges import Privilege, PrivilegeSpec

__all__ = [
    "TaskDependence",
    "PhysicalAnalyzer",
    "AccessOp",
    "DependenceTemplate",
    "make_template",
]


@dataclass(frozen=True)
class TaskDependence:
    """A task-level ordering edge: ``earlier_task`` must finish first."""

    earlier_task: int
    later_task: int
    region_uid: int


def _conflicts(a: PrivilegeSpec, b: PrivilegeSpec) -> bool:
    return not a.compatible_with(b)


def _same_subset(a, b) -> bool:
    """Cheap identical-footprint test: construction identity (partition
    subregions reuse one subset object; a worker-side reconstruction keeps
    the shipped uid) or equal rectangles (fresh root subregions)."""
    from repro.data.collection import RectSubset

    if a is b or a.uid == b.uid:
        return True
    return (
        isinstance(a, RectSubset)
        and isinstance(b, RectSubset)
        and a.rect == b.rect
    )


def _priv_token(privilege: PrivilegeSpec) -> tuple:
    """Process-portable encoding of a privilege.

    ``PrivilegeSpec`` compares by its ``redop`` callable, and the built-in
    reduction lambdas do not survive pickling with identity intact — a
    worker's unpickled copy would compare unequal.  Keys therefore encode
    the privilege as value strings."""
    redop = privilege.redop.name if privilege.redop is not None else None
    return (privilege.privilege.value, redop)


def _footprint_key(
    subregion: Subregion, privilege: PrivilegeSpec, fields: frozenset
):
    """Identity-free, process-portable address of a user footprint.

    Sparse subsets are addressed by their construction ``uid`` — never by
    ``id()``, which can alias once the collector reuses an address across
    iterations and means nothing in another process.  Root subregions wrap
    a *fresh* RectSubset per call, so rectangles are addressed by bounds
    value instead of uid.
    """
    from repro.data.collection import RectSubset

    part = subregion.partition.uid if subregion.partition is not None else None
    subset = subregion.subset
    if isinstance(subset, RectSubset):
        ident = ("rect", tuple(subset.rect.lo), tuple(subset.rect.hi))
    else:
        ident = ("uid", subset.uid)
    color = tuple(subregion.color) if subregion.color is not None else None
    return (part, color, ident, fields, _priv_token(privilege))


@dataclass
class _User:
    """One active footprint; ``task_ids`` holds every task sharing it.

    Compatible accesses with an identical footprint (same partition color,
    same fields, mutually compatible privileges — e.g. the readers of one
    subregion across many iterations) coalesce into a single user, bounding
    the analyzer's state and per-access work by the number of *distinct*
    footprints rather than the number of tasks (Legion's epoch lists play
    the same role)."""

    task_ids: List[int]
    subregion: Subregion
    privilege: PrivilegeSpec
    fields: frozenset

    def footprint_key(self):
        return _footprint_key(self.subregion, self.privilege, self.fields)


@dataclass
class AccessOp:
    """Symbolic record of what one region access did to the user state."""

    region_uid: int
    n_scanned: int
    dep_keys: List[tuple] = field(default_factory=list)
    retire_keys: List[tuple] = field(default_factory=list)
    coalesce_key: Optional[tuple] = None
    create: Optional[Tuple[Subregion, PrivilegeSpec, frozenset]] = None
    ambiguous: bool = False  # two live users shared a key: not replayable


@dataclass
class DependenceTemplate:
    """Replayable dependence structure of one whole launch.

    ``task_ops`` holds the per-task access ops in expansion order;
    ``entry_keys`` is the ordered footprint-key snapshot of every touched
    region at the moment recording started — replay requires an exact match
    so that foreign mutations of the region state force a live re-analysis.
    ``kernel`` caches the compiled slot program of the last successful
    validated replay (see :mod:`repro.runtime.kernels`); it is advisory
    state and never shipped across processes.
    """

    task_ops: List[List[AccessOp]]
    entry_keys: Dict[int, Tuple[tuple, ...]]
    n_queries: int
    kernel: Optional[object] = None

    def __getstate__(self):
        return (self.task_ops, self.entry_keys, self.n_queries)

    def __setstate__(self, state):
        self.task_ops, self.entry_keys, self.n_queries = state
        self.kernel = None


def make_template(
    task_ops: List[List[AccessOp]], entry_keys: Dict[int, Tuple[tuple, ...]]
) -> Optional[DependenceTemplate]:
    """Assemble a template from captured ops; None when not replayable."""
    n_queries = 0
    for ops in task_ops:
        for op in ops:
            if op.ambiguous:
                return None
            n_queries += op.n_scanned
    if any(len(set(keys)) != len(keys) for keys in entry_keys.values()):
        return None
    return DependenceTemplate(task_ops, entry_keys, n_queries)


class _OverlayEntry:
    """One user slot during a replay dry-run: a live user or a pending one.

    ``src`` is the kernel-compilation tag: the entry's index in the initial
    bucket for live users, ``-1 - j`` for the j-th entry created during the
    replay (see :class:`~repro.runtime.kernels.DependenceKernel`).
    """

    __slots__ = ("key", "user", "pending", "spec", "src")

    def __init__(self, key, user=None, spec=None, src=0):
        self.key = key
        self.user = user  # live _User for pre-existing entries
        self.pending: List[int] = []  # fresh task ids appended this replay
        self.spec = spec  # (subregion, privilege, fields) for created entries
        self.src = src

    def all_ids(self) -> List[int]:
        base = self.user.task_ids if self.user is not None else []
        return base + self.pending


class PhysicalAnalyzer:
    """Per-subregion last-user tracking.

    For each region we keep the set of *active* users: tasks whose footprint
    is not yet fully superseded by later writers.  A new access depends on
    every active conflicting user it overlaps; a writing access then retires
    the users its footprint covers.
    """

    def __init__(self, profiler=None, kernels: bool = True):
        self._users: Dict[int, List[_User]] = {}
        #: per-region bucket version, bumped on every mutation; dependence
        #: kernels compare versions instead of re-snapshotting keys.
        self._versions: Dict[int, int] = {}
        self.overlap_queries = 0
        self.kernels_enabled = kernels
        self.kernel_replays = 0
        self._profiler = profiler
        #: region uid -> the TaskPoisonedError that tainted it.  A poisoned
        #: launch taints every region it could have written; any later
        #: operation touching a tainted region is short-circuited to a
        #: poisoned future *before* analysis (see Runtime._poison_launch).
        self.poisoned: Dict[int, Any] = {}

    def record_task_access(
        self,
        task_id: int,
        subregion: Subregion,
        privilege: PrivilegeSpec,
        fields: Tuple[str, ...],
        _capture: Optional[List[AccessOp]] = None,
    ) -> List[TaskDependence]:
        """Register one region requirement of an individual task.

        Requirements interfere only when their *field sets* intersect (as in
        Legion, privileges are per-field), their privileges conflict, and
        their footprints overlap.  With ``_capture`` a symbolic
        :class:`AccessOp` describing the state transition is appended."""
        region_uid = subregion.region.uid
        fieldset = frozenset(fields)
        users = self._users.setdefault(region_uid, [])
        op: Optional[AccessOp] = None
        keys: List[tuple] = []
        if _capture is not None:
            keys = [u.footprint_key() for u in users]
            op = AccessOp(
                region_uid=region_uid,
                n_scanned=len(users),
                ambiguous=len(set(keys)) != len(keys),
            )
            _capture.append(op)
        deps: List[TaskDependence] = []
        survivors: List[_User] = []
        coalesced = False
        for idx, user in enumerate(users):
            self.overlap_queries += 1
            if not (user.fields & fieldset):
                survivors.append(user)
                continue
            overlapping = user.subregion.overlaps(subregion)
            if overlapping and _conflicts(user.privilege, privilege):
                for tid in user.task_ids:
                    if tid != task_id:
                        deps.append(TaskDependence(tid, task_id, region_uid))
                if op is not None:
                    op.dep_keys.append(keys[idx])
            # A writing access retires prior users whose footprint and field
            # set it fully covers (their data is superseded for dependence
            # purposes; partial overlap must keep the old user alive for
            # later readers of the uncovered remainder).
            if (
                overlapping
                and privilege.privilege in (Privilege.WRITE, Privilege.READ_WRITE)
                and task_id not in user.task_ids
                and user.fields <= fieldset
                and subregion.subset.covers(
                    user.subregion.subset, subregion.region.bounds
                )
            ):
                if op is not None:
                    op.retire_keys.append(keys[idx])
                continue  # retired
            # Coalesce into an existing identical compatible footprint.
            if (
                not coalesced
                and user.privilege.compatible_with(privilege)
                and user.fields == fieldset
                and _same_subset(user.subregion.subset, subregion.subset)
            ):
                user.task_ids.append(task_id)
                coalesced = True
                if op is not None:
                    op.coalesce_key = keys[idx]
            survivors.append(user)
        if not coalesced:
            survivors.append(_User([task_id], subregion, privilege, fieldset))
            if op is not None:
                op.create = (subregion, privilege, fieldset)
        self._users[region_uid] = survivors
        self._versions[region_uid] = self._versions.get(region_uid, 0) + 1
        return deps

    def record_task(
        self,
        task_id: int,
        accesses: List[Tuple[Subregion, PrivilegeSpec, Tuple[str, ...]]],
        _capture: Optional[List[List[AccessOp]]] = None,
    ) -> List[TaskDependence]:
        """Register all requirements of one task, deduplicating edges."""
        ops: Optional[List[AccessOp]] = [] if _capture is not None else None
        seen = set()
        out: List[TaskDependence] = []
        for subregion, privilege, fields in accesses:
            for dep in self.record_task_access(
                task_id, subregion, privilege, fields, _capture=ops
            ):
                key = (dep.earlier_task, dep.later_task)
                if key not in seen:
                    seen.add(key)
                    out.append(dep)
        if _capture is not None:
            _capture.append(ops)
        return out

    def snapshot_keys(
        self, region_uids: Iterable[int]
    ) -> Dict[int, Tuple[tuple, ...]]:
        """Ordered footprint-key snapshot of the given region buckets."""
        return {
            uid: tuple(u.footprint_key() for u in self._users.get(uid, []))
            for uid in region_uids
        }

    def replay_tasks(
        self, task_ids: Sequence[int], template: DependenceTemplate
    ) -> Optional[List[List[TaskDependence]]]:
        """Re-stamp a recorded dependence template with fresh task ids.

        Runs a validating dry-run against an overlay of the current user
        state; only when every op of every task resolves is the state
        mutation committed (so a failed replay leaves the analyzer
        untouched for the live fallback).  Returns per-task dependence
        lists matching :meth:`record_task` exactly, or None on any
        mismatch — a changed snapshot, a missing/duplicate key, or a length
        divergence.
        """
        if len(task_ids) != len(template.task_ops):
            return None
        kernel = template.kernel if self.kernels_enabled else None
        if kernel is not None:
            results = kernel.apply(self, task_ids)
            if results is not None:
                prof = self._profiler
                if prof is not None and prof.enabled:
                    prof.count("physical.template_replays", 1.0)
                    prof.count("physical.template_tasks", float(len(task_ids)))
                    prof.count("kernels.dependence_hits", 1.0)
                return results
            # Stale (a foreign bucket mutation): fall through to the
            # validating overlay path, which recompiles on success.
            template.kernel = None
        overlays: Dict[int, List[_OverlayEntry]] = {}
        for uid, recorded_keys in template.entry_keys.items():
            users = self._users.get(uid, [])
            current_keys = tuple(u.footprint_key() for u in users)
            if current_keys != recorded_keys:
                return None
            overlays[uid] = [
                _OverlayEntry(key, user=u, src=i)
                for i, (key, u) in enumerate(zip(current_keys, users))
            ]

        def find(entries: List[_OverlayEntry], key) -> Optional[_OverlayEntry]:
            for entry in entries:
                if entry.key == key:
                    return entry
            return None

        compile_steps: Optional[list] = [] if self.kernels_enabled else None
        creations: List[tuple] = []
        results: List[List[TaskDependence]] = []
        for tid, ops in zip(task_ids, template.task_ops):
            seen = set()
            out: List[TaskDependence] = []
            step: list = []
            for op in ops:
                entries = overlays.get(op.region_uid)
                if entries is None or len(entries) != op.n_scanned:
                    return None
                dep_srcs: List[int] = []
                for key in op.dep_keys:
                    entry = find(entries, key)
                    if entry is None:
                        return None
                    dep_srcs.append(entry.src)
                    for earlier in entry.all_ids():
                        if earlier != tid:
                            pair = (earlier, tid)
                            if pair not in seen:
                                seen.add(pair)
                                out.append(
                                    TaskDependence(earlier, tid, op.region_uid)
                                )
                for key in op.retire_keys:
                    entry = find(entries, key)
                    if entry is None:
                        return None
                    entries.remove(entry)
                coalesce_src = None
                if op.coalesce_key is not None:
                    entry = find(entries, op.coalesce_key)
                    if entry is None:
                        return None
                    entry.pending.append(tid)
                    coalesce_src = entry.src
                create_ord = None
                if op.create is not None:
                    subregion, privilege, fieldset = op.create
                    key = _footprint_key(subregion, privilege, fieldset)
                    if find(entries, key) is not None:
                        return None
                    create_ord = len(creations)
                    entry = _OverlayEntry(
                        key, spec=op.create, src=-1 - create_ord
                    )
                    creations.append(op.create)
                    entry.pending.append(tid)
                    entries.append(entry)
                if compile_steps is not None:
                    step.append(
                        (op.region_uid, tuple(dep_srcs), coalesce_src, create_ord)
                    )
            if compile_steps is not None:
                compile_steps.append(step)
            results.append(out)

        # Commit: the overlay entry order reproduces the survivor order the
        # live path would have built.
        final_order: Dict[int, List[int]] = {}
        entry_steady: Dict[int, bool] = {}
        for uid, entries in overlays.items():
            new_users: List[_User] = []
            for entry in entries:
                if entry.user is not None:
                    entry.user.task_ids.extend(entry.pending)
                    new_users.append(entry.user)
                else:
                    subregion, privilege, fieldset = entry.spec
                    new_users.append(
                        _User(list(entry.pending), subregion, privilege, fieldset)
                    )
            self._users[uid] = new_users
            self._versions[uid] = self._versions.get(uid, 0) + 1
            if compile_steps is not None:
                final_order[uid] = [e.src for e in entries]
                # A bucket whose commit reproduces the entry snapshot is at
                # the single-launch fixed point and can ride the version
                # fast path; a permuting commit (interleaved launch sets
                # sharing this bucket) arms the revalidation sentinel so
                # every apply re-checks the ordered keys instead.
                entry_steady[uid] = (
                    tuple(e.key for e in entries) == template.entry_keys[uid]
                )
        if compile_steps is not None:
            from repro.runtime.kernels import DependenceKernel

            template.kernel = DependenceKernel(
                expected={
                    uid: (
                        self._versions.get(uid, 0)
                        if entry_steady[uid]
                        else DependenceKernel.REVALIDATE
                    )
                    for uid in overlays
                },
                entry_keys=template.entry_keys,
                steps=compile_steps,
                creations=creations,
                final_order=final_order,
                n_queries=template.n_queries,
                dep_cls=TaskDependence,
                user_cls=_User,
            )
        self.overlap_queries += template.n_queries
        prof = self._profiler
        if prof is not None and prof.enabled:
            prof.count("physical.template_replays", 1.0)
            prof.count("physical.template_tasks", float(len(task_ids)))
        return results

    def install_bucket(self, region_uid: int, users: List[_User]) -> None:
        """Replace a region's user bucket wholesale (parallel-merge commit).

        Every external mutation must go through here so the bucket version
        advances and stale dependence kernels notice."""
        self._users[region_uid] = users
        self._versions[region_uid] = self._versions.get(region_uid, 0) + 1

    def active_users(self, region_uid: int) -> int:
        """Number of live users tracked for a region (test hook)."""
        return len(self._users.get(region_uid, []))

    # --------------------------------------------------- poison propagation
    def poison_regions(self, region_uids: Iterable[int], error: Any) -> int:
        """Taint regions with the error of an unrecovered launch.

        First writer wins: a region already tainted keeps its original
        error, so consumers always see the *root* cause.  Returns how many
        regions were newly tainted.
        """
        fresh = 0
        for uid in region_uids:
            if uid not in self.poisoned:
                self.poisoned[uid] = error
                fresh += 1
        return fresh

    def poison_for(self, region_uids: Iterable[int]) -> Optional[Any]:
        """The taint an operation over these regions would inherit, if any."""
        if not self.poisoned:
            return None
        for uid in region_uids:
            error = self.poisoned.get(uid)
            if error is not None:
                return error
        return None

    def clear_poison(self, region_uids: Optional[Iterable[int]] = None) -> int:
        """Explicit recovery: clear taint for the given regions (all when
        ``None``) after the application has re-initialized their contents.
        Returns how many taints were cleared."""
        if region_uids is None:
            n = len(self.poisoned)
            self.poisoned.clear()
            return n
        n = 0
        for uid in region_uids:
            if self.poisoned.pop(uid, None) is not None:
                n += 1
        return n
