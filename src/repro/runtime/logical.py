"""Logical dependence analysis (Section 5, stage 2).

The logical phase identifies *bulk* dependencies between operations using
whole-partition reasoning: an index launch on partition P and one on
partition Q are independent when P and Q partition distinct collections.
It does not attempt to identify which tasks in a launch depend on which
tasks in another — that refinement is the physical phase's job.

The analysis is epoch-based, per region: compatible accesses (all reads, or
all same-operator reductions) coalesce into a group; an incompatible access
depends on every member of the current group (or on the previous exclusive
user when the group is empty) and opens a new epoch.

With index launches enabled, each launch is a single user of each region it
touches, so the per-launch cost is O(#args).  With them disabled, every
point task registers individually — the O(P) issuance/analysis cost the
paper's No-IDX configurations pay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.data.privileges import Privilege, PrivilegeSpec

__all__ = ["LogicalDependence", "LogicalAnalyzer"]

FieldKey = Tuple[int, str]  # (region uid, field name)


@dataclass(frozen=True)
class LogicalDependence:
    """A bulk (launch-level) ordering edge discovered by the logical phase."""

    earlier_op: int
    later_op: int
    region_uid: int


def _epoch_mode(spec: PrivilegeSpec) -> Tuple[str, Optional[str]]:
    """Epoch signature: compatible accesses share a signature."""
    if spec.privilege is Privilege.READ:
        return ("read", None)
    if spec.privilege is Privilege.REDUCE:
        return ("reduce", spec.redop.name)
    return ("exclusive", None)


@dataclass
class _RegionState:
    exclusive: List[int] = field(default_factory=list)  # previous epoch's ops
    group_mode: Optional[Tuple[str, Optional[str]]] = None
    group: List[int] = field(default_factory=list)
    group_members: set = field(default_factory=set)  # O(1) membership


class LogicalAnalyzer:
    """Tracks per-region epochs and yields launch-level dependencies.

    Operations are identified by integer ids (the runtime's op sequence
    numbers); the analyzer is oblivious to whether an op is an index launch
    or an individual task — the *caller* chooses the granularity, which is
    exactly the IDX / No-IDX distinction.
    """

    def __init__(self, profiler=None):
        self._regions: Dict[FieldKey, _RegionState] = {}
        self.users_processed = 0  # one per (op, region-arg) registration
        self._profiler = profiler

    def record_field_access(
        self, op_id: int, region_uid: int, fname: str, privilege: PrivilegeSpec
    ) -> List[LogicalDependence]:
        """Register an access of ``op_id`` to one field of one region.

        Privileges are per-field (as in Legion): accesses to disjoint field
        sets of the same region never interfere, which is how a stencil's
        halo read of ``input`` coexists with block writes of ``output``."""
        state = self._regions.setdefault((region_uid, fname), _RegionState())
        mode = _epoch_mode(privilege)
        deps: List[LogicalDependence] = []

        if mode == ("exclusive", None):
            predecessors = state.group if state.group else state.exclusive
            deps = [
                LogicalDependence(prev, op_id, region_uid)
                for prev in predecessors
                if prev != op_id
            ]
            state.exclusive = [op_id]
            state.group = []
            state.group_members = set()
            state.group_mode = None
            return deps

        if state.group_mode == mode:
            # Joins the current epoch: depends only on the exclusive set.
            deps = [
                LogicalDependence(prev, op_id, region_uid)
                for prev in state.exclusive
                if prev != op_id
            ]
            if op_id not in state.group_members:
                state.group.append(op_id)
                state.group_members.add(op_id)
            return deps

        # Incompatible with the current group: the group becomes the new
        # exclusive set and this op starts a fresh epoch.
        predecessors = state.group if state.group else state.exclusive
        deps = [
            LogicalDependence(prev, op_id, region_uid)
            for prev in predecessors
            if prev != op_id
        ]
        if state.group:
            state.exclusive = list(state.group)
        state.group_mode = mode
        state.group = [op_id]
        state.group_members = {op_id}
        return deps

    def analyze_operation(
        self,
        op_id: int,
        accesses: List[Tuple[int, Tuple[str, ...], PrivilegeSpec]],
    ) -> List[LogicalDependence]:
        """Register all of an operation's region accesses, deduplicating edges.

        ``accesses`` is a list of ``(region_uid, fields, privilege)`` triples
        — for an index launch, one per region requirement (whole-partition
        reasoning); for an individual task, the same but registered per task.
        """
        seen = set()
        out: List[LogicalDependence] = []
        for region_uid, fields, privilege in accesses:
            self.users_processed += 1
            for fname in fields:
                for dep in self.record_field_access(
                    op_id, region_uid, fname, privilege
                ):
                    key = (dep.earlier_op, dep.later_op)
                    if key not in seen:
                        seen.add(key)
                        out.append(dep)
        prof = self._profiler
        if prof is not None and prof.enabled:
            prof.count("logical.users", float(len(accesses)))
            prof.count("logical.dependences", float(len(out)))
        return out
