"""Precompiled hot-path kernels (ROADMAP item 3, hot-path engine layer 3).

Steady-state replay of an index launch re-derives the same facts every
iteration: the dependence template's overlay dry-run re-resolves the same
footprint keys to the same slots, the dynamic-check memo re-hashes the same
(domain, functor) key, and the expansion template rebuilds the same ordered
plan list.  This module compiles each of those into a reusable kernel so a
replay executes straight-line integer programs instead of key machinery:

* :class:`DependenceKernel` — an integer slot program compiled from one
  successful validated :meth:`~repro.runtime.physical.PhysicalAnalyzer.
  replay_tasks` dry-run.  Valid while the analyzer's per-region bucket
  *versions* are unchanged since the kernel last applied (every bucket
  mutation bumps its version), which subsumes the ordered key-snapshot
  comparison; application emits byte-identical ``TaskDependence`` lists and
  commits the same survivor order, then re-arms its version expectations.

* :class:`CheckKernelCache` — Listing-3 dynamic checks promoted to
  kernels keyed by (domain identity, functor descriptions, modes, color
  bounds).  A kernel is a constant verdict: proven up front by the affine
  engine when possible (injectivity over the concrete window plus an
  image-bounds argument so the reported ``evaluations``/``out_of_bounds``
  counts match the sweep exactly), otherwise promoted from one vectorized
  evaluation over a shared per-domain point-array arena.  Distinct launches
  sharing a (domain, functor) pair hit the same kernel.

All kernels preserve observable behavior exactly — dependence edge order,
``overlap_queries`` charging, ``CheckResult`` counts — and every consumer
falls back to the uncompiled path when a kernel is missing or stale, so the
layer can be disabled wholesale (``RuntimeConfig.kernels=False``) without
changing results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.privileges import Privilege

__all__ = [
    "DependenceKernel",
    "CheckKernelCache",
    "GLOBAL_CHECK_KERNELS",
    "LaunchFootprintCache",
    "domain_points_cached",
]


class DependenceKernel:
    """Slot-indexed replay program for one :class:`DependenceTemplate`.

    Compiled during a successful validated overlay replay.  Sources are
    encoded as integers: ``>= 0`` indexes the region bucket *in the
    template's entry order* at apply time, ``< 0`` (as ``-1 - j``) names
    the j-th footprint created during the replay itself.

    Validity is judged per region bucket:

    * A bucket whose commit reproduces the entry order (the single-launch
      steady-state fixed point) is guarded by its *version*: the kernel
      re-arms ``expected[uid]`` after each apply, and an exact match means
      nobody touched the bucket since — the fast path costs one dict probe.
    * A bucket whose commit *permutes* the entry order — interleaved
      launch sets retiring and re-creating entries in the shared bucket —
      arms the ``_REVALIDATE`` sentinel instead: a version match there
      would prove the bucket is as *our* commit left it, which is exactly
      the wrong order for the slot program.  Those buckets (and any bucket
      whose version mismatches, i.e. a sibling launch touched it) are
      revalidated by ordered footprint keys — the same comparison the
      validating overlay path makes — so *disjoint* interleavings keep
      the kernel live while overlapping ones still bail to the overlay.
    """

    __slots__ = (
        "expected",
        "entry_keys",
        "steps",
        "creations",
        "final_order",
        "n_queries",
        "_dep_cls",
        "_user_cls",
    )

    #: ``expected`` value forcing key revalidation on every apply.
    REVALIDATE = -1

    def __init__(
        self,
        expected: Dict[int, int],
        entry_keys: Dict[int, Tuple[tuple, ...]],
        steps: List[List[Tuple[int, Tuple[int, ...], Optional[int], Optional[int]]]],
        creations: List[Tuple[object, object, frozenset]],
        final_order: Dict[int, List[int]],
        n_queries: int,
        dep_cls,
        user_cls,
    ):
        self.expected = expected
        self.entry_keys = entry_keys
        self.steps = steps
        self.creations = creations
        self.final_order = final_order
        self.n_queries = n_queries
        self._dep_cls = dep_cls
        self._user_cls = user_cls

    def apply(self, analyzer, task_ids) -> Optional[List[list]]:
        """Run the program against ``analyzer``; None when stale.

        Per-bucket staleness: an exact version match (for buckets armed
        with one) means untouched-since-re-arm; anything else falls back
        to comparing the bucket's ordered footprint keys against the
        template's entry keys, which is precisely the validation the
        overlay dry-run performs — a mismatch means the slot indices no
        longer describe this bucket and the caller must take the
        validating path.
        """
        versions = analyzer._versions
        for uid, expect in self.expected.items():
            if expect >= 0 and versions.get(uid, 0) == expect:
                continue
            users = analyzer._users.get(uid, ())
            keys = self.entry_keys[uid]
            if len(users) != len(keys):
                return None
            for user, key in zip(users, keys):
                if user.footprint_key() != key:
                    return None
        if len(task_ids) != len(self.steps):
            return None
        users_map = {uid: analyzer._users.get(uid, ()) for uid in self.final_order}
        dep_cls = self._dep_cls
        created: List[List[int]] = [[] for _ in self.creations]
        results: List[list] = []
        for tid, ops in zip(task_ids, self.steps):
            seen = set()
            out: list = []
            for uid, dep_srcs, coalesce_src, create_ord in ops:
                users = users_map[uid]
                for src in dep_srcs:
                    ids = (
                        users[src].task_ids if src >= 0 else created[-1 - src]
                    )
                    for earlier in ids:
                        if earlier != tid:
                            pair = (earlier, tid)
                            if pair not in seen:
                                seen.add(pair)
                                out.append(dep_cls(earlier, tid, uid))
                if coalesce_src is not None:
                    # In-place append reproduces the overlay's base+pending
                    # visibility: later dep queries this replay see the
                    # coalesced id, exactly as ``all_ids`` would.
                    if coalesce_src >= 0:
                        users[coalesce_src].task_ids.append(tid)
                    else:
                        created[-1 - coalesce_src].append(tid)
                if create_ord is not None:
                    created[create_ord].append(tid)
            results.append(out)
        user_cls = self._user_cls
        for uid, order in self.final_order.items():
            users = users_map[uid]
            bucket = []
            for src in order:
                if src >= 0:
                    bucket.append(users[src])
                else:
                    subregion, privilege, fieldset = self.creations[-1 - src]
                    bucket.append(
                        user_cls(created[-1 - src], subregion, privilege, fieldset)
                    )
            analyzer._users[uid] = bucket
            bumped = versions.get(uid, 0) + 1
            versions[uid] = bumped
            # Permute-committing buckets stay on the revalidation path: the
            # version we just minted describes the *committed* order, not
            # the entry order the slot program needs.
            if self.expected[uid] >= 0:
                self.expected[uid] = bumped
        analyzer.overlap_queries += self.n_queries
        analyzer.kernel_replays += 1
        return results


# --------------------------------------------------------------------------
# Shared point-array arena: every dynamic check over the same domain reuses
# one materialized (volume, dim) array instead of re-running meshgrid.

_POINT_ARENA: Dict[object, np.ndarray] = {}
_POINT_ARENA_MAX = 256


def domain_points_cached(domain) -> np.ndarray:
    """``domain.point_array()`` through a bounded process-wide arena."""
    pts = _POINT_ARENA.get(domain)
    if pts is None:
        if len(_POINT_ARENA) >= _POINT_ARENA_MAX:
            _POINT_ARENA.clear()
        pts = domain.point_array()
        pts.setflags(write=False)
        _POINT_ARENA[domain] = pts
    return pts


def _affine_constant_verdict(domain, args, bounds):
    """A proven-safe :class:`CheckResult`, or None when not provable.

    The affine engine must establish three facts for the constant to be
    byte-identical to the vectorized sweep: every functor is injective over
    the concrete window, all write images are pairwise disjoint and disjoint
    from read images, and every image lies inside ``bounds`` (so the sweep
    would report ``out_of_bounds == 0``).  Unsafe outcomes are never
    constant-folded — the sweep's conflict attribution must run.
    """
    from repro.core.checks import CheckResult
    from repro.core.static_analysis import (
        form_images_disjoint,
        form_injective,
        functor_to_form,
    )

    if not domain.dense or domain.dim != 1 or bounds.dim != 1:
        return None
    rect = domain.bounds
    if rect.empty:
        return None
    lo, hi = rect.lo[0], rect.hi[0]
    extent = hi - lo + 1
    blo, bhi = bounds.lo[0], bounds.hi[0]
    forms = []
    for functor, mode in args:
        form = functor_to_form(functor)
        if form is None:
            return None
        if mode == "write" and not form_injective(form, extent):
            return None
        if form.mod is None:
            image_lo = min(form.evaluate(lo), form.evaluate(hi))
            image_hi = max(form.evaluate(lo), form.evaluate(hi))
        else:
            image_lo, image_hi = 0, form.mod - 1
        if image_lo < blo or image_hi > bhi:
            return None
        forms.append((form, mode))
    rng = (lo, hi)
    for i, (fi, mi) in enumerate(forms):
        for fj, mj in forms[i + 1 :]:
            if mi != "write" and mj != "write":
                continue
            if not form_images_disjoint(fi, rng, fj, rng):
                return None
    return CheckResult(
        safe=True, evaluations=extent * len(args), out_of_bounds=0
    )


class CheckKernelCache:
    """Dynamic-check kernels: constant verdicts keyed below the memo.

    ``run`` is a drop-in for :meth:`DynamicCheckMemo.run` /
    :func:`~repro.core.checks.dynamic_cross_check`.  Hits return the pinned
    :class:`CheckResult` without evaluating anything; misses compile a
    kernel — by affine proof when possible, else by one vectorized sweep
    over the shared point-array arena — and pin its verdict.
    """

    def __init__(self):
        self._kernels: Dict[tuple, object] = {}
        self.hits = 0
        self.misses = 0
        self.affine_constants = 0

    def clear(self) -> int:
        n = len(self._kernels)
        self._kernels.clear()
        return n

    def run(self, domain, args, bounds, use_numpy: bool = True, apply_batch=None):
        from repro.core.checks import dynamic_cross_check

        key = (
            domain,
            tuple((functor.describe(), mode) for functor, mode in args),
            bounds,
            use_numpy,
        )
        found = self._kernels.get(key)
        if found is not None:
            self.hits += 1
            return found
        self.misses += 1
        result = None
        if use_numpy:
            result = _affine_constant_verdict(domain, args, bounds)
            if result is not None:
                self.affine_constants += 1
        if result is None:
            points = domain_points_cached(domain) if use_numpy else None
            result = dynamic_cross_check(
                domain,
                args,
                bounds,
                use_numpy=use_numpy,
                apply_batch=apply_batch,
                points=points,
            )
        self._kernels[key] = result
        return result


#: Process-wide kernel store.  Check results are pure in the kernel key, so
#: one arena safely outlives any single Runtime (and its cache
#: invalidations), giving cross-runtime steady-state hits.
GLOBAL_CHECK_KERNELS = CheckKernelCache()


class LaunchFootprintCache:
    """Region-uid footprints of index launches, memoized per signature.

    Pipelined dispatch (see :mod:`repro.exec.parallel`) may begin issuing
    launch N+1's shards before launch N has committed — but only when the
    two launches are provably independent at launch granularity.  The
    proof is a uid-level disjointness check: launch N+1 conflicts with a
    pending launch exactly when some region it *touches* (any privilege)
    is a region the pending launch *writes* (WRITE / READ_WRITE / REDUCE).
    Anti-dependences — N+1 writing a region N only reads — are safe
    without a drain because N's read footprint bytes were gathered at its
    submission and commits stay FIFO.

    Granularity is deliberately the whole region, not fields or subsets:
    fault poisoning taints whole region uids, so a finer gate could let a
    launch slip past a poison the serial order would have propagated.

    Footprints are pure in the launch signature (the same tuple the
    replay cache keys on), so they are computed once per distinct launch
    and looked up thereafter.
    """

    __slots__ = ("_memo",)

    #: privileges whose holders mutate their region.
    _WRITES = frozenset((Privilege.WRITE, Privilege.READ_WRITE,
                         Privilege.REDUCE))

    def __init__(self):
        self._memo: Dict[tuple, Tuple[frozenset, frozenset]] = {}

    def footprint(self, sig: tuple, launch) -> Tuple[frozenset, frozenset]:
        """``(touched uids, written uids)`` for ``launch``, memoized."""
        entry = self._memo.get(sig)
        if entry is None:
            touched = frozenset(
                req.region.uid for req in launch.requirements
            )
            written = frozenset(
                req.region.uid
                for req in launch.requirements
                if req.privilege.privilege in self._WRITES
            )
            entry = (touched, written)
            self._memo[sig] = entry
        return entry

    @staticmethod
    def conflicts(written: frozenset, touched) -> bool:
        """Does a pending launch's write set intersect a new footprint?"""
        return not written.isdisjoint(touched)
