"""Futures: deferred task return values, with a first-class poisoned state.

In the functional backend execution is synchronous, so futures are filled
boxes — but the API matches deferred-execution semantics so programs written
against it would behave identically under an asynchronous executor.

A future is in exactly one of three states:

* **pending** — no value yet; :meth:`Future.get` raises
  :class:`FuturePendingError` (a labeled diagnostic, not a bare
  ``RuntimeError``).
* **filled** — holds its task's return value.
* **poisoned** — the producing task (or a task it depends on) was lost to
  an injected fault and the launch could not be recovered;
  :meth:`Future.get` raises the :class:`TaskPoisonedError` that records
  the originating task id, launch, and point.  Poison propagates through
  dependence edges (see ``Runtime._poison_launch``), so consumers fail
  with the *root cause*, not a downstream symptom.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.domain import Point
from repro.data.privileges import REDUCTION_OPS

__all__ = [
    "Future",
    "FutureMap",
    "FuturePendingError",
    "TaskPoisonedError",
]


class FuturePendingError(RuntimeError):
    """``get()`` before the producing task ran (or was even issued)."""


class TaskPoisonedError(RuntimeError):
    """The producing task was lost to a fault and could not be recovered.

    Attributes:
        task_id: id of the task whose failure originated the poison (may be
            ``None`` when the fault predated task-id assignment).
        launch: name of the launch the poison originated in.
        point: domain point of the originating task, when known.
        origin: the underlying cause (an ``InjectedFaultError`` or the
            upstream ``TaskPoisonedError`` this one propagated from).
    """

    def __init__(
        self,
        message: str,
        *,
        task_id: Optional[int] = None,
        launch: Optional[str] = None,
        point: Optional[tuple] = None,
        origin: Optional[BaseException] = None,
    ):
        super().__init__(message)
        self.task_id = task_id
        self.launch = launch
        self.point = point
        self.origin = origin


class Future:
    """The eventual return value of a single task."""

    __slots__ = ("_value", "_filled", "_error", "label")

    def __init__(self, label: Optional[str] = None):
        self._value = None
        self._filled = False
        self._error: Optional[TaskPoisonedError] = None
        self.label = label

    def set(self, value: Any) -> None:
        if self._error is not None:
            raise RuntimeError("cannot fill a poisoned future")
        if self._filled:
            raise RuntimeError("future already filled")
        self._value = value
        self._filled = True

    def poison(self, error: TaskPoisonedError) -> None:
        """Mark this future as lost to an unrecovered fault."""
        if self._filled:
            raise RuntimeError("cannot poison a filled future")
        self._error = error

    def get(self) -> Any:
        """Block (trivially) until the value is available and return it."""
        if self._error is not None:
            raise self._error
        if not self._filled:
            what = f"future of {self.label!r}" if self.label else "future"
            raise FuturePendingError(
                f"{what} is pending: its task has not produced a value "
                f"(was the task issued, and did it complete?)"
            )
        return self._value

    @property
    def done(self) -> bool:
        return self._filled

    @property
    def poisoned(self) -> bool:
        return self._error is not None

    def __repr__(self) -> str:
        if self._error is not None:
            return "Future(<poisoned>)"
        return f"Future({self._value!r})" if self._filled else "Future(<pending>)"


class FutureMap:
    """Per-point return values of an index launch.

    ``reduce(op_name)`` folds every point's value with a commutative
    operator, matching Legion's future-map reductions (used e.g. for
    residual norms in iterative solvers).  A poisoned map — the whole
    launch was lost — or a map with poisoned points refuses to produce
    values, raising the originating :class:`TaskPoisonedError`.
    """

    __slots__ = ("_values", "_point_errors", "_error", "label", "_drain")

    def __init__(self, label: Optional[str] = None):
        self._values: Dict[Point, Any] = {}
        self._point_errors: Dict[Point, TaskPoisonedError] = {}
        self._error: Optional[TaskPoisonedError] = None
        self.label = label
        #: set by a pipelining backend on a map whose launch has been
        #: submitted but not yet collected: reading the map forces the
        #: deferred commit (and clears the hook).  ``None`` otherwise.
        self._drain = None

    def _settle(self) -> None:
        drain = self._drain
        if drain is not None:
            self._drain = None
            drain()

    def set(self, point: Point, value: Any) -> None:
        if self._error is not None:
            raise RuntimeError("cannot fill a poisoned future map")
        if point in self._values or point in self._point_errors:
            raise RuntimeError(f"future map already holds a value for {point}")
        self._values[point] = value

    def poison(
        self, error: TaskPoisonedError, point: Optional[Point] = None
    ) -> None:
        """Poison the whole map (``point=None``) or one point's future."""
        if point is None:
            self._error = error
            return
        if point in self._values:
            raise RuntimeError(f"cannot poison filled point {point}")
        self._point_errors[point] = error

    @property
    def poisoned(self) -> bool:
        self._settle()
        return self._error is not None or bool(self._point_errors)

    @property
    def poison_error(self) -> Optional[TaskPoisonedError]:
        """The map-level error, or the first point-level one."""
        self._settle()
        if self._error is not None:
            return self._error
        for error in self._point_errors.values():
            return error
        return None

    def get(self, point) -> Any:
        from repro.core.domain import coerce_point

        self._settle()
        pt = coerce_point(point)
        if self._error is not None:
            raise self._error
        error = self._point_errors.get(pt)
        if error is not None:
            raise error
        return self._values[pt]

    def reduce(self, op_name: str) -> Any:
        """Fold all point values with the named reduction operator."""
        self._settle()
        if op_name not in REDUCTION_OPS:
            raise ValueError(f"unknown reduction {op_name!r}")
        error = self.poison_error
        if error is not None:
            n_bad = len(self._point_errors)
            detail = (
                f"{n_bad} of {n_bad + len(self._values)} point futures "
                f"poisoned" if self._error is None else "launch poisoned"
            )
            raise TaskPoisonedError(
                f"cannot reduce({op_name!r}) over "
                f"{self.label or 'future map'}: {detail} "
                f"(origin: {error})",
                task_id=error.task_id,
                launch=error.launch,
                point=error.point,
                origin=error,
            )
        if not self._values:
            what = f"future map of {self.label!r}" if self.label else \
                "an empty future map"
            raise ValueError(
                f"reduce({op_name!r}) over {what}: the launch produced no "
                f"point values (empty domain?) — there is nothing to fold"
            )
        op = REDUCTION_OPS[op_name]
        acc = None
        for value in self._values.values():
            acc = value if acc is None else op.apply(acc, value)
        return acc

    def __len__(self) -> int:
        self._settle()
        return len(self._values)

    def __repr__(self) -> str:
        if self._error is not None:
            return "FutureMap(<poisoned>)"
        if self._point_errors:
            return (
                f"FutureMap(<{len(self._values)} points, "
                f"{len(self._point_errors)} poisoned>)"
            )
        return f"FutureMap(<{len(self._values)} points>)"
