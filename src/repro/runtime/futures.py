"""Futures: deferred task return values.

In the functional backend execution is synchronous, so futures are filled
boxes — but the API matches deferred-execution semantics so programs written
against it would behave identically under an asynchronous executor.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.domain import Point
from repro.data.privileges import REDUCTION_OPS

__all__ = ["Future", "FutureMap"]


class Future:
    """The eventual return value of a single task."""

    __slots__ = ("_value", "_filled")

    def __init__(self):
        self._value = None
        self._filled = False

    def set(self, value: Any) -> None:
        if self._filled:
            raise RuntimeError("future already filled")
        self._value = value
        self._filled = True

    def get(self) -> Any:
        """Block (trivially) until the value is available and return it."""
        if not self._filled:
            raise RuntimeError("future not yet filled")
        return self._value

    @property
    def done(self) -> bool:
        return self._filled

    def __repr__(self) -> str:
        return f"Future({self._value!r})" if self._filled else "Future(<pending>)"


class FutureMap:
    """Per-point return values of an index launch.

    ``reduce(op_name)`` folds every point's value with a commutative
    operator, matching Legion's future-map reductions (used e.g. for
    residual norms in iterative solvers).
    """

    __slots__ = ("_values",)

    def __init__(self):
        self._values: Dict[Point, Any] = {}

    def set(self, point: Point, value: Any) -> None:
        if point in self._values:
            raise RuntimeError(f"future map already holds a value for {point}")
        self._values[point] = value

    def get(self, point) -> Any:
        from repro.core.domain import coerce_point

        return self._values[coerce_point(point)]

    def reduce(self, op_name: str) -> Any:
        """Fold all point values with the named reduction operator."""
        if op_name not in REDUCTION_OPS:
            raise ValueError(f"unknown reduction {op_name!r}")
        op = REDUCTION_OPS[op_name]
        acc = None
        for value in self._values.values():
            acc = value if acc is None else op.apply(acc, value)
        return acc

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"FutureMap(<{len(self._values)} points>)"
