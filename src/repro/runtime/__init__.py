"""A Legion-like task runtime (Section 5).

Implements the four pipeline stages the paper describes — task issuance,
logical analysis, distribution, and physical analysis — with both execution
modes: dynamic control replication (DCR) and the original centralized mode.
Index launches flow through the pipeline as O(1) objects and are expanded
only after distribution; the No-IDX configurations expand them eagerly at
issuance, reproducing the paper's ablation.
"""

from repro.runtime.task import (
    Task,
    TaskContext,
    PhysicalRegion,
    PrivilegeError,
    task,
)
from repro.runtime.mapper import Mapper, DefaultMapper, CyclicMapper
from repro.runtime.runtime import Runtime, RuntimeConfig
from repro.runtime.futures import Future, FutureMap

__all__ = [
    "Task",
    "TaskContext",
    "PhysicalRegion",
    "PrivilegeError",
    "task",
    "Mapper",
    "DefaultMapper",
    "CyclicMapper",
    "Runtime",
    "RuntimeConfig",
    "Future",
    "FutureMap",
]
