"""Pipeline bookkeeping: per-stage representation and work counters.

The runtime pipeline has four phases relevant to index launches — task
issuance, logical analysis, distribution, and physical analysis (Section 5,
Figures 2 and 3).  :class:`PipelineStats` records, for each stage and node,
how many representation units were materialized (an unexpanded index launch
is one unit regardless of |D|; each individual task is one unit), plus the
work counters the evaluation reasons about (users analyzed, overlap queries,
messages sent, dynamic-check evaluations).

These counters are what the Figure 2/3 reproduction prints, and what the
machine model multiplies by calibrated per-unit costs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["Stage", "PipelineStats"]


class Stage:
    """The pipeline stages of Section 5 (string constants, not an enum, so
    stats keys stay trivially serializable)."""

    ISSUANCE = "issuance"
    LOGICAL = "logical"
    DISTRIBUTION = "distribution"
    PHYSICAL = "physical"
    EXECUTION = "execution"

    ALL = (ISSUANCE, LOGICAL, DISTRIBUTION, PHYSICAL, EXECUTION)


@dataclass
class PipelineStats:
    """Counters accumulated over a runtime's lifetime (or between resets)."""

    # (stage, node) -> representation units materialized at that stage
    representation: Dict[Tuple[str, int], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    ops_issued: int = 0                 # operations entering the pipeline
    index_launches: int = 0             # ... of which were index launches
    single_tasks: int = 0               # ... individual task launches
    tasks_executed: int = 0
    logical_users: int = 0              # region users processed logically
    logical_dependences: int = 0
    physical_dependences: int = 0
    overlap_queries: int = 0
    slice_messages: int = 0             # non-DCR broadcast-tree hops
    max_slice_depth: int = 0
    check_evaluations: int = 0          # dynamic projection-functor checks
    launches_verified_static: int = 0
    launches_verified_dynamic: int = 0
    launches_unverified: int = 0
    launches_fallback_serial: int = 0   # failed checks -> original task loop
    trace_replays: int = 0              # whole-trace replays (end_trace)
    trace_prefix_iterations: int = 0    # strict-prefix iterations (partial replay)
    launch_replays: int = 0             # per-launch trace-prefix matches
    analysis_cache_hits: int = 0        # launch-replay cache layer hits
    analysis_cache_invalidations: int = 0  # cache flushes/template drops
    launches_poisoned: int = 0          # ops lost to unrecovered faults
    poison_propagations: int = 0        # ... of which via dependence edges

    def add_representation(self, stage: str, node: int, units: int) -> None:
        if stage not in Stage.ALL:
            raise ValueError(f"unknown stage {stage!r}")
        self.representation[(stage, node)] += units

    def stage_total(self, stage: str) -> int:
        """Total representation units across nodes for one stage."""
        return sum(v for (s, _), v in self.representation.items() if s == stage)

    def node_total(self, node: int) -> int:
        """Total representation units across stages for one node."""
        return sum(v for (_, n), v in self.representation.items() if n == node)

    def max_units_any_node(self, stage: str) -> int:
        """Peak per-node representation at a stage — the quantity index
        launches keep O(1): no single node should hold the full expansion."""
        per_node = defaultdict(int)
        for (s, n), v in self.representation.items():
            if s == stage:
                per_node[n] += v
        return max(per_node.values(), default=0)

    def as_table(self) -> List[Tuple[str, int, int]]:
        """Rows of (stage, node, units), sorted for stable output."""
        return sorted(
            ((s, n, v) for (s, n), v in self.representation.items()),
            key=lambda row: (Stage.ALL.index(row[0]), row[1]),
        )

    #: scalar counters re-labeled by safety verdict when exported to metrics.
    _VERDICT_FIELDS = {
        "launches_verified_static": "static",
        "launches_verified_dynamic": "dynamic",
        "launches_unverified": "unverified",
        "launches_fallback_serial": "fallback",
    }

    def to_metrics(self, registry) -> None:
        """Load every counter into a metrics registry, values unchanged.

        The registry (duck-typed; see
        :class:`~repro.obs.metrics.MetricsRegistry`) subsumes the ad-hoc
        increments of this class: representation units become
        ``pipeline.representation_units{stage, node}``, the verdict
        counters become ``pipeline.launch_verdicts{verdict}``, and every
        other scalar becomes ``pipeline.<name>``.  Call on a fresh registry
        (or at end of run) — values are added, not assigned.
        """
        from dataclasses import fields

        for (stage, node), units in sorted(self.representation.items()):
            registry.inc(
                "pipeline.representation_units", units, stage=stage, node=node
            )
        for f in fields(self):
            if f.name == "representation":
                continue
            value = getattr(self, f.name)
            registry.inc(f"pipeline.{f.name}", value)
            verdict = self._VERDICT_FIELDS.get(f.name)
            if verdict is not None:
                registry.inc("pipeline.launch_verdicts", value, verdict=verdict)
