"""Legion-style tracing: memoization of repeated task-graph fragments [20].

Legion amortizes its dynamic dependence analysis by recording the analysis
of a repeated sequence of operations (a *trace*) and replaying it on
subsequent iterations.  Two properties matter for this paper:

1. Replayed iterations skip most of the logical/physical analysis cost —
   the machine model charges a much smaller per-task replay cost.
2. Tracing "works fundamentally at the level of individual tasks", so when
   DCR is disabled, tracing forces index launches to expand *before*
   distribution (the second column of Figure 3 never happens), undoing
   their asymptotic benefit — the effect demonstrated by Figures 5 vs 6.

The recorder below captures operation signatures between ``begin``/``end``
and reports whether an iteration is a replay of the recorded trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["TraceRecorder", "OpSignature"]

# (task uid, domain hash, requirement signature) — enough to recognize the
# "same" operation recurring across iterations.
OpSignature = Tuple


@dataclass
class _Trace:
    recorded: Optional[List[OpSignature]] = None  # None until first end()
    current: List[OpSignature] = field(default_factory=list)
    replays: int = 0
    broken: int = 0
    valid: bool = False  # whole prefix of the current iteration has matched


class TraceRecorder:
    """Records operation sequences per trace id and detects replays."""

    def __init__(self):
        self._traces: Dict[int, _Trace] = {}
        self._active: Optional[int] = None

    @property
    def active_trace(self) -> Optional[int]:
        return self._active

    def begin(self, trace_id: int) -> None:
        if self._active is not None:
            raise RuntimeError(f"trace {self._active} already active")
        self._active = trace_id
        trace = self._traces.setdefault(trace_id, _Trace())
        trace.current = []
        trace.valid = trace.recorded is not None

    def observe(self, signature: OpSignature) -> bool:
        """Record one operation; returns True when the *entire* iteration
        prefix (this operation included) matches the recorded trace — i.e.
        the analysis for it can be replayed.  Once an iteration diverges,
        every later operation of that iteration reports False too."""
        if self._active is None:
            return False
        trace = self._traces[self._active]
        trace.current.append(signature)
        if trace.recorded is None:
            return False
        idx = len(trace.current) - 1
        if not (idx < len(trace.recorded) and trace.recorded[idx] == signature):
            trace.valid = False
        return trace.valid

    def end(self, trace_id: int) -> bool:
        """Close the trace; returns True when the whole iteration replayed."""
        if self._active != trace_id:
            raise RuntimeError(f"trace {trace_id} is not active")
        self._active = None
        trace = self._traces[trace_id]
        if trace.recorded is None:
            trace.recorded = list(trace.current)
            return False
        if trace.recorded == trace.current:
            trace.replays += 1
            return True
        # The iteration diverged: re-record (Legion invalidates the trace).
        trace.broken += 1
        trace.recorded = list(trace.current)
        return False

    def replays(self, trace_id: int) -> int:
        return self._traces[trace_id].replays if trace_id in self._traces else 0

    def broken(self, trace_id: int) -> int:
        return self._traces[trace_id].broken if trace_id in self._traces else 0
