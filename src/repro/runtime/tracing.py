"""Legion-style tracing: memoization of repeated task-graph fragments [20].

Legion amortizes its dynamic dependence analysis by recording the analysis
of a repeated sequence of operations (a *trace*) and replaying it on
subsequent iterations.  Two properties matter for this paper:

1. Replayed iterations skip most of the logical/physical analysis cost —
   the machine model charges a much smaller per-task replay cost.
2. Tracing "works fundamentally at the level of individual tasks", so when
   DCR is disabled, tracing forces index launches to expand *before*
   distribution (the second column of Figure 3 never happens), undoing
   their asymptotic benefit — the effect demonstrated by Figures 5 vs 6.

The recorder below captures operation signatures between ``begin``/``end``
and reports whether an iteration is a replay of the recorded trace.

Iterations come in four kinds at ``end``:

* **first** — nothing recorded yet; the iteration becomes the trace.
* **replay** — the iteration equals the recorded trace exactly.
* **prefix** — the iteration is a *strict prefix* of the recorded trace:
  every operation it issued matched (and legitimately replayed its
  analysis), it just stopped early.  The recording is kept — a later full
  iteration still replays — and the iteration is counted in ``prefixes``,
  not ``broken``.  Classifying prefixes as broken (as a naive equality
  test would) contradicts ``observe``'s per-op replay reports and forces
  the runtime to discard physical dependence templates that were just
  validated.
* **broken** — the iteration diverged from the recording; it is re-recorded
  and counted in ``broken`` (Legion invalidates the trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["TraceRecorder", "OpSignature"]

# (task uid, domain hash, requirement signature) — enough to recognize the
# "same" operation recurring across iterations.
OpSignature = Tuple


@dataclass
class _Trace:
    recorded: Optional[List[OpSignature]] = None  # None until first end()
    current: List[OpSignature] = field(default_factory=list)
    replays: int = 0
    broken: int = 0
    prefixes: int = 0  # strict-prefix iterations (kept, not re-recorded)
    valid: bool = False  # whole prefix of the current iteration has matched


class TraceRecorder:
    """Records operation sequences per trace id and detects replays."""

    def __init__(self, profiler=None):
        self._traces: Dict[int, _Trace] = {}
        self._active: Optional[int] = None
        self._profiler = profiler

    @property
    def active_trace(self) -> Optional[int]:
        return self._active

    def begin(self, trace_id: int) -> None:
        if self._active is not None:
            raise RuntimeError(f"trace {self._active} already active")
        self._active = trace_id
        trace = self._traces.setdefault(trace_id, _Trace())
        trace.current = []
        trace.valid = trace.recorded is not None
        prof = self._profiler
        if prof is not None and prof.enabled:
            prof.instant("trace.begin", "tracing", trace_id=trace_id,
                         recorded_len=len(trace.recorded or ()))

    def observe(self, signature: OpSignature) -> bool:
        """Record one operation; returns True when the *entire* iteration
        prefix (this operation included) matches the recorded trace — i.e.
        the analysis for it can be replayed.  Once an iteration diverges,
        every later operation of that iteration reports False too."""
        if self._active is None:
            return False
        trace = self._traces[self._active]
        trace.current.append(signature)
        if trace.recorded is None:
            return False
        idx = len(trace.current) - 1
        if not (idx < len(trace.recorded) and trace.recorded[idx] == signature):
            trace.valid = False
        return trace.valid

    def end(self, trace_id: int) -> bool:
        """Close the trace; returns True when the whole iteration replayed.

        A strict-prefix iteration (every op matched but the iteration ended
        early) is *not* a break: every ``observe`` legitimately reported
        replay=True for it, so the recording is kept and the iteration is
        tallied in :meth:`prefixes`.  Only a genuine divergence re-records
        the trace and counts as broken.
        """
        if self._active != trace_id:
            raise RuntimeError(f"trace {trace_id} is not active")
        self._active = None
        trace = self._traces[trace_id]
        if trace.recorded is None:
            trace.recorded = list(trace.current)
            self._note_end(trace_id, "recorded")
            return False
        if trace.recorded == trace.current:
            trace.replays += 1
            self._note_end(trace_id, "replayed")
            return True
        if trace.valid and len(trace.current) < len(trace.recorded):
            # Strict prefix: all observed ops matched the recording, so the
            # per-op replays already reported were sound.  Keep the longer
            # recording so a later full iteration still replays whole.
            trace.prefixes += 1
            self._note_end(trace_id, "prefix")
            return False
        # The iteration diverged: re-record (Legion invalidates the trace).
        trace.broken += 1
        trace.recorded = list(trace.current)
        self._note_end(trace_id, "broken")
        return False

    def _note_end(self, trace_id: int, verdict: str) -> None:
        prof = self._profiler
        if prof is not None and prof.enabled:
            prof.instant("trace.end", "tracing", trace_id=trace_id,
                         verdict=verdict)
            prof.count("trace.iterations", 1.0, verdict=verdict)

    def replays(self, trace_id: int) -> int:
        return self._traces[trace_id].replays if trace_id in self._traces else 0

    def broken(self, trace_id: int) -> int:
        return self._traces[trace_id].broken if trace_id in self._traces else 0

    def prefixes(self, trace_id: int) -> int:
        """Strict-prefix iterations observed for ``trace_id`` (see ``end``)."""
        return self._traces[trace_id].prefixes if trace_id in self._traces else 0
