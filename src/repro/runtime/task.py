"""Tasks, task registration, and privilege-enforcing region accessors.

A task is "just a function marked for parallel execution by the user"
(Section 2).  Tasks declare privileges on each collection parameter; the
declarations are verified at *execution* time by :class:`PhysicalRegion`,
which refuses reads/writes/reductions the privilege does not permit —
standing in for Regent's compile-time privilege checking [26].

Task bodies have the signature::

    @task(privileges=["reads", "reads writes"])
    def step(ctx, inputs, outputs, dt):
        ...

where ``ctx`` is a :class:`TaskContext`, one :class:`PhysicalRegion` is
passed per declared privilege, and remaining parameters are by-value
arguments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.domain import Point
from repro.data.collection import Subregion
from repro.data.privileges import Privilege, PrivilegeSpec

__all__ = ["Task", "TaskContext", "PhysicalRegion", "PrivilegeError", "task"]

_next_task_id = itertools.count()


class PrivilegeError(RuntimeError):
    """A task accessed a region in a way its declared privilege forbids."""


class PhysicalRegion:
    """A task's view of one subregion, gated by the declared privilege.

    Mirrors Legion's physical instance accessors: ``read``/``read_nd``
    require a reading privilege, ``write``/``fill`` a writing one, and
    ``reduce`` exactly the declared reduction operator.
    """

    __slots__ = ("subregion", "privilege", "fields")

    def __init__(self, subregion: Subregion, privilege: PrivilegeSpec,
                 fields: Tuple[str, ...]):
        self.subregion = subregion
        self.privilege = privilege
        self.fields = fields

    # ------------------------------------------------------------- queries
    @property
    def volume(self) -> int:
        """Number of objects visible through this accessor."""
        return self.subregion.volume

    @property
    def color(self) -> Optional[Point]:
        """The subregion's color within its partition."""
        return self.subregion.color

    def bounds(self):
        """Rect bounds for rectangular subregions."""
        return self.subregion.subset.rect

    def linear_indices(self) -> np.ndarray:
        """The subregion's sorted linear indices within its region."""
        return self.subregion.subset.linear_indices(self.subregion.region.bounds)

    def locate(self, global_ids: np.ndarray) -> np.ndarray:
        """Positions of ``global_ids`` within this subregion's index list.

        Unstructured apps address objects by global id (e.g. a wire's
        endpoint node); ``locate`` translates those ids to offsets into the
        arrays returned by :meth:`read`.  Raises :class:`PrivilegeError`
        when an id is not covered by the subregion — accessing data outside
        the declared requirement.
        """
        idx = self.linear_indices()
        pos = np.searchsorted(idx, global_ids)
        valid = (pos < len(idx)) & (idx[np.minimum(pos, len(idx) - 1)] == global_ids)
        if not np.all(valid):
            bad = np.asarray(global_ids)[~valid]
            raise PrivilegeError(
                f"ids {bad[:5]}... are outside subregion {self.subregion!r}"
            )
        return pos

    def _check_field(self, fname: str) -> None:
        if fname not in self.fields:
            raise PrivilegeError(
                f"field {fname!r} not among declared fields {self.fields}"
            )

    # -------------------------------------------------------------- access
    def read(self, fname: str) -> np.ndarray:
        self._check_field(fname)
        if not self.privilege.privilege.reads:
            raise PrivilegeError(
                f"task holds {self.privilege!r} on {self.subregion!r}; read denied"
            )
        return self.subregion.read(fname)

    def read_nd(self, fname: str) -> np.ndarray:
        self._check_field(fname)
        if not self.privilege.privilege.reads:
            raise PrivilegeError(
                f"task holds {self.privilege!r} on {self.subregion!r}; read denied"
            )
        return self.subregion.read_nd(fname)

    def write(self, fname: str, values) -> None:
        self._check_field(fname)
        if self.privilege.privilege not in (Privilege.WRITE, Privilege.READ_WRITE):
            raise PrivilegeError(
                f"task holds {self.privilege!r} on {self.subregion!r}; write denied"
            )
        self.subregion.write(fname, values)

    def write_nd(self, fname: str, values) -> None:
        """Write through the N-D view (rect subsets only)."""
        self._check_field(fname)
        if self.privilege.privilege not in (Privilege.WRITE, Privilege.READ_WRITE):
            raise PrivilegeError(
                f"task holds {self.privilege!r} on {self.subregion!r}; write denied"
            )
        self.subregion.read_nd(fname)[...] = values

    def fill(self, fname: str, value) -> None:
        self._check_field(fname)
        if self.privilege.privilege not in (Privilege.WRITE, Privilege.READ_WRITE):
            raise PrivilegeError(
                f"task holds {self.privilege!r} on {self.subregion!r}; fill denied"
            )
        self.subregion.fill(fname, value)

    def reduce(self, fname: str, values) -> None:
        self._check_field(fname)
        if self.privilege.privilege is not Privilege.REDUCE:
            raise PrivilegeError(
                f"task holds {self.privilege!r} on {self.subregion!r}; reduce denied"
            )
        self.subregion.reduce(fname, values, self.privilege.redop)

    def __repr__(self) -> str:
        return f"PhysicalRegion({self.subregion!r}, {self.privilege!r})"


@dataclass
class TaskContext:
    """Execution context handed to every task body.

    Attributes:
        point: the task's point in its index launch's domain (None for
            single launches).
        node: the simulated node the task was mapped to (0 in purely local
            runs).
        runtime: the owning runtime, for nested launches (optional feature).
    """

    point: Optional[Point] = None
    node: int = 0
    runtime: Any = None


class Task:
    """A registered task: a function plus privilege declarations.

    Args:
        fn: the task body ``fn(ctx, *physical_regions, *args)``.
        privileges: one privilege spec (string or :class:`PrivilegeSpec`)
            per collection parameter, in positional order.
        name: defaults to the function name.
        fields: optional per-parameter field tuples restricting access;
            ``None`` entries mean "all fields".
        cost: optional callable ``(task_launch) -> seconds`` giving the
            simulated execution time of one instance (used by the machine
            model; ignored by functional execution).
    """

    def __init__(
        self,
        fn: Callable,
        privileges: Sequence[Union[str, PrivilegeSpec]],
        name: Optional[str] = None,
        fields: Optional[Sequence[Optional[Sequence[str]]]] = None,
        cost: Optional[Callable] = None,
    ):
        self.fn = fn
        self.uid = next(_next_task_id)
        self.name = name or fn.__name__
        self.privileges: List[PrivilegeSpec] = [
            p if isinstance(p, PrivilegeSpec) else PrivilegeSpec.parse(p)
            for p in privileges
        ]
        if fields is not None and len(fields) != len(self.privileges):
            raise ValueError("fields must align with privileges")
        self.fields: List[Optional[Tuple[str, ...]]] = (
            [tuple(f) if f is not None else None for f in fields]
            if fields is not None
            else [None] * len(self.privileges)
        )
        self.cost = cost

    @property
    def n_region_params(self) -> int:
        """How many collection parameters the task declares."""
        return len(self.privileges)

    def __call__(self, ctx: TaskContext, *args) -> Any:
        return self.fn(ctx, *args)

    def __repr__(self) -> str:
        privs = ", ".join(repr(p) for p in self.privileges)
        return f"Task({self.name!r}, [{privs}])"


def task(
    privileges: Sequence[Union[str, PrivilegeSpec]],
    name: Optional[str] = None,
    fields: Optional[Sequence[Optional[Sequence[str]]]] = None,
    cost: Optional[Callable] = None,
) -> Callable[[Callable], Task]:
    """Decorator form of task registration::

        @task(privileges=["reads", "writes"])
        def saxpy(ctx, x, y, alpha): ...
    """

    def register(fn: Callable) -> Task:
        return Task(fn, privileges=privileges, name=name, fields=fields, cost=cost)

    return register
