"""Privileges and reduction operators (Section 2).

Tasks must declare a privilege on each collection argument: ``READ``,
``WRITE``, ``READ_WRITE``, or ``REDUCE`` with a commutative operator.
Privileges drive both the safety analysis of index launches (Section 3) and
the computation of inter-launch data dependencies (Section 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

__all__ = ["Privilege", "ReductionOp", "REDUCTION_OPS", "PrivilegeSpec"]


class Privilege(enum.Enum):
    """Access privilege a task declares on a collection argument."""

    READ = "reads"
    WRITE = "writes"
    READ_WRITE = "reads writes"
    REDUCE = "reduces"

    @property
    def is_read_only(self) -> bool:
        """True for READ: may share data freely with other readers."""
        return self is Privilege.READ

    @property
    def writes(self) -> bool:
        """True when the privilege may mutate data (WRITE/READ_WRITE/REDUCE)."""
        return self is not Privilege.READ

    @property
    def reads(self) -> bool:
        """True when the privilege observes prior data (READ/READ_WRITE)."""
        return self in (Privilege.READ, Privilege.READ_WRITE)


@dataclass(frozen=True)
class ReductionOp:
    """A commutative, associative reduction operator.

    ``apply`` folds a contribution into the current value elementwise;
    ``identity`` is the operator's unit.  Commutativity is what lets
    same-operator reductions from parallel tasks interleave safely
    (cross-check rule 1 of Section 3).
    """

    name: str
    apply: Callable[[np.ndarray, np.ndarray], np.ndarray]
    identity: float

    def __repr__(self) -> str:
        return f"ReductionOp({self.name!r})"


REDUCTION_OPS: Dict[str, ReductionOp] = {
    "+": ReductionOp("+", lambda acc, v: acc + v, 0.0),
    "*": ReductionOp("*", lambda acc, v: acc * v, 1.0),
    "min": ReductionOp("min", np.minimum, float("inf")),
    "max": ReductionOp("max", np.maximum, float("-inf")),
}


@dataclass(frozen=True)
class PrivilegeSpec:
    """A privilege plus its reduction operator when ``privilege`` is REDUCE."""

    privilege: Privilege
    redop: Optional[ReductionOp] = None

    def __post_init__(self):
        if self.privilege is Privilege.REDUCE and self.redop is None:
            raise ValueError("REDUCE privilege requires a reduction operator")
        if self.privilege is not Privilege.REDUCE and self.redop is not None:
            raise ValueError("only REDUCE privileges carry a reduction operator")

    @classmethod
    def parse(cls, spec: str) -> "PrivilegeSpec":
        """Parse ``"reads"``, ``"writes"``, ``"reads writes"``, or ``"reduces +"``."""
        spec = spec.strip()
        if spec.startswith("reduce"):
            parts = spec.split()
            if len(parts) != 2 or parts[1] not in REDUCTION_OPS:
                raise ValueError(
                    f"reduction spec must be 'reduces <op>' with op in "
                    f"{sorted(REDUCTION_OPS)}, got {spec!r}"
                )
            return cls(Privilege.REDUCE, REDUCTION_OPS[parts[1]])
        normalized = " ".join(sorted(spec.split(), reverse=True))
        table = {
            "reads": Privilege.READ,
            "writes": Privilege.WRITE,
            "reads writes": Privilege.READ_WRITE,
            "writes reads": Privilege.READ_WRITE,
        }
        if spec in table:
            return cls(table[spec])
        if normalized in table:
            return cls(table[normalized])
        raise ValueError(f"unknown privilege spec {spec!r}")

    def compatible_with(self, other: "PrivilegeSpec") -> bool:
        """Whether two parallel accesses under these privileges never interfere.

        True when both are read-only, or both are reductions with the same
        operator (Section 3, cross-check rule 1).
        """
        if self.privilege.is_read_only and other.privilege.is_read_only:
            return True
        if (
            self.privilege is Privilege.REDUCE
            and other.privilege is Privilege.REDUCE
            and self.redop is not None
            and other.redop is not None
            and self.redop.name == other.redop.name
        ):
            return True
        return False

    def __repr__(self) -> str:
        if self.privilege is Privilege.REDUCE:
            return f"PrivilegeSpec(reduces {self.redop.name})"
        return f"PrivilegeSpec({self.privilege.value})"
