"""Partitions: named divisions of a collection into subregions (Section 2).

Partitions may be *disjoint* (no object in two subregions — e.g. the dense
blocks a stencil computes) or *aliased* (overlapping — e.g. the halos around
each block).  Disjointness is the property the safety analysis of Section 3
consumes; it is either known by construction (block/equal partitioners) or
verified by counting duplicate indices (:meth:`Partition.verify_disjointness`),
standing in for the paper's assumption that "the compiler and runtime have a
procedure for determining the disjointness of partitions".

Dependent partitioners (:func:`image_partition`, :func:`preimage_partition`,
and the color-wise set operations) follow Treichler et al. [29] and are what
the Circuit application uses to derive private/shared/ghost node sets from
an unstructured graph.
"""

from __future__ import annotations

import itertools
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.domain import Domain, Point, Rect, coerce_point
from repro.data.collection import (
    IndexSubset,
    RectSubset,
    Region,
    SparseSubset,
    Subregion,
)

__all__ = [
    "Partition",
    "equal_partition",
    "block_partition",
    "explicit_partition",
    "partition_by_field",
    "image_partition",
    "preimage_partition",
    "partition_difference",
    "partition_intersection",
    "partition_union",
]

_next_partition_id = itertools.count()


class Partition:
    """A partition of a region: a map from colors to subregions.

    Args:
        name: human-readable label.
        region: the parent collection.
        color_space: domain of colors.
        subsets: mapping from color point to :class:`IndexSubset`.  Every
            color in ``color_space`` must be present (possibly empty).
        disjoint: declared disjointness; ``None`` defers to verification on
            first query.
    """

    def __init__(
        self,
        name: str,
        region: Region,
        color_space: Domain,
        subsets: Mapping[Point, IndexSubset],
        disjoint: Optional[bool] = None,
        parent_subregion: Optional[Subregion] = None,
    ):
        self.name = name
        self.uid = next(_next_partition_id)
        self.region = region
        self.color_space = color_space
        #: for nested partitions (the Legion region tree): the subregion
        #: this partition subdivides; None for partitions of the root.
        self.parent_subregion = parent_subregion
        missing = [c for c in color_space if c not in subsets]
        if missing:
            raise ValueError(f"partition {name!r} missing colors {missing[:4]}...")
        self._subregions: Dict[Point, Subregion] = {
            color: Subregion(region, subsets[color], color, self)
            for color in color_space
        }
        self._disjoint = disjoint
        region.partitions.append(self)

    # ------------------------------------------------------------- queries
    @property
    def n_colors(self) -> int:
        """Number of subregions (|P| in the paper's complexity analysis)."""
        return self.color_space.volume

    @property
    def color_bounds(self) -> Rect:
        """Bounding rectangle of the color space (sizes the check bitmask)."""
        return self.color_space.bounds

    @property
    def disjoint(self) -> bool:
        """Whether no object belongs to two subregions (verified lazily)."""
        if self._disjoint is None:
            self._disjoint = self.verify_disjointness()
        return self._disjoint

    def validate_containment(self) -> bool:
        """For nested partitions: every subset lies within the parent
        subregion (trivially true for root partitions)."""
        if self.parent_subregion is None:
            return True
        parent = self.parent_subregion.subset
        bounds = self.region.bounds
        return all(
            parent.covers(sub.subset, bounds) for sub in self._subregions.values()
        )

    def verify_disjointness(self) -> bool:
        """Recompute disjointness by counting duplicate linear indices."""
        total = 0
        chunks = []
        for sub in self._subregions.values():
            idx = sub.subset.linear_indices(self.region.bounds)
            total += len(idx)
            chunks.append(idx)
        if not total:
            return True
        merged = np.concatenate(chunks)
        return len(np.unique(merged)) == total

    def __getitem__(self, color) -> Subregion:
        return self._subregions[coerce_point(color, self.color_space.dim)]

    def subregion(self, color) -> Subregion:
        """The subregion with the given color."""
        return self[color]

    def subregions(self) -> Iterable[Subregion]:
        """All subregions in color-space order."""
        return (self._subregions[c] for c in self.color_space)

    def __iter__(self):
        return iter(self.color_space)

    def ancestry(self) -> List[Tuple[int, "Point", bool]]:
        """The chain of (partition uid, color, disjoint) from the root down
        to (and excluding) this partition — the region-tree path."""
        chain: List[Tuple[int, Point, bool]] = []
        sub = self.parent_subregion
        while sub is not None and sub.partition is not None:
            part = sub.partition
            chain.append((part.uid, sub.color, part.disjoint))
            sub = part.parent_subregion
        chain.reverse()
        return chain

    def disjoint_from(self, other: "Partition") -> bool:
        """Whether every subregion of ``self`` is provably disjoint from
        every subregion of ``other`` by region-tree reasoning: the two
        partitions descend from *different colors* of a common *disjoint*
        ancestor partition (or live in different regions entirely).

        This is the generalized form of the paper's cross-check rule 2
        ("partitions of collections that are themselves disjoint") — a
        subregion of a disjoint partition is itself a collection disjoint
        from its siblings.
        """
        if self.region.uid != other.region.uid:
            return True
        mine = {(uid): (color, dj) for uid, color, dj in self.ancestry()}
        for uid, color, dj in other.ancestry():
            if uid in mine:
                my_color, my_dj = mine[uid]
                if dj and my_color != color:
                    return True
        return False

    def __repr__(self) -> str:
        kind = (
            "disjoint" if self._disjoint else
            "aliased" if self._disjoint is not None else "unverified"
        )
        return (
            f"Partition({self.name!r} of {self.region.name!r}, "
            f"{self.n_colors} colors, {kind})"
        )


# ---------------------------------------------------------------- builders

def _as_parent(parent) -> Tuple[Region, Optional[Subregion]]:
    """Normalize a Region-or-Subregion parent for the partition builders."""
    if isinstance(parent, Region):
        return parent, None
    if isinstance(parent, Subregion):
        return parent.region, parent
    raise TypeError(f"parent must be a Region or Subregion, got {parent!r}")


def equal_partition(name: str, parent, n: int) -> Partition:
    """Split a 1-D region (or rectangular subregion) into ``n`` nearly-equal
    contiguous chunks (disjoint).  Passing a subregion creates a *nested*
    partition — a deeper level of the region tree."""
    region, parent_sub = _as_parent(parent)
    if parent_sub is None:
        bounds = region.bounds
        size = region.volume
    else:
        if not isinstance(parent_sub.subset, RectSubset):
            return _equal_sparse(name, region, parent_sub, n)
        bounds = parent_sub.subset.rect
        size = bounds.volume
    if bounds.dim != 1:
        raise ValueError("equal_partition requires a 1-D parent; use block_partition")
    if n <= 0:
        raise ValueError("n must be positive")
    lo = bounds.lo[0]
    base, extra = divmod(size, n)
    subsets: Dict[Point, IndexSubset] = {}
    start = lo
    for c in range(n):
        count = base + (1 if c < extra else 0)
        subsets[Point(c)] = RectSubset(Rect(Point(start), Point(start + count - 1)))
        start += count
    return Partition(name, region, Domain.range(n), subsets, disjoint=True,
                     parent_subregion=parent_sub)


def _equal_sparse(name: str, region: Region, parent_sub: Subregion,
                  n: int) -> Partition:
    """Equal split of a sparse subregion's index list."""
    if n <= 0:
        raise ValueError("n must be positive")
    idx = parent_sub.subset.linear_indices(region.bounds)
    subsets: Dict[Point, IndexSubset] = {}
    base, extra = divmod(len(idx), n)
    start = 0
    for c in range(n):
        count = base + (1 if c < extra else 0)
        subsets[Point(c)] = SparseSubset(idx[start:start + count])
        start += count
    return Partition(name, region, Domain.range(n), subsets, disjoint=True,
                     parent_subregion=parent_sub)


def block_partition(
    name: str,
    parent,
    blocks: Sequence[int],
    halo: int = 0,
) -> Partition:
    """Tile an N-D region (or rectangular subregion) into ``blocks`` tiles.

    With ``halo == 0`` the tiles are disjoint (a stencil's compute blocks).
    With ``halo > 0`` each tile is grown by ``halo`` in every direction and
    clamped to the parent bounds — an *aliased* partition (the stencil's
    ghost halos).  Passing a subregion creates a nested partition.
    """
    region, parent_sub = _as_parent(parent)
    if parent_sub is not None and not isinstance(parent_sub.subset, RectSubset):
        raise ValueError("block_partition requires a rectangular parent")
    bounds = region.bounds if parent_sub is None else parent_sub.subset.rect
    dim = bounds.dim
    blocks = tuple(int(b) for b in blocks)
    if len(blocks) != dim:
        raise ValueError(f"blocks must have {dim} entries")
    if any(b <= 0 for b in blocks):
        raise ValueError("block counts must be positive")
    extents = bounds.extents
    lo = bounds.lo
    hi = bounds.hi
    subsets: Dict[Point, IndexSubset] = {}
    color_space = Domain.rect([0] * dim, [b - 1 for b in blocks])
    for color in color_space:
        blo, bhi = [], []
        for d in range(dim):
            base, extra = divmod(extents[d], blocks[d])
            c = color[d]
            start = lo[d] + c * base + min(c, extra)
            count = base + (1 if c < extra else 0)
            end = start + count - 1
            blo.append(max(lo[d], start - halo))
            bhi.append(min(hi[d], end + halo))
        subsets[color] = RectSubset(Rect(Point(*blo), Point(*bhi)))
    return Partition(name, region, color_space, subsets, disjoint=(halo == 0),
                     parent_subregion=parent_sub)


def explicit_partition(
    name: str,
    region: Region,
    subsets: Mapping,
    disjoint: Optional[bool] = None,
) -> Partition:
    """Build a partition from an explicit color -> subset mapping.

    Subset values may be :class:`IndexSubset`, :class:`Rect`, or iterables of
    points/linear indices.
    """
    normalized: Dict[Point, IndexSubset] = {}
    colors = []
    for color, subset in subsets.items():
        cpt = coerce_point(color)
        colors.append(cpt)
        if isinstance(subset, IndexSubset):
            normalized[cpt] = subset
        elif isinstance(subset, Rect):
            normalized[cpt] = RectSubset(subset)
        elif isinstance(subset, np.ndarray) and subset.ndim == 1 and subset.dtype.kind in "iu":
            normalized[cpt] = SparseSubset(subset)
        else:
            normalized[cpt] = SparseSubset.from_points(subset, region.bounds)
    return Partition(name, region, Domain.points(colors), normalized, disjoint=disjoint)


def partition_by_field(
    name: str, region: Region, field: str, n_colors: int
) -> Partition:
    """Partition by an integer field holding each object's color (disjoint).

    Objects whose field value falls outside ``[0, n_colors)`` belong to no
    subregion.
    """
    values = region.storage(field)
    if values.dtype.kind not in "iu":
        raise ValueError("partition_by_field requires an integer field")
    order = np.argsort(values, kind="stable")
    sorted_vals = values[order]
    subsets: Dict[Point, IndexSubset] = {}
    for c in range(n_colors):
        lo = np.searchsorted(sorted_vals, c, side="left")
        hi = np.searchsorted(sorted_vals, c, side="right")
        subsets[Point(c)] = SparseSubset(order[lo:hi])
    return Partition(name, region, Domain.range(n_colors), subsets, disjoint=True)


def image_partition(
    name: str,
    src_partition: Partition,
    field: str,
    dst_region: Region,
) -> Partition:
    """Dependent partition: color c gets the *image* of ``src_partition[c]``
    through a pointer ``field`` (values are linear indices into ``dst_region``).

    Generally aliased: multiple source subregions may point at the same
    destination objects (e.g. circuit wires from different pieces sharing an
    endpoint node).
    """
    subsets: Dict[Point, IndexSubset] = {}
    for color in src_partition.color_space:
        ptrs = src_partition[color].read(field)
        if len(ptrs) and (ptrs.min() < 0 or ptrs.max() >= dst_region.volume):
            raise ValueError(f"pointer field {field!r} out of range for {dst_region}")
        subsets[color] = SparseSubset(ptrs)
    return Partition(
        name, dst_region, src_partition.color_space, subsets, disjoint=None
    )


def preimage_partition(
    name: str,
    src_region: Region,
    field: str,
    dst_partition: Partition,
) -> Partition:
    """Dependent partition: color c gets the source objects whose ``field``
    points into ``dst_partition[c]``.

    Disjoint whenever ``dst_partition`` is disjoint (each pointer value lands
    in at most one destination subregion).
    """
    ptrs = src_region.storage(field)
    subsets: Dict[Point, IndexSubset] = {}
    for color in dst_partition.color_space:
        dst_idx = dst_partition[color].subset.linear_indices(
            dst_partition.region.bounds
        )
        mask = np.isin(ptrs, dst_idx)
        subsets[color] = SparseSubset(np.nonzero(mask)[0])
    return Partition(
        name,
        src_region,
        dst_partition.color_space,
        subsets,
        disjoint=True if dst_partition.disjoint else None,
    )


# -------------------------------------------------- color-wise set algebra

def _colorwise(
    name: str,
    a: Partition,
    b: Partition,
    combine: Callable[[np.ndarray, np.ndarray], np.ndarray],
    disjoint: Optional[bool],
) -> Partition:
    if a.region.uid != b.region.uid:
        raise ValueError("set operations require partitions of the same region")
    if a.color_space != b.color_space:
        raise ValueError("set operations require identical color spaces")
    bounds = a.region.bounds
    subsets: Dict[Point, IndexSubset] = {}
    for color in a.color_space:
        ia = a[color].subset.linear_indices(bounds)
        ib = b[color].subset.linear_indices(bounds)
        subsets[color] = SparseSubset(combine(ia, ib))
    return Partition(name, a.region, a.color_space, subsets, disjoint=disjoint)


def partition_difference(name: str, a: Partition, b: Partition) -> Partition:
    """Color-wise ``a[c] \\ b[c]``; disjoint when ``a`` is disjoint."""
    return _colorwise(
        name, a, b, lambda ia, ib: np.setdiff1d(ia, ib),
        disjoint=True if a.disjoint else None,
    )


def partition_intersection(name: str, a: Partition, b: Partition) -> Partition:
    """Color-wise ``a[c] & b[c]``; disjoint when either input is disjoint."""
    return _colorwise(
        name, a, b, lambda ia, ib: np.intersect1d(ia, ib),
        disjoint=True if (a.disjoint or b.disjoint) else None,
    )


def partition_union(name: str, a: Partition, b: Partition) -> Partition:
    """Color-wise ``a[c] | b[c]``; disjointness unknown in general."""
    return _colorwise(name, a, b, lambda ia, ib: np.union1d(ia, ib), disjoint=None)
