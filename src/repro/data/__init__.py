"""Data model: collections (regions), partitions, and privileges (Section 2).

Collections are numpy-backed, field-structured stores of objects indexed by
N-D points.  Partitions name subsets of a collection's index space and may
be disjoint or aliased; subregions are *views* onto the same underlying
data, so multiple partitions of one collection see each other's writes.
"""

from repro.data.privileges import Privilege, ReductionOp, REDUCTION_OPS
from repro.data.fields import FieldSpace
from repro.data.collection import Region, Subregion
from repro.data.partition import (
    Partition,
    equal_partition,
    block_partition,
    explicit_partition,
    partition_by_field,
    image_partition,
    preimage_partition,
)

__all__ = [
    "Privilege",
    "ReductionOp",
    "REDUCTION_OPS",
    "FieldSpace",
    "Region",
    "Subregion",
    "Partition",
    "equal_partition",
    "block_partition",
    "explicit_partition",
    "partition_by_field",
    "image_partition",
    "preimage_partition",
]
