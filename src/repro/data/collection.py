"""Collections (regions) and subregions.

A :class:`Region` is a collection in the paper's sense: an indexed set of
objects with named fields, backed by numpy arrays.  Regions are the primary
way to pass large data to tasks.  Subregions — created by partitioning — are
*views* onto the parent's storage: writes through one partition are visible
through every other partition of the same region.

Subsets come in two flavours, mirroring the structured/unstructured split in
the paper's applications:

* rectangular (:class:`RectSubset`) — dense blocks and halos (Stencil, Soleil);
* point sets (:class:`SparseSubset`) — arbitrary element lists (Circuit's
  private/shared/ghost node sets on an unstructured graph).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.domain import Point, Rect, coerce_point
from repro.data.fields import FieldSpace
from repro.data.privileges import ReductionOp

__all__ = ["Region", "Subregion", "IndexSubset", "RectSubset", "SparseSubset"]

_next_region_id = itertools.count()
_next_subset_id = itertools.count()


class IndexSubset:
    """Abstract subset of a region's index space.

    Every subset carries a monotonically increasing ``uid`` assigned at
    construction.  Unlike ``id()``, a uid is never reused after garbage
    collection and survives pickling, so it is safe to use as an identity
    token in footprint keys and cross-process shard plans.
    """

    def __init__(self):
        self.uid = next(_next_subset_id)

    def volume(self) -> int:
        raise NotImplementedError

    def linear_indices(self, bounds: Rect) -> np.ndarray:
        """Row-major linear indices of the subset within ``bounds``."""
        raise NotImplementedError

    def overlaps(self, other: "IndexSubset", bounds: Rect) -> bool:
        """Whether the two subsets share any point of the same index space."""
        if isinstance(self, RectSubset) and isinstance(other, RectSubset):
            return self.rect.overlaps(other.rect)
        a = self.linear_indices(bounds)
        b = other.linear_indices(bounds)
        if len(a) == 0 or len(b) == 0:
            return False
        return bool(np.isin(a, b, assume_unique=False).any())

    def covers(self, other: "IndexSubset", bounds: Rect) -> bool:
        """Whether every point of ``other`` is contained in ``self``."""
        if isinstance(self, RectSubset) and isinstance(other, RectSubset):
            return self.rect.contains_rect(other.rect)
        a = self.linear_indices(bounds)
        b = other.linear_indices(bounds)
        if len(b) == 0:
            return True
        if len(a) == 0:
            return False
        return bool(np.isin(b, a, assume_unique=False).all())


class RectSubset(IndexSubset):
    """A dense rectangular subset."""

    __slots__ = ("rect", "_linear_cache")

    def __init__(self, rect: Rect):
        super().__init__()
        self.rect = rect
        self._linear_cache = None

    def volume(self) -> int:
        return self.rect.volume

    def linear_indices(self, bounds: Rect) -> np.ndarray:
        # Pure in (rect, bounds) and recomputed on every replay's footprint
        # build, so memoize per instance (subregion objects are stable
        # across reissues).  The cached array is frozen: every consumer
        # only indexes with it, and freezing turns an accidental in-place
        # mutation into an error instead of silent cache corruption.
        cached = self._linear_cache
        if cached is not None and (cached[0] is bounds or cached[0] == bounds):
            return cached[1]
        if self.rect.empty:
            return np.empty(0, dtype=np.int64)
        if not bounds.contains_rect(self.rect):
            raise ValueError(f"{self.rect} not contained in region bounds {bounds}")
        axes = [
            np.arange(l - bl, h - bl + 1, dtype=np.int64)
            for l, h, bl in zip(self.rect.lo, self.rect.hi, bounds.lo)
        ]
        extents = bounds.extents
        strides = np.ones(len(extents), dtype=np.int64)
        for d in range(len(extents) - 2, -1, -1):
            strides[d] = strides[d + 1] * extents[d + 1]
        grids = np.meshgrid(*axes, indexing="ij")
        linear = np.asarray(
            sum(g.ravel() * s for g, s in zip(grids, strides)), dtype=np.int64
        )
        linear.flags.writeable = False
        self._linear_cache = (bounds, linear)
        return linear

    def __getstate__(self):
        # The memoized index array must not ride along in pickled shard
        # plans (it can dwarf the descriptor-sized plan the shm transport
        # works to keep small); workers rebuild it on demand.
        return (dict(self.__dict__), {"rect": self.rect})

    def __setstate__(self, state):
        d, slots = state
        self.__dict__.update(d)
        self.rect = slots["rect"]
        self._linear_cache = None

    def __repr__(self) -> str:
        return f"RectSubset({self.rect!r})"


class SparseSubset(IndexSubset):
    """An explicit point set, stored as sorted unique linear indices.

    The linear indices are relative to the owning region's bounds, which must
    be supplied at construction (so equality and overlap are well-defined).
    """

    __slots__ = ("indices",)

    def __init__(self, linear: np.ndarray):
        super().__init__()
        arr = np.unique(np.asarray(linear, dtype=np.int64))
        self.indices = arr

    @classmethod
    def from_points(cls, points: Iterable, bounds: Rect) -> "SparseSubset":
        linear = [bounds.linearize(coerce_point(p, bounds.dim)) for p in points]
        return cls(np.asarray(linear, dtype=np.int64))

    def volume(self) -> int:
        return int(len(self.indices))

    def linear_indices(self, bounds: Rect) -> np.ndarray:
        return self.indices

    def __repr__(self) -> str:
        return f"SparseSubset(<{len(self.indices)} indices>)"


#: Callbacks fired before any region storage read while an execution
#: backend holds uncommitted (pipelined-ahead) launches, so direct data
#: access always observes fully-committed state.  Installed/removed by
#: :class:`~repro.exec.parallel.ParallelBackend`; empty — the common case,
#: one falsy check per access — whenever nothing is in flight.
_DRAIN_HOOKS: list = []


class Region:
    """A top-level collection: an N-D index space with named, typed fields.

    Storage is struct-of-arrays: each field is a flat numpy array of length
    ``bounds.volume`` (row-major).  Two distinct top-level regions are always
    disjoint collections — the runtime's whole-partition logical analysis
    relies on this (Section 5).
    """

    def __init__(self, name: str, bounds: Rect, fields: Union[FieldSpace, Dict]):
        self.name = name
        self.uid = next(_next_region_id)
        self.bounds = bounds
        self.fields = fields if isinstance(fields, FieldSpace) else FieldSpace(fields)
        self._storage: Dict[str, np.ndarray] = {
            fname: np.zeros(bounds.volume, dtype=dt) for fname, dt in self.fields.items()
        }
        self.partitions: list = []  # populated by Partition.__init__

    @property
    def volume(self) -> int:
        """Number of objects in the collection."""
        return self.bounds.volume

    def storage(self, field: str) -> np.ndarray:
        """The flat backing array for ``field`` (length ``volume``)."""
        if _DRAIN_HOOKS:
            for hook in list(_DRAIN_HOOKS):
                hook()
        return self._storage[field]

    def field_nd(self, field: str) -> np.ndarray:
        """The backing array reshaped to the region's N-D extents (a view)."""
        if _DRAIN_HOOKS:
            for hook in list(_DRAIN_HOOKS):
                hook()
        return self._storage[field].reshape(self.bounds.extents)

    def fill(self, field: str, value) -> None:
        """Fill every point's ``field`` with ``value``."""
        self.storage(field)[:] = value

    def root_subregion(self) -> "Subregion":
        """The whole region viewed as a subregion (color None)."""
        return Subregion(self, RectSubset(self.bounds), color=None, partition=None)

    def __repr__(self) -> str:
        return (
            f"Region({self.name!r}, bounds={self.bounds!r}, "
            f"fields={list(self.fields.names)})"
        )


class Subregion:
    """A named subset of a region: the unit of data a task instance receives.

    Subregions are views: ``read``/``write``/``reduce`` go straight to the
    parent region's storage.  ``color`` is the subregion's point in its
    partition's color space (None for a root subregion).
    """

    __slots__ = ("region", "subset", "color", "partition")

    def __init__(self, region: Region, subset: IndexSubset, color: Optional[Point],
                 partition):
        self.region = region
        self.subset = subset
        self.color = color
        self.partition = partition

    @property
    def volume(self) -> int:
        """Number of objects in this subregion."""
        return self.subset.volume()

    def _indices(self) -> np.ndarray:
        return self.subset.linear_indices(self.region.bounds)

    def read(self, field: str) -> np.ndarray:
        """Gather this subregion's values of ``field``.

        Rect-backed subsets of 1-D regions return a writable view; everything
        else returns a gathered copy (use :meth:`write` to store back).
        """
        store = self.region.storage(field)
        if isinstance(self.subset, RectSubset) and self.region.bounds.dim == 1:
            lo = self.subset.rect.lo[0] - self.region.bounds.lo[0]
            hi = self.subset.rect.hi[0] - self.region.bounds.lo[0]
            return store[lo : hi + 1]
        return store[self._indices()]

    def read_nd(self, field: str) -> np.ndarray:
        """Rect subsets only: the field as an N-D *view* shaped like the rect."""
        if not isinstance(self.subset, RectSubset):
            raise TypeError("read_nd requires a rectangular subset")
        nd = self.region.field_nd(field)
        slices = tuple(
            slice(l - bl, h - bl + 1)
            for l, h, bl in zip(self.subset.rect.lo, self.subset.rect.hi,
                                self.region.bounds.lo)
        )
        return nd[slices]

    def write(self, field: str, values) -> None:
        """Scatter ``values`` into this subregion's points of ``field``."""
        store = self.region.storage(field)
        idx = self._indices()
        values = np.asarray(values)
        if values.ndim > 1:
            values = values.ravel()
        store[idx] = values

    def fill(self, field: str, value) -> None:
        """Set every point of ``field`` in this subregion to ``value``."""
        self.region.storage(field)[self._indices()] = value

    def reduce(self, field: str, values, op: ReductionOp) -> None:
        """Fold ``values`` into ``field`` with a commutative operator.

        Uses ``np.ufunc.at``-style accumulation so repeated indices (never
        produced by partitions, but possible through aliased views) still
        reduce correctly for ``+``.
        """
        store = self.region.storage(field)
        idx = self._indices()
        values = np.asarray(values).ravel()
        if op.name == "+":
            np.add.at(store, idx, values)
        elif op.name == "*":
            np.multiply.at(store, idx, values)
        elif op.name == "min":
            np.minimum.at(store, idx, values)
        elif op.name == "max":
            np.maximum.at(store, idx, values)
        else:
            store[idx] = op.apply(store[idx], values)

    def overlaps(self, other: "Subregion") -> bool:
        """Whether two subregions can share data (same region and intersecting)."""
        if self.region.uid != other.region.uid:
            return False
        return self.subset.overlaps(other.subset, self.region.bounds)

    def __repr__(self) -> str:
        pname = self.partition.name if self.partition is not None else "<root>"
        return f"Subregion({self.region.name}/{pname}[{self.color}], n={self.volume})"
