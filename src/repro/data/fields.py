"""Field spaces: the named, typed fields stored at each point of a region.

A stencil region might have fields ``pressure`` and ``velocity``; a circuit
wire region has ``current``, ``resistance``, endpoints, and so on.  Fields
are stored as separate numpy arrays (struct-of-arrays), which matches both
Legion's layout flexibility and the vectorization idioms this codebase uses
throughout.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple, Union

import numpy as np

__all__ = ["FieldSpace"]

DTypeLike = Union[str, np.dtype, type]


class FieldSpace:
    """An ordered mapping of field name to numpy dtype."""

    __slots__ = ("_fields",)

    def __init__(self, fields: Mapping[str, DTypeLike]):
        if not fields:
            raise ValueError("FieldSpace requires at least one field")
        self._fields: Dict[str, np.dtype] = {}
        for name, dtype in fields.items():
            if not isinstance(name, str) or not name.isidentifier():
                raise ValueError(f"field name must be an identifier, got {name!r}")
            self._fields[name] = np.dtype(dtype)

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def dtype(self, name: str) -> np.dtype:
        """The dtype of field ``name``."""
        return self._fields[name]

    def items(self) -> Iterator[Tuple[str, np.dtype]]:
        return iter(self._fields.items())

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._fields)

    def bytes_per_point(self) -> int:
        """Total storage per index-space point across all fields."""
        return sum(dt.itemsize for dt in self._fields.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FieldSpace):
            return NotImplemented
        return self._fields == other._fields

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}: {d}" for n, d in self._fields.items())
        return f"FieldSpace({{{inner}}})"
