"""Shared harness: run a :class:`ReproService` on a background thread.

The service is asyncio-native; tests are synchronous.  The helper spins
a private event loop on a daemon thread, starts the service on an
ephemeral port, and guarantees a graceful ``shutdown()`` (the same path
SIGTERM takes) on exit — so every test doubles as a teardown-leak check.
"""

import asyncio
import contextlib
import threading

from repro.serve import ReproService, ServiceConfig


@contextlib.contextmanager
def running_service(**cfg_kwargs):
    svc = ReproService(ServiceConfig(**cfg_kwargs))
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def runner():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(svc.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    if not started.wait(timeout=10):
        raise RuntimeError("service failed to start")
    try:
        yield svc, loop
    finally:
        if not svc._stopped.is_set():
            asyncio.run_coroutine_threadsafe(
                svc.shutdown(), loop
            ).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()
