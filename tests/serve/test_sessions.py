"""Concurrent-session isolation (the tenancy contract).

N clients hammer one service concurrently with *overlapping region and
partition names* but distinct tenants.  Isolation means: every client's
results are byte-identical to running serially alone, every tenant pays
exactly its own first-issue analysis (no cross-tenant check-memo
traffic), and replay caches never alias across sessions.
"""

import threading

import numpy as np

from repro.core.projection import ModularFunctor
from repro.runtime.task import task
from repro.serve.client import ServiceClient
from tests.serve.conftest import running_service

N_CLIENTS = 4
LAUNCH_ITERS = 4
SHARDS = 8
ELEMS = 48


def _bump_fn(ctx, r):
    r.write("x", r.read("x") + 1.0)


BUMP = task(privileges=["reads writes"])(_bump_fn)


def client_program(cli, seed):
    """Same region/partition names for every client, different data."""
    region = cli.create_region("iso_rx", ELEMS, {"x": "f8"})
    cli.write_field(region, "x", np.arange(float(ELEMS)) + seed)
    part = cli.equal_partition("iso_p", region, SHARDS)
    bump = cli.define_task(BUMP)
    for _ in range(LAUNCH_ITERS):
        cli.begin_trace(11)
        cli.index_launch(bump, SHARDS, part)
        cli.index_launch(bump, SHARDS, part,
                         functor=ModularFunctor(SHARDS, 1))
        cli.end_trace(11)
    cli.drain()
    return cli.read_field(region, "x"), cli.stats()


def _run_concurrent(port, tenants):
    results = [None] * len(tenants)
    errors = []

    def body(i):
        try:
            with ServiceClient("127.0.0.1", port,
                               tenant=tenants[i]) as cli:
                results[i] = client_program(cli, seed=100.0 * i)
        except Exception as exc:
            errors.append(f"client {i}: {exc!r}")

    threads = [threading.Thread(target=body, args=(i,))
               for i in range(len(tenants))]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert errors == []
    assert all(r is not None for r in results)
    return results


class TestConcurrentIsolation:
    def test_overlapping_names_distinct_tenants(self):
        tenants = [f"iso{i}" for i in range(N_CLIENTS)]
        with running_service(workers=2) as (svc, _):
            results = _run_concurrent(svc.port, tenants)

        for i, (got, stats) in enumerate(results):
            expected = np.arange(float(ELEMS)) + 100.0 * i \
                + 2 * LAUNCH_ITERS
            assert np.array_equal(got, expected), f"client {i} corrupted"
            # Every tenant pays exactly its own cold first-issue
            # analysis: a cross-tenant hit would zero a later miss.
            assert stats["tenant"] == tenants[i]
            assert stats["check_memo_misses"] == 1
            assert stats["check_memo_entries"] == 1
            # Replay caches are per-session: exactly this session's two
            # traced signatures (static + functor), never a neighbour's.
            assert stats["replay_cache_entries"] == 2

    def test_concurrent_byte_identical_to_serial_alone(self):
        tenants = [f"iso{i}" for i in range(N_CLIENTS)]
        with running_service(workers=2) as (svc, _):
            concurrent = _run_concurrent(svc.port, tenants)

        for i in range(N_CLIENTS):
            with running_service(workers=2) as (svc, _):
                with ServiceClient("127.0.0.1", svc.port,
                                   tenant=tenants[i]) as cli:
                    alone, _ = client_program(cli, seed=100.0 * i)
            assert concurrent[i][0].tobytes() == alone.tobytes(), \
                f"client {i} diverged from serial-alone"

    def test_same_tenant_sessions_share_check_memo(self):
        """Positive control: the sharing boundary is the tenant.  A
        second session of the same tenant re-issues the same dynamic
        signature as a hit, paying no new miss."""
        with running_service(workers=2) as (svc, _):
            with ServiceClient("127.0.0.1", svc.port,
                               tenant="shared") as cli:
                _, first = client_program(cli, seed=0.0)
            with ServiceClient("127.0.0.1", svc.port,
                               tenant="shared") as cli:
                _, second = client_program(cli, seed=7.0)
        assert first["check_memo_misses"] == 1
        assert second["check_memo_misses"] == 1  # no *new* miss
        assert second["check_memo_hits"] >= first["check_memo_hits"] + 1

    def test_same_tenant_concurrent_same_region_name(self):
        """Even within one tenant, sessions own private region trees:
        the same name holds different data per session."""
        with running_service(workers=2) as (svc, _):
            with ServiceClient("127.0.0.1", svc.port, tenant="t") as a, \
                    ServiceClient("127.0.0.1", svc.port, tenant="t") as b:
                ra = a.create_region("dup_rx", 8, {"x": "f8"})
                rb = b.create_region("dup_rx", 8, {"x": "f8"})
                a.write_field(ra, "x", np.full(8, 1.0))
                b.write_field(rb, "x", np.full(8, 2.0))
                assert np.array_equal(a.read_field(ra, "x"),
                                      np.full(8, 1.0))
                assert np.array_equal(b.read_field(rb, "x"),
                                      np.full(8, 2.0))
