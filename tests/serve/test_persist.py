"""Persistence layer in isolation: round trip, atomicity guarantees the
caller can see, and the invalidation-on-mismatch rule (any bad snapshot
is a cold start, never a misread)."""

import os
import pickle

from repro.core.domain import Domain, Rect
from repro.core.projection import ModularFunctor
from repro.runtime.replay import DynamicCheckMemo
from repro.serve.persist import (
    CACHE_FORMAT_VERSION, CACHE_MAGIC, load_tenant_memo, save_tenant_memo,
    tenant_cache_path,
)


def _warm_memo(n=3):
    memo = DynamicCheckMemo()
    for i in range(n):
        memo.run(Domain.range(4 + i), ((ModularFunctor(4 + i, 1), "write"),),
                 Rect((0,), (3 + i,)))
    return memo


def test_empty_memo_saves_nothing(tmp_path):
    path = save_tenant_memo(str(tmp_path), "t", DynamicCheckMemo())
    assert path is None
    assert os.listdir(tmp_path) == []


def test_round_trip_restores_entries(tmp_path):
    memo = _warm_memo(3)
    path = save_tenant_memo(str(tmp_path), "t", memo)
    assert path == tenant_cache_path(str(tmp_path), "t")
    assert os.path.exists(path)

    fresh = DynamicCheckMemo()
    assert load_tenant_memo(str(tmp_path), "t", fresh) == 3
    # The restored key must serve as a hit, byte-for-byte the same value.
    before = fresh.hits
    result = fresh.run(Domain.range(4), ((ModularFunctor(4, 1), "write"),),
                       Rect((0,), (3,)))
    assert fresh.hits == before + 1
    assert fresh.misses == 0
    reference = DynamicCheckMemo().run(
        Domain.range(4), ((ModularFunctor(4, 1), "write"),),
        Rect((0,), (3,)),
    )
    assert result == reference


def test_tenant_name_sanitized(tmp_path):
    path = tenant_cache_path(str(tmp_path), "a/b c:d")
    assert os.path.dirname(path) == str(tmp_path)
    assert "/" not in os.path.basename(path)
    assert " " not in os.path.basename(path)
    # Round trip under the hostile name still works.
    save_tenant_memo(str(tmp_path), "a/b c:d", _warm_memo(1))
    fresh = DynamicCheckMemo()
    assert load_tenant_memo(str(tmp_path), "a/b c:d", fresh) == 1


def test_missing_snapshot_is_cold(tmp_path):
    assert load_tenant_memo(str(tmp_path), "nope", DynamicCheckMemo()) == 0


def _write_raw(tmp_path, tenant, data: bytes):
    path = tenant_cache_path(str(tmp_path), tenant)
    with open(path, "wb") as fh:
        fh.write(data)
    return path


def test_version_mismatch_is_cold(tmp_path):
    memo = _warm_memo(2)
    _write_raw(tmp_path, "t", pickle.dumps({
        "magic": CACHE_MAGIC,
        "version": CACHE_FORMAT_VERSION + 1,
        "entries": memo.export_entries(),
    }))
    fresh = DynamicCheckMemo()
    assert load_tenant_memo(str(tmp_path), "t", fresh) == 0
    assert len(fresh) == 0


def test_magic_mismatch_is_cold(tmp_path):
    memo = _warm_memo(2)
    _write_raw(tmp_path, "t", pickle.dumps({
        "magic": "someone-elses-pickle",
        "version": CACHE_FORMAT_VERSION,
        "entries": memo.export_entries(),
    }))
    assert load_tenant_memo(str(tmp_path), "t", DynamicCheckMemo()) == 0


def test_corrupt_snapshot_is_cold(tmp_path):
    _write_raw(tmp_path, "t", b"\x80\x05 truncated garbage")
    assert load_tenant_memo(str(tmp_path), "t", DynamicCheckMemo()) == 0


def test_wrong_shape_is_cold(tmp_path):
    _write_raw(tmp_path, "t", pickle.dumps(["not", "a", "dict"]))
    assert load_tenant_memo(str(tmp_path), "t", DynamicCheckMemo()) == 0
    _write_raw(tmp_path, "t", pickle.dumps({
        "magic": CACHE_MAGIC, "version": CACHE_FORMAT_VERSION,
        "entries": "not-a-list",
    }))
    assert load_tenant_memo(str(tmp_path), "t", DynamicCheckMemo()) == 0


def test_save_is_atomic_no_temp_residue(tmp_path):
    save_tenant_memo(str(tmp_path), "t", _warm_memo(1))
    leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
    assert leftovers == []
