"""Service front-end behaviour: handshake, admission control, graceful
shutdown (the long-running-process leak sweep), and warm-restart
persistence of the analysis cache."""

import glob
import os
import threading

import numpy as np
import pytest

from repro.core.projection import ModularFunctor
from repro.exec import wire
from repro.exec.plan import dumps, loads
from repro.exec.pool import get_pool
from repro.runtime.task import task
from repro.serve.client import ServiceBusy, ServiceClient, ServiceError
from tests.serve.conftest import running_service


def _bump_fn(ctx, r):
    r.write("x", r.read("x") + 1.0)


BUMP = task(privileges=["reads writes"])(_bump_fn)


def _shm_files():
    return glob.glob(f"/dev/shm/reproshm-{os.getpid()}p*")


def drive(cli, launches=4, shards=8, elems=48, seed=0.0,
          region_name="svc_rx", part_name="svc_p", drain=True):
    """One client's workload: traced static + dynamically-checked launch
    pairs.  Returns the final field contents."""
    region = cli.create_region(region_name, elems, {"x": "f8"})
    cli.write_field(region, "x", np.arange(float(elems)) + seed)
    part = cli.equal_partition(part_name, region, shards)
    bump = cli.define_task(BUMP)
    for _ in range(launches):
        cli.begin_trace(5)
        cli.index_launch(bump, shards, part)
        cli.index_launch(bump, shards, part,
                         functor=ModularFunctor(shards, 1))
        cli.end_trace(5)
    if drain:
        cli.drain()
    return region


class TestHandshake:
    def test_bad_token_rejected(self):
        with running_service(token="sesame") as (svc, _):
            with pytest.raises(ServiceError, match="handshake rejected"):
                ServiceClient("127.0.0.1", svc.port, token="wrong")

    def test_version_mismatch_rejected(self):
        import socket

        with running_service() as (svc, _):
            sock = socket.create_connection(("127.0.0.1", svc.port),
                                            timeout=10)
            try:
                sock.sendall(wire.pack_frame(
                    wire.HELLO, 0, wire.json_payload(token="repro"),
                    version=wire.PROTOCOL_VERSION - 1,
                ))
                frame = wire.recv_frame(sock)
                assert frame.msg == wire.REJECT
                reason = wire.parse_json(frame.payload)["reason"]
                assert "protocol version" in reason
            finally:
                sock.close()

    def test_good_handshake_assigns_session(self):
        with running_service() as (svc, _):
            with ServiceClient("127.0.0.1", svc.port) as a, \
                    ServiceClient("127.0.0.1", svc.port) as b:
                assert a.session != b.session


class TestCommands:
    def test_write_read_round_trip(self):
        with running_service() as (svc, _):
            with ServiceClient("127.0.0.1", svc.port) as cli:
                region = cli.create_region("rt_rx", 16, {"x": "f8"})
                cli.write_field(region, "x", np.arange(16.0) * 3)
                got = cli.read_field(region, "x")
                assert np.array_equal(got, np.arange(16.0) * 3)

    def test_launches_apply(self):
        with running_service(workers=2) as (svc, _):
            with ServiceClient("127.0.0.1", svc.port) as cli:
                region = drive(cli, launches=4)
                got = cli.read_field(region, "x")
                assert np.array_equal(got, np.arange(48.0) + 8)

    def test_unknown_command_is_typed_error(self):
        with running_service() as (svc, _):
            with ServiceClient("127.0.0.1", svc.port) as cli:
                with pytest.raises(ServiceError, match="unknown command"):
                    cli.call("frobnicate")

    def test_bad_handle_is_typed_error(self):
        with running_service() as (svc, _):
            with ServiceClient("127.0.0.1", svc.port) as cli:
                with pytest.raises(ServiceError, match="unknown handle"):
                    cli.read_field(999, "x")


class TestAdmissionControl:
    def test_busy_backpressure(self):
        """With the runtime thread pinned, calls beyond the queue limit
        (plus the one in-flight slot) get BUSY, not unbounded buffering;
        admitted calls complete once the thread frees up."""
        qlimit = 2
        sent = qlimit + 9
        with running_service(queue_limit=qlimit) as (svc, _):
            cli = ServiceClient("127.0.0.1", svc.port)
            gate = threading.Event()
            try:
                svc._executor.submit(gate.wait)  # pin the runtime thread
                for seq in range(100, 100 + sent):
                    wire.send_frame(cli._sock, wire.CALL, seq,
                                    dumps(("drain", {})))
                replies = {}
                # No RESULT can arrive while the runtime thread is
                # pinned, and at most qlimit+1 calls can be admitted —
                # so the first frames back are guaranteed BUSY.
                for _ in range(sent - qlimit - 1):
                    frame = wire.recv_frame(cli._sock)
                    assert frame.msg == wire.BUSY
                    replies[frame.seq] = "busy"
                gate.set()
                while len(replies) < sent:
                    frame = wire.recv_frame(cli._sock)
                    if frame.msg == wire.BUSY:
                        replies[frame.seq] = "busy"
                    else:
                        assert frame.msg == wire.RESULT
                        replies[frame.seq] = loads(frame.payload)[0]
            finally:
                gate.set()
                cli.close()
            busy = sum(1 for v in replies.values() if v == "busy")
            ok = sum(1 for v in replies.values() if v == "ok")
            assert busy + ok == sent
            assert busy >= sent - qlimit - 1
            assert qlimit <= ok <= qlimit + 1
            assert sorted(replies) == list(range(100, 100 + sent))

    def test_client_surfaces_busy(self):
        with running_service(queue_limit=1) as (svc, _):
            cli = ServiceClient("127.0.0.1", svc.port)
            gate = threading.Event()
            try:
                svc._executor.submit(gate.wait)
                # Fill the queue behind the pinned thread by hand, then a
                # normal call must raise ServiceBusy.
                for seq in (900, 901):
                    wire.send_frame(cli._sock, wire.CALL, seq,
                                    dumps(("drain", {})))
                with pytest.raises(ServiceBusy):
                    cli.drain()
            finally:
                gate.set()
                cli.close()


class TestGracefulShutdown:
    def test_shutdown_drains_and_leaks_nothing(self):
        """Satellite sweep: after shutdown with launches left in flight,
        no pool teardown errors, no shm teardown errors, and no
        reproshm-* segments linked in /dev/shm."""
        with running_service(workers=2) as (svc, _):
            clients = [ServiceClient("127.0.0.1", svc.port,
                                     tenant=f"gs{i}") for i in range(3)]
            regions = [
                drive(cli, launches=3, seed=i * 10.0, drain=False)
                for i, cli in enumerate(clients)
            ]
            # Leave the pipelined launches in flight; shutdown must
            # drain them.  One client also departs early (reap path).
            clients[2].close()
            pool = get_pool(2)  # the one shared pool all sessions use
            # Context exit runs svc.shutdown() — the SIGTERM path.
        assert svc._stopped.is_set()
        assert pool.shutdown_errors == 0
        assert pool.arena.stats.teardown_errors == 0
        assert _shm_files() == []
        del regions

    def test_shutdown_is_idempotent(self):
        with running_service() as (svc, loop):
            import asyncio

            asyncio.run_coroutine_threadsafe(
                svc.shutdown(), loop
            ).result(timeout=30)
            # The context manager's teardown calls shutdown() again.
        assert svc._stopped.is_set()


class TestWarmRestartPersistence:
    def test_restart_repays_no_first_issue_analysis(self, tmp_path):
        """Acceptance: a restarted service restores the dynamic-check
        memo, so the first dynamically-checked launch is a hit, not a
        recomputation (zero misses on the warm run)."""
        persist = str(tmp_path)
        with running_service(workers=2, persist_dir=persist) as (svc, _):
            with ServiceClient("127.0.0.1", svc.port,
                               tenant="warm") as cli:
                drive(cli, launches=4)
                cold = cli.stats()
        assert cold["check_memo_misses"] >= 1
        assert cold["restored_entries"] == 0

        with running_service(workers=2, persist_dir=persist) as (svc, _):
            with ServiceClient("127.0.0.1", svc.port,
                               tenant="warm") as cli:
                drive(cli, launches=4)
                warm = cli.stats()
        assert warm["restored_entries"] >= 1
        assert warm["check_memo_misses"] == 0
        assert warm["check_memo_hits"] >= 1

    def test_restart_results_identical(self, tmp_path):
        persist = str(tmp_path)
        results = []
        for _ in range(2):
            with running_service(workers=2,
                                 persist_dir=persist) as (svc, _):
                with ServiceClient("127.0.0.1", svc.port,
                                   tenant="warm") as cli:
                    region = drive(cli, launches=4)
                    results.append(cli.read_field(region, "x").tobytes())
        assert results[0] == results[1]
